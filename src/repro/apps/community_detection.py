"""Community detection (CD) on G-Miner.

The paper's first heavy attributed workload (§8.1): mine dense
subgraphs whose members share attributes with the seed, using the
resumable :class:`~repro.mining.community.CommunityGrower`.  Each
``NEED`` from the grower becomes one pull round; communities are
reported only by the task seeded at their minimum member, so the job
value needs no deduplication.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.graph import VertexData
from repro.mining.community import DONE, CommunityGrower, CommunityParams


class CDTask(Task):
    """Multi-round task wrapping a resumable community grower."""

    def __init__(self, seed: VertexData, params: CommunityParams) -> None:
        super().__init__(seed)
        self.grower = CommunityGrower(
            seed.vid, seed.neighbors, seed.attributes, params
        )
        # the grower's first data request is the seed's whole link set
        self.pull(seed.neighbors)

    def context_size(self) -> int:
        return self.grower.estimate_size()

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        candidate_data = {
            vid: (data.neighbors, data.attributes)
            for vid, data in cand_objs.items()
        }
        status, payload = self.grower.advance(candidate_data, meter=self)
        if status == DONE:
            self.subgraph.add_nodes(self.grower.community)
            self.finish(payload)
            return
        self.pull(payload)


class CommunityDetectionApp(GMinerApp):
    """Attribute-coherent dense communities; job value is their list."""

    name = "cd"

    def __init__(self, params: Optional[CommunityParams] = None) -> None:
        self.params = params or CommunityParams()

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        # isolated vertices cannot grow anything
        if not vertex.neighbors:
            return None
        return CDTask(vertex, self.params)

    def combine_results(self, results) -> List[Tuple[int, ...]]:
        return sorted(r for r in results if r is not None)
