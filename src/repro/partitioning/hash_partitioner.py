"""Hash partitioning — the baseline strategy (paper §6.1, Figure 11).

Distributes each vertex to ``hash(vid) % k``.  Cheap and perfectly
balanced in expectation, but it scatters every neighbourhood across the
cluster, which is exactly the locality loss Figure 11 quantifies.
"""

from __future__ import annotations

import sys
from typing import Dict

from repro.graph.graph import Graph
from repro.partitioning.assignment import PartitionAssignment

#: Work units charged per vertex hashed; hashing is nearly free
#: compared with BDG's BFS + greedy passes.
HASH_COST_PER_VERTEX = 1.0


def _mix(vid: int) -> int:
    """Deterministic integer hash (splitmix64 finaliser).

    Python's built-in ``hash`` on ints is the identity, which would
    turn modulo placement into round-robin striping — unrealistically
    kind to locality for generator-assigned contiguous IDs.
    """
    z = (vid + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


class HashPartitioner:
    """Assign vertices by hashed ID modulo the worker count."""

    name = "hash"

    def cache_params(self) -> Dict[str, object]:
        """Build-cache key components for this algorithm: its name plus
        a fingerprint of this module's source, so editing the hash mix
        (or costs) invalidates persisted assignments."""
        from repro.parallel.cache import source_fingerprint

        return {
            "partitioner": self.name,
            "algorithm": source_fingerprint(sys.modules[__name__]),
        }

    def partition(self, graph: Graph, num_partitions: int) -> PartitionAssignment:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        assignment = PartitionAssignment(num_partitions=num_partitions)
        for vid in graph.vertices():
            assignment.assign(vid, _mix(vid) % num_partitions)
        assignment.partition_time_units = HASH_COST_PER_VERTEX * graph.num_vertices
        return assignment
