"""Real fault injection for the native process pool.

A :class:`NativeFaultPlan` is to ``execution="native"`` what
:class:`~repro.sim.failures.FailurePlan` is to the simulator: a
declarative, seeded chaos schedule — data, not code — accepted by
:func:`repro.native.run_native` (and by ``GMinerJob``/``repro.mine``
as the ``failure_plan`` of a native job).  Where the simulated plan
degrades a modelled fabric, this one injures *actual worker
processes*:

* ``crash(worker, on_claim=k)`` — the worker calls ``os._exit`` the
  moment it picks up its ``k``-th chunk (an OOM-kill / segfault
  stand-in: buffered result messages may be lost, exactly like a real
  abrupt death);
* ``hang(worker, on_claim=k, duration=None)`` — the worker stalls
  before executing that chunk; ``duration=None`` stalls until the
  supervisor's lease deadline expires and the process is terminated;
* ``slow(worker, delay)`` — the worker sleeps ``delay`` seconds before
  every chunk (a straggler, exercising stealing and lease margins
  without tripping them);
* ``flaky_chunk(chunk_id, failures=n)`` — the first ``n`` execution
  attempts of that chunk raise a transient error (survivable iff
  ``n <= native_max_chunk_retries``, else the chunk is quarantined and
  the run fails with a structured
  :class:`~repro.native.supervisor.NativeChunkError`);
* ``random_chunk_errors(rate)`` — every (chunk, attempt) pair fails
  with probability ``rate``, drawn deterministically from the plan
  seed, so two runs of the same plan inject the identical schedule
  with no cross-process shared state.

Every query the pool makes against the plan is a pure function of
``(seed, worker id, claim index, chunk id, attempt)``; a plan is
picklable and ships to each worker at spawn.  Faults fire only at
chunk boundaries — a chunk either produces its complete, deterministic
:class:`~repro.native.runtime.ChunkOutcome` or nothing — which is what
lets the supervisor promise results bit-identical to the fault-free
run for every survivable schedule.

Worker ids are lenient on purpose: a spec naming a worker (or chunk)
that never exists simply never fires, so one plan can be reused across
pool sizes, and respawned workers (which get fresh ids) are reachable
only through wildcard (``worker=None``) specs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

#: Exit code of an injected crash — distinguishable from a real
#: segfault (negative signal) or a Python traceback exit in the
#: supervisor's diagnostics.
FAULT_EXIT_CODE = 173

#: "Forever" for a hang with no duration: far beyond any sane lease
#: deadline, so the supervisor always wins the race, while still
#: bounded in case supervision is disabled and the pool is abandoned.
HANG_FOREVER = 3600.0


@dataclass(frozen=True)
class CrashSpec:
    """``os._exit`` when worker ``worker`` starts claim ``on_claim``.

    ``worker=None`` matches every worker, including respawned ones
    (which carry fresh ids a targeted spec can never name).
    """

    worker: Optional[int]
    on_claim: int


@dataclass(frozen=True)
class HangSpec:
    """Stall ``duration`` seconds (``None`` = until terminated) when
    worker ``worker`` starts claim ``on_claim``."""

    worker: Optional[int]
    on_claim: int
    duration: Optional[float]


@dataclass(frozen=True)
class SlowSpec:
    """Sleep ``delay`` seconds before every chunk of worker ``worker``."""

    worker: Optional[int]
    delay: float


@dataclass(frozen=True)
class FlakySpec:
    """Fail the first ``failures`` attempts of chunk ``chunk_id``."""

    chunk_id: int
    failures: int
    message: str


@dataclass
class NativeFaultPlan:
    """A seeded chaos schedule for the native process pool.

    Builder methods return ``self`` so schedules chain fluently::

        plan = (
            NativeFaultPlan(seed=7)
            .crash(0, on_claim=1)
            .flaky_chunk(3, failures=2)
            .slow(1, delay=0.05)
        )
        repro.mine(graph, workload="tc", execution="native",
                   failure_plan=plan)
    """

    seed: int = 0
    crashes: List[CrashSpec] = field(default_factory=list)
    hangs: List[HangSpec] = field(default_factory=list)
    slows: List[SlowSpec] = field(default_factory=list)
    flaky: List[FlakySpec] = field(default_factory=list)
    #: Probability that any given (chunk, attempt) execution raises an
    #: injected transient error; drawn deterministically from ``seed``.
    error_rate: float = 0.0

    # -- builders ------------------------------------------------------

    def crash(self, worker: Optional[int] = None, *, on_claim: int = 0):
        """Kill ``worker`` (``None`` = any) at its ``on_claim``-th chunk."""
        self.crashes.append(CrashSpec(worker=worker, on_claim=on_claim))
        return self

    def hang(
        self,
        worker: Optional[int] = None,
        *,
        on_claim: int = 0,
        duration: Optional[float] = None,
    ):
        """Stall ``worker`` at its ``on_claim``-th chunk.

        ``duration=None`` hangs until the supervisor's lease deadline
        forfeits the chunk and terminates the process; a finite
        ``duration`` models a long GC pause / IO stall the worker
        survives.
        """
        self.hangs.append(
            HangSpec(worker=worker, on_claim=on_claim, duration=duration)
        )
        return self

    def slow(self, worker: Optional[int] = None, *, delay: float = 0.05):
        """Make ``worker`` a straggler: sleep ``delay`` before each chunk."""
        self.slows.append(SlowSpec(worker=worker, delay=delay))
        return self

    def flaky_chunk(
        self, chunk_id: int, *, failures: int = 1, message: str = ""
    ):
        """Fail the first ``failures`` execution attempts of one chunk."""
        self.flaky.append(
            FlakySpec(
                chunk_id=chunk_id,
                failures=failures,
                message=message or f"injected transient fault on chunk {chunk_id}",
            )
        )
        return self

    def random_chunk_errors(self, rate: float):
        """Fail each (chunk, attempt) independently with probability
        ``rate``, deterministically from the plan seed."""
        self.error_rate = rate
        return self

    # -- validation ----------------------------------------------------

    def validate(self, num_workers: Optional[int] = None) -> None:
        """Fail fast on malformed schedules; raise ``ValueError``.

        Worker/chunk ids are *not* bounds-checked (a spec naming a
        worker the pool never grows simply never fires — the plan stays
        reusable across pool sizes), but negative ids, negative claim
        indices, non-positive durations/delays/failure counts and
        rates outside ``[0, 1]`` are schedule bugs, not chaos inputs.
        """
        for spec in self.crashes:
            self._check_worker(spec.worker, "crash")
            if spec.on_claim < 0:
                raise ValueError(
                    f"crash on_claim must be >= 0 (the index of the chunk "
                    f"pickup that dies); got {spec.on_claim!r}"
                )
        for spec in self.hangs:
            self._check_worker(spec.worker, "hang")
            if spec.on_claim < 0:
                raise ValueError(
                    f"hang on_claim must be >= 0; got {spec.on_claim!r}"
                )
            if spec.duration is not None and not (
                spec.duration > 0 and math.isfinite(spec.duration)
            ):
                raise ValueError(
                    f"hang duration must be a positive number of seconds or "
                    f"None (until terminated); got {spec.duration!r}"
                )
        for spec in self.slows:
            self._check_worker(spec.worker, "slow")
            if not (spec.delay > 0 and math.isfinite(spec.delay)):
                raise ValueError(
                    f"slow delay must be a positive number of seconds; got "
                    f"{spec.delay!r}"
                )
        for spec in self.flaky:
            if spec.chunk_id < 0:
                raise ValueError(
                    f"flaky_chunk chunk_id must be >= 0; got {spec.chunk_id!r}"
                )
            if spec.failures < 1:
                raise ValueError(
                    f"flaky_chunk failures must be >= 1 (0 would inject "
                    f"nothing); got {spec.failures!r}"
                )
        if not (0.0 <= self.error_rate <= 1.0) or math.isnan(self.error_rate):
            raise ValueError(
                f"random_chunk_errors rate must lie in [0, 1]; got "
                f"{self.error_rate!r}"
            )
        if num_workers is not None:
            for spec in (*self.crashes, *self.hangs, *self.slows):
                if spec.worker is not None and spec.worker >= num_workers:
                    # informational leniency: allowed, it just never fires
                    pass

    @staticmethod
    def _check_worker(worker: Optional[int], kind: str) -> None:
        if worker is not None and worker < 0:
            raise ValueError(
                f"{kind} worker must be a worker id >= 0, or None for any "
                f"worker; got {worker!r}"
            )

    # -- worker-side queries (pure, no shared state) -------------------

    def claim_action(
        self, worker_id: int, claim_index: int
    ) -> Optional[Tuple[str, Optional[float]]]:
        """What happens when ``worker_id`` picks up its
        ``claim_index``-th chunk: ``("crash", None)``, ``("hang",
        duration)`` or ``None``.  Crashes shadow hangs on a tie."""
        for spec in self.crashes:
            if spec.on_claim == claim_index and spec.worker in (None, worker_id):
                return ("crash", None)
        for spec in self.hangs:
            if spec.on_claim == claim_index and spec.worker in (None, worker_id):
                return ("hang", spec.duration)
        return None

    def slow_delay(self, worker_id: int) -> float:
        """Total straggler delay before each chunk of ``worker_id``."""
        return sum(
            spec.delay
            for spec in self.slows
            if spec.worker in (None, worker_id)
        )

    def chunk_failure(self, chunk_id: int, attempt: int) -> Optional[str]:
        """The injected error message for this execution attempt, or
        ``None`` to let it run.  Deterministic per (plan, chunk,
        attempt), so retries make forward progress by construction."""
        for spec in self.flaky:
            if spec.chunk_id == chunk_id and attempt < spec.failures:
                return spec.message
        if self.error_rate > 0.0:
            draw = random.Random(
                self.seed * 1_000_003 + chunk_id * 7_919 + attempt
            ).random()
            if draw < self.error_rate:
                return (
                    f"injected random chunk error "
                    f"(chunk {chunk_id}, attempt {attempt})"
                )
        return None

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return not (
            self.crashes or self.hangs or self.slows or self.flaky
        ) and self.error_rate == 0.0
