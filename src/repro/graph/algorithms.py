"""Stand-alone graph utilities used across the system.

These support the infrastructure rather than the mining applications:
BFS levels (BDG partitioning's colouring), Hash-Min connected
components (BDG's fixup for tiny components, §6.1), and exact triangle
counting / clique checking used as ground truth in tests.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import kernels
from repro.graph.graph import Graph


def bfs_levels(
    graph: Graph, source: int, max_depth: Optional[int] = None
) -> Dict[int, int]:
    """Breadth-first levels from ``source`` (optionally depth-bounded)."""
    levels = {source: 0}
    frontier = deque([source])
    while frontier:
        u = frontier.popleft()
        depth = levels[u]
        if max_depth is not None and depth >= max_depth:
            continue
        for v in graph.neighbors(u):
            if v not in levels:
                levels[v] = depth + 1
                frontier.append(v)
    return levels


def connected_components_hashmin(
    graph: Graph, vertices: Optional[Iterable[int]] = None
) -> Dict[int, int]:
    """Connected components labelled by minimum vertex ID (Hash-Min [39]).

    Restricted to ``vertices`` when given (BDG runs it on the vertices
    still uncoloured after BFS rounds).  Implemented as the iterative
    min-label propagation the Pregel algorithm performs, which converges
    to each vertex holding the smallest ID in its component.
    """
    universe: Set[int] = set(vertices) if vertices is not None else set(graph.vertices())
    label = {v: v for v in universe}
    changed = True
    while changed:
        changed = False
        for v in sorted(universe):
            best = label[v]
            for u in graph.neighbors(v):
                if u in universe and label[u] < best:
                    best = label[u]
            if best < label[v]:
                label[v] = best
                changed = True
    # path-compress to the component minimum
    for v in sorted(universe):
        while label[label[v]] != label[v]:
            label[v] = label[label[v]]
    return label


def degree_histogram(graph: Graph) -> Dict[int, int]:
    """Map degree -> number of vertices with that degree."""
    hist: Dict[int, int] = {}
    for v in graph.vertices():
        d = graph.degree(v)
        hist[d] = hist.get(d, 0) + 1
    return hist


def triangle_count_exact(graph: Graph) -> int:
    """Exact global triangle count via ordered neighbor intersection.

    Reference implementation used to validate the TC application and
    baselines; counts each triangle once using the ``u < v < w`` rule.
    """
    view = graph.adjacency_view()
    total = 0
    for u, arr in view.items():
        higher = kernels.slice_gt(arr, u)
        for v in kernels.tolist(higher):
            total += kernels.intersect_count(
                kernels.slice_gt(view[v], v), kernels.slice_gt(higher, v)
            )
    return total


def is_clique(graph: Graph, vertex_ids: Sequence[int]) -> bool:
    """Check that ``vertex_ids`` induce a complete subgraph."""
    vs = list(vertex_ids)
    for i, u in enumerate(vs):
        for v in vs[i + 1 :]:
            if not graph.has_edge(u, v):
                return False
    return True


def graph_density(graph: Graph, vertex_ids: Optional[Sequence[int]] = None) -> float:
    """Edge density of the graph or of an induced subgraph (0..1)."""
    if vertex_ids is None:
        n = graph.num_vertices
        e = graph.num_edges
    else:
        vs = set(vertex_ids)
        n = len(vs)
        e = 0
        for u in vs:
            if graph.has_vertex(u):
                e += sum(1 for v in graph.neighbors(u) if v in vs)
        e //= 2
    if n < 2:
        return 0.0
    return 2.0 * e / (n * (n - 1))


def k_hop_neighborhood(graph: Graph, source: int, k: int) -> Set[int]:
    """Vertices within ``k`` hops of ``source`` (inclusive of source)."""
    return set(bfs_levels(graph, source, max_depth=k))
