"""G-Miner: an efficient task-oriented graph mining system (EuroSys
2018) — a complete Python reproduction.

Public API at a glance::

    from repro import GMinerJob, GMinerConfig, ClusterSpec
    from repro.apps import TriangleCountingApp
    from repro.graph.datasets import load_dataset

    graph = load_dataset("orkut-s").graph
    result = GMinerJob(TriangleCountingApp(), graph,
                       GMinerConfig(cluster=ClusterSpec(num_nodes=15,
                                                        cores_per_node=4))).run()

Sub-packages: :mod:`repro.sim` (simulated cluster), :mod:`repro.graph`
(graphs, datasets), :mod:`repro.partitioning`, :mod:`repro.mining`
(pure kernels), :mod:`repro.core` (the system), :mod:`repro.apps`
(the paper's five applications), :mod:`repro.baselines` (comparison
systems) and :mod:`repro.bench` (the table/figure harness).
"""

from repro.core import (
    Aggregator,
    GMinerApp,
    GMinerConfig,
    GMinerJob,
    JobResult,
    JobStatus,
    Subgraph,
    Task,
    TaskEnv,
    TaskStatus,
)
from repro.graph.graph import Graph, VertexData
from repro.sim.cluster import ClusterSpec

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "ClusterSpec",
    "GMinerApp",
    "GMinerConfig",
    "GMinerJob",
    "Graph",
    "JobResult",
    "JobStatus",
    "Subgraph",
    "Task",
    "TaskEnv",
    "TaskStatus",
    "VertexData",
    "__version__",
]
