"""Baseline systems the paper compares against (§2, §3, §8.2).

Model re-implementations of each comparison system's *computational
model*, run on the same simulated cluster and the same real mining
kernels, so Tables 1/3/4 and Figure 10 are apples-to-apples:

* :class:`SingleThreadSystem` — the optimised sequential baseline
  (used for Table 1 and the COST metric of Figure 7).
* :class:`VertexCentricSystem` — BSP vertex-centric execution with
  per-superstep barriers and message materialisation.  Two flavours:
  ``giraph`` (in-memory, JVM-style object overhead, OOM-prone) and
  ``graphx`` (dataflow engine: spills shuffles to disk instead of
  OOM-ing, at a large constant overhead).
* :class:`EmbeddingExploreSystem` — Arabesque-like embedding
  exploration: rounds of expand-then-filter over materialised
  embedding sets.
* :class:`BatchSubgraphSystem` — G-thinker-like subgraph-centric
  batch processing: the same task objects G-Miner runs, but compute
  and communication alternate in barriered phases, with a plain FIFO
  cache and no LSH ordering, disk pipeline, or stealing.

All runners return the same :class:`~repro.core.job.JobResult` record
G-Miner produces.
"""

from repro.baselines.single_thread import SingleThreadSystem
from repro.baselines.vertex_centric import VertexCentricSystem
from repro.baselines.embedding_explore import EmbeddingExploreSystem
from repro.baselines.batch_subgraph import BatchSubgraphSystem

__all__ = [
    "SingleThreadSystem",
    "VertexCentricSystem",
    "EmbeddingExploreSystem",
    "BatchSubgraphSystem",
]
