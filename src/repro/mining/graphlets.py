"""Connected size-k graphlet counting kernel.

The paper's taxonomy (§4.1, category 1) lists size-k graphlet
enumeration [2] alongside triangles and cliques; this kernel implements
it: count all connected induced subgraphs on ``k`` vertices, classified
by isomorphism class for small ``k`` (3 and 4 have well-known classes).

Enumeration uses the standard ESU-style decomposition that fits the
task model: the graphlet containing vertices ``S`` is counted by the
task seeded at ``min(S)``, extending only with higher-ID vertices, so
every connected set is enumerated exactly once and per-seed counts are
independent.

Induced-degree probes and extension scans run on :mod:`repro.kernels`
sorted arrays, charged in bulk with the same unit totals as the
historical per-probe loops.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Sequence, Set, Tuple

from repro import kernels
from repro.mining.cost import WorkMeter


class _LazyArrays:
    """Mapping view converting adjacency lists to kernel handles on
    first access.  Wrapping an already-converted view is free: each
    backend's ``as_array`` short-circuits on its own handle type."""

    __slots__ = ("_raw", "_arrs")

    def __init__(self, raw: Mapping[int, Sequence[int]]) -> None:
        self._raw = raw
        self._arrs: Dict[int, Any] = {}

    def __getitem__(self, v: int) -> Any:
        arr = self._arrs.get(v)
        if arr is None:
            arr = kernels.as_array(self._raw[v])
            self._arrs[v] = arr
        return arr

#: Isomorphism classes for k=3: path (2 edges), triangle (3 edges).
GRAPHLET3_NAMES = {2: "path3", 3: "triangle"}
#: Isomorphism classes for k=4 by (edge count, degree multiset).
GRAPHLET4_NAMES = {
    (3, (1, 1, 1, 3)): "star4",
    (3, (1, 1, 2, 2)): "path4",
    (4, (1, 2, 2, 3)): "tailed-triangle",
    (4, (2, 2, 2, 2)): "cycle4",
    (5, (2, 2, 3, 3)): "diamond",
    (6, (3, 3, 3, 3)): "clique4",
}


def classify_graphlet(
    vertices: Sequence[int],
    adjacency: Mapping[int, Iterable[int]],
    meter: WorkMeter,
) -> str:
    """Isomorphism class name of the induced subgraph on ``vertices``.

    Supports k in {3, 4}; larger graphlets are classified only by edge
    count (``k<k>-e<edges>``), which is sufficient for counting totals.
    """
    vs = list(vertices)
    k = len(vs)
    arrs = adjacency if isinstance(adjacency, _LazyArrays) else _LazyArrays(adjacency)
    vs_arr = kernels.as_array(vs)
    # one unit per member, as the per-probe loop charged
    meter.charge(len(vs))
    degrees = []
    edges = 0
    for v in vs:
        d = kernels.intersect_count(arrs[v], vs_arr)
        degrees.append(d)
        edges += d
    edges //= 2
    if k == 3:
        name = GRAPHLET3_NAMES.get(edges)
        if name is None:
            raise ValueError("disconnected 3-set is not a graphlet")
        return name
    if k == 4:
        key = (edges, tuple(sorted(degrees)))
        name = GRAPHLET4_NAMES.get(key)
        if name is None:
            raise ValueError(f"unrecognised 4-graphlet signature {key}")
        return name
    return f"k{k}-e{edges}"


def graphlets_for_seed(
    seed: int,
    k: int,
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
    classify: bool = True,
) -> Dict[str, int]:
    """Count connected k-graphlets whose minimum vertex is ``seed``.

    ``adjacency`` must cover the seed's (k-1)-hop higher neighbourhood
    — the data the G-Miner task pulls round by round.  Returns a
    histogram by isomorphism class (or ``{"total": n}`` when
    ``classify`` is false).
    """
    if k < 2:
        raise ValueError("graphlets need k >= 2")
    counts: Dict[str, int] = {}
    arrs = adjacency if isinstance(adjacency, _LazyArrays) else _LazyArrays(adjacency)

    def record(current: List[int]) -> None:
        if classify:
            name = classify_graphlet(current, arrs, meter)
        else:
            name = "total"
        counts[name] = counts.get(name, 0) + 1

    def extend(current: List[int], extension: Set[int], forbidden: Set[int]) -> None:
        """ESU: grow only with *exclusive* neighbours — vertices not
        already adjacent to the current subgraph — so each connected
        set is generated exactly once."""
        meter.charge(len(extension) + 1)
        if len(current) == k:
            record(current)
            return
        ext = sorted(extension)
        for i, v in enumerate(ext):
            new_extension = set(ext[i + 1 :])
            new_forbidden = forbidden | set(ext)
            arr = arrs[v]
            # one unit per adjacency element scanned, charged in bulk.
            # Filtering against the pre-scan ``new_forbidden`` snapshot
            # equals the historical in-loop mutation: adjacency lists
            # are duplicate-free, so marking ``u`` forbidden mid-scan
            # could only have affected a repeat of ``u`` itself.
            meter.charge(len(arr))
            fresh = [
                u
                for u in kernels.tolist(kernels.slice_gt(arr, seed))
                if u not in new_forbidden
            ]
            new_extension.update(fresh)
            new_forbidden.update(fresh)
            current.append(v)
            extend(current, new_extension, new_forbidden)
            current.pop()

    initial = set(kernels.tolist(kernels.slice_gt(arrs[seed], seed)))
    extend([seed], initial, {seed} | initial)
    return counts


def graphlet_count_sequential(
    k: int,
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
    classify: bool = True,
) -> Dict[str, int]:
    """Whole-graph k-graphlet histogram (single-thread kernel).

    Converts the adjacency to kernel arrays once and shares that view
    across every seed.
    """
    totals: Dict[str, int] = {}
    view = {v: kernels.as_array(ns) for v, ns in adjacency.items()}
    for seed in sorted(view):
        for name, n in graphlets_for_seed(
            seed, k, view, meter, classify=classify
        ).items():
            totals[name] = totals.get(name, 0) + n
    return totals


def merge_histograms(histograms: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Combine per-task histograms (the app's result combiner)."""
    out: Dict[str, int] = {}
    for histogram in histograms:
        for name, n in histogram.items():
            out[name] = out.get(name, 0) + n
    return out
