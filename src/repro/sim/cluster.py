"""Cluster specification and node construction.

Mirrors the paper's testbed (§8.1): 15 nodes on Gigabit Ethernet, each
with 48 GB RAM, 24 virtual cores and a SATA disk.  A :class:`ClusterSpec`
captures those parameters (scaled memory by default — our graphs are
~10³× smaller than the paper's); :func:`build_cluster` materialises the
simulated nodes, their core pools, disks and the shared network.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.sim.cpu import CorePool
from repro.sim.disk import Disk
from repro.sim.engine import Simulator
from repro.sim.errors import SimulatedOOMError
from repro.sim.metrics import MemoryGauge
from repro.sim.network import Network

#: Work units one core retires per second.  A "work unit" is one basic
#: mining operation (e.g. one adjacency membership probe).  The value
#: is calibrated so that the *ratio* of computation to communication on
#: our ~10³×-scaled graphs matches the paper's regime, where mining is
#: strongly CPU-bound (a single thread needed 24 hours for MCF on
#: Orkut).  Real hardware retires ~5M such ops/s; because our graphs
#: carry proportionally far less work per pulled byte, the simulated
#: cores are slowed so compute still dominates the pipeline.
DEFAULT_CORE_SPEED = 1e5


@dataclass(frozen=True)
class ClusterSpec:
    """Immutable description of a simulated cluster."""

    num_nodes: int = 15
    cores_per_node: int = 24
    #: Scaled stand-in for the testbed's 48 GB/node: our graphs carry
    #: ~2000-3000x fewer edges than the paper's Orkut, so ~16 MB/node
    #: preserves the ratio of graph state to memory that decides which
    #: systems OOM.
    memory_per_node: int = 16 * 10**6
    core_speed: float = DEFAULT_CORE_SPEED
    #: Network and disk are scaled down by the same ~50x factor as the
    #: cores (see DEFAULT_CORE_SPEED): the paper's conclusions are about
    #: the *ratio* of computation to communication and I/O, so slowing
    #: only the cores would make the network unrealistically free and
    #: erase the effects (pull stalls, overlap benefits) the system is
    #: designed around.  Base hardware: GbE (125 MB/s, ~100 µs) and a
    #: 10 krpm SATA disk (~150/120 MB/s, ~5 ms).
    #: Latency scales by ~5x (not 50x): per-*task* compute also shrank
    #: with the graphs, so scaling latency by the full factor would make
    #: a pull round-trip dwarf a task round, a regime the paper never
    #: operates in.  Bandwidth scales with total work (~50x).
    net_latency: float = 5e-4
    net_bandwidth: float = 2.5e6
    disk_read_bandwidth: float = 3e6
    disk_write_bandwidth: float = 2.4e6
    disk_latency: float = 1e-2

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        return replace(self, num_nodes=num_nodes)

    def with_cores(self, cores_per_node: int) -> "ClusterSpec":
        return replace(self, cores_per_node=cores_per_node)

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.cores_per_node


class Node:
    """One simulated machine: cores + disk + a memory gauge with a limit."""

    def __init__(self, sim: Simulator, node_id: int, spec: ClusterSpec) -> None:
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.cores = CorePool(
            sim, name=f"cpu-{node_id}", cores=spec.cores_per_node, speed=spec.core_speed
        )
        self.disk = Disk(
            sim,
            node_id,
            read_bandwidth=spec.disk_read_bandwidth,
            write_bandwidth=spec.disk_write_bandwidth,
            latency=spec.disk_latency,
        )
        self.memory = MemoryGauge(name=f"mem-{node_id}")
        self.memory_limit = spec.memory_per_node
        self.alive = True

    def allocate(self, nbytes: int, what: str = "") -> None:
        """Account an allocation; raises :class:`SimulatedOOMError` on overflow."""
        self.memory.allocate(nbytes)
        if self.memory.current > self.memory_limit:
            raise SimulatedOOMError(
                self.node_id, self.memory.current, self.memory_limit, what
            )

    def free(self, nbytes: int) -> None:
        self.memory.free(nbytes)

    def fail(self) -> None:
        """Kill the node: halt cores and disk, drop queued work."""
        self.alive = False
        self.cores.halt()
        self.disk.halt()

    def recover(self) -> None:
        self.alive = True
        self.memory.current = 0
        self.cores.resume()
        self.disk.resume()


@dataclass
class Cluster:
    """A built cluster: simulator, nodes and the shared network."""

    sim: Simulator
    spec: ClusterSpec
    nodes: List[Node]
    network: Network

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def cpu_utilization(self, start: float, end: float) -> float:
        """Mean CPU utilisation across all nodes over ``[start, end]``."""
        if not self.nodes:
            return 0.0
        total = sum(n.cores.utilization(start, end) for n in self.nodes)
        return total / len(self.nodes)

    def disk_utilization(self, start: float, end: float) -> float:
        if not self.nodes:
            return 0.0
        total = sum(n.disk.utilization(start, end) for n in self.nodes)
        return total / len(self.nodes)

    def peak_memory_bytes(self) -> int:
        return sum(n.memory.peak for n in self.nodes)

    def network_gigabytes(self) -> float:
        return self.network.bytes_counter.gigabytes


def build_cluster(
    spec: ClusterSpec,
    sim: Optional[Simulator] = None,
    extra_network_endpoints: int = 0,
) -> Cluster:
    """Construct all simulated nodes plus the shared network fabric.

    ``extra_network_endpoints`` adds network-only participants beyond
    the worker nodes — G-Miner's master is one: it coordinates over the
    network but its negligible compute is not modelled as a node.
    """
    sim = sim or Simulator()
    network = Network(
        sim,
        num_nodes=spec.num_nodes + extra_network_endpoints,
        latency=spec.net_latency,
        bandwidth=spec.net_bandwidth,
    )
    nodes = [Node(sim, node_id, spec) for node_id in range(spec.num_nodes)]
    return Cluster(sim=sim, spec=spec, nodes=nodes, network=network)
