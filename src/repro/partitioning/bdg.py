"""Block-based Deterministic Greedy (BDG) partitioning (paper §6.1).

Two phases:

1. **Block formation** — multi-source BFS colouring.  Randomly sampled
   sources each get a distinct colour and broadcast it; uncoloured
   vertices adopt a received colour and re-broadcast.  BFS depth is
   capped to bound block size; the process repeats with fresh sources
   until everything is coloured.  Remaining tiny connected components
   are fixed up with Hash-Min, each CC becoming one block.
2. **Greedy assignment** — blocks are sorted by descending size and
   each is placed on the worker maximising Eq. 1:

       j = argmax_i |P(i) ∩ Γ(B)| * (1 - |P(i)| / C)

   where ``Γ(B)`` is the 1-hop neighbourhood of block ``B``, ``P(i)``
   the vertices already on worker ``i``, and ``C = |V|/k`` the expected
   capacity.  Ties break on the lower worker index (deterministic).
"""

from __future__ import annotations

import random
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.algorithms import connected_components_hashmin
from repro.graph.graph import Graph
from repro.partitioning.assignment import PartitionAssignment

#: Cost-model constants (work units): BFS colouring touches each edge
#: roughly once per round; the greedy pass scans each block's frontier.
BFS_COST_PER_EDGE_VISIT = 1.0
GREEDY_COST_PER_NEIGHBOR = 1.0


@dataclass
class Block:
    """A locality-preserving block of vertices produced by colouring."""

    block_id: int
    vertices: List[int] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.vertices)


def bfs_color_blocks(
    graph: Graph,
    max_depth: int = 3,
    sources_per_round: int = 32,
    seed: int = 0,
    max_rounds: int = 64,
) -> Tuple[List[Block], float]:
    """Colour the graph into blocks via repeated multi-source BFS.

    Returns ``(blocks, work_units)``.  Vertices left uncoloured after
    ``max_rounds`` (tiny CCs unreachable from sampled sources) are
    grouped per connected component via Hash-Min, as §6.1 prescribes.
    """
    rng = random.Random(seed)
    color: Dict[int, int] = {}
    blocks: Dict[int, List[int]] = {}
    next_color = 0
    work = 0.0
    uncolored: Set[int] = set(graph.vertices())

    for _round in range(max_rounds):
        if not uncolored:
            break
        pool = sorted(uncolored)
        k = min(sources_per_round, len(pool))
        sources = rng.sample(pool, k)
        frontier: deque = deque()
        for s in sources:
            color[s] = next_color
            blocks[next_color] = [s]
            uncolored.discard(s)
            frontier.append((s, 0))
            next_color += 1
        while frontier:
            u, depth = frontier.popleft()
            if depth >= max_depth:
                continue
            cu = color[u]
            for v in graph.neighbors(u):
                work += BFS_COST_PER_EDGE_VISIT
                if v in uncolored:
                    color[v] = cu
                    blocks[cu].append(v)
                    uncolored.discard(v)
                    frontier.append((v, depth + 1))

    if uncolored:
        # Hash-Min fixup: each remaining CC becomes one block.
        cc = connected_components_hashmin(graph, uncolored)
        work += 3.0 * len(uncolored)  # a few label-propagation rounds
        by_root: Dict[int, List[int]] = {}
        for v, root in cc.items():
            by_root.setdefault(root, []).append(v)
        for root in sorted(by_root):
            blocks[next_color] = sorted(by_root[root])
            next_color += 1

    out = [Block(block_id=bid, vertices=sorted(vs)) for bid, vs in sorted(blocks.items())]
    return out, work


def greedy_assign_blocks(
    graph: Graph,
    blocks: List[Block],
    num_partitions: int,
) -> Tuple[PartitionAssignment, float]:
    """Assign blocks to workers by Eq. 1, largest block first.

    Partition load ``|P(i)|`` and capacity ``C`` are measured in
    *degree mass* (sum of degrees) rather than raw vertex counts.  The
    paper states Eq. 1 over vertex counts, which at cluster scale is
    equivalent because blocks are tiny relative to partitions; at our
    reduced scale a handful of hub blocks would otherwise concentrate
    most of the mining work (∝ edges) on one worker, which is exactly
    the imbalance BDG is meant to avoid.
    """
    assignment = PartitionAssignment(num_partitions=num_partitions)
    total_mass = max(1, 2 * graph.num_edges)
    capacity = max(1.0, total_mass / num_partitions)
    placed: List[Set[int]] = [set() for _ in range(num_partitions)]
    loads = [0.0] * num_partitions
    work = 0.0

    def block_mass(block: Block) -> int:
        return sum(graph.degree(v) for v in block.vertices)

    ordered = sorted(blocks, key=lambda b: (-block_mass(b), b.block_id))
    for block in ordered:
        mass = block_mass(block)
        # Γ(B): the block's external 1-hop neighbourhood
        members = set(block.vertices)
        frontier: Set[int] = set()
        for v in block.vertices:
            for u in graph.neighbors(v):
                work += GREEDY_COST_PER_NEIGHBOR
                if u not in members:
                    frontier.add(u)
        best_worker = 0
        best_key: Tuple[float, float] = (float("-inf"), 0.0)
        for i in range(num_partitions):
            overlap = len(placed[i] & frontier)
            slack = 1.0 - loads[i] / capacity
            score = overlap * slack
            # Eq. 1 scores ties (e.g. zero overlap) by least-loaded
            # worker so the greedy pass cannot pile blocks on worker 0.
            key = (score, -loads[i])
            if key > best_key:
                best_key = key
                best_worker = i
        for v in block.vertices:
            assignment.assign(v, best_worker)
        placed[best_worker].update(block.vertices)
        loads[best_worker] += mass
    return assignment, work


class BDGPartitioner:
    """The paper's BDG partitioner: colouring + deterministic greedy."""

    name = "bdg"

    def __init__(
        self,
        max_depth: int = 1,
        sources_per_round: int = 128,
        seed: int = 0,
    ) -> None:
        self.max_depth = max_depth
        self.sources_per_round = sources_per_round
        self.seed = seed
        self.last_blocks: Optional[List[Block]] = None

    def cache_params(self) -> Dict[str, object]:
        """Build-cache key components: the algorithm name, every tunable
        that changes the output, and a fingerprint of this module's
        source so editing BDG itself invalidates persisted assignments."""
        from repro.parallel.cache import source_fingerprint

        return {
            "partitioner": self.name,
            "algorithm": source_fingerprint(sys.modules[__name__]),
            "max_depth": self.max_depth,
            "sources_per_round": self.sources_per_round,
            "seed": self.seed,
        }

    def partition(self, graph: Graph, num_partitions: int) -> PartitionAssignment:
        if num_partitions < 1:
            raise ValueError("need at least one partition")
        blocks, color_work = bfs_color_blocks(
            graph,
            max_depth=self.max_depth,
            sources_per_round=self.sources_per_round,
            seed=self.seed,
        )
        self.last_blocks = blocks
        assignment, greedy_work = greedy_assign_blocks(graph, blocks, num_partitions)
        assignment.partition_time_units = color_work + greedy_work
        assignment.validate_complete(graph)
        return assignment
