"""Rendering experiment results the way the paper's tables do.

``"x"`` marks an out-of-memory failure, ``"-"`` a run that exceeded the
time limit, a number the elapsed simulated seconds — matching the
legend of Tables 1 and 3.  :class:`ExperimentReport` is the structured
record a benchmark produces and EXPERIMENTS.md archives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.job import JobResult, JobStatus, jsonable


def format_cell(result: Optional[JobResult], metric: str = "time") -> str:
    """One table cell: per the paper, "x" = OOM, "-" = over limit."""
    if result is None:
        return "n/a"  # the system cannot express the workload
    if result.status is JobStatus.OOM:
        return "x"
    if result.status is JobStatus.TIMEOUT:
        return "-"
    if metric == "time":
        return f"{result.total_seconds:.3f}"
    if metric == "mining":
        return f"{result.mining_seconds:.3f}"
    if metric == "cpu":
        return f"{100 * result.cpu_utilization:.1f}%"
    if metric == "mem":
        return f"{result.peak_memory_bytes / 1e6:.2f}MB"
    if metric == "net":
        return f"{result.network_bytes / 1e6:.2f}MB"
    raise ValueError(f"unknown metric {metric!r}")


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[str]],
    row_labels: Sequence[str],
    label_header: str = "",
) -> str:
    """Fixed-width ASCII table."""
    widths = [max(len(label_header), *(len(lbl) for lbl in row_labels))]
    for c, col in enumerate(columns):
        widths.append(max(len(col), *(len(r[c]) for r in rows)) if rows else len(col))
    lines = [title]
    header = label_header.ljust(widths[0]) + "".join(
        f"  {col:>{widths[i + 1]}}" for i, col in enumerate(columns)
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label, row in zip(row_labels, rows):
        lines.append(
            label.ljust(widths[0])
            + "".join(f"  {cell:>{widths[i + 1]}}" for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[Any],
    series: Dict[str, Sequence[float]],
    fmt: str = "{:.3f}",
) -> str:
    """Tabular rendering of figure data (x column + one column per line)."""
    names = sorted(series)
    columns = [x_label] + names
    rows = []
    for i, x in enumerate(xs):
        rows.append([str(x)] + [fmt.format(series[name][i]) for name in names])
    widths = [max(len(c), *(len(r[j]) for r in rows)) if rows else len(c)
              for j, c in enumerate(columns)]
    lines = [title]
    lines.append("  ".join(c.rjust(widths[j]) for j, c in enumerate(columns)))
    lines.append("-" * (sum(widths) + 2 * (len(columns) - 1)))
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class ExperimentReport:
    """Structured outcome of one table/figure reproduction.

    ``footer`` carries host-level accounting (per-cell wall clock,
    build-cache hits, worker count) attached by the CLI; it is
    deliberately *not* part of ``data``, which stays byte-identical
    across serial and parallel runs.
    """

    experiment_id: str
    title: str
    rendered: str
    data: Dict[str, Any] = field(default_factory=dict)
    checks: List[str] = field(default_factory=list)  # shape assertions that held
    notes: List[str] = field(default_factory=list)  # documented deviations
    footer: Optional[str] = None  # host-level accounting (not in data)

    def render(self, with_footer: bool = True) -> str:
        parts = [f"== {self.experiment_id}: {self.title} ==", self.rendered]
        if self.checks:
            parts.append("shape checks: " + "; ".join(self.checks))
        if self.notes:
            parts.append("notes: " + "; ".join(self.notes))
        if with_footer and self.footer:
            parts.append(self.footer)
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to JSON-serialisable primitives (nested JobResults
        via :meth:`JobResult.to_dict`); round-trips without the export
        module."""
        def convert(value: Any) -> Any:
            if isinstance(value, JobResult):
                return value.to_dict()
            if isinstance(value, dict):
                return {str(k): convert(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [convert(v) for v in value]
            return jsonable(value)

        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "rendered": self.rendered,
            "checks": list(self.checks),
            "notes": list(self.notes),
            "data": convert(self.data),
        }

    def save(self, directory: str = "results") -> str:
        """Persist the rendered report (EXPERIMENTS.md is assembled
        from these files).  The footer is omitted — archived artifacts
        stay byte-identical whatever the worker count or cache state.
        Returns the path written."""
        import os

        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.experiment_id}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.render(with_footer=False))
            fh.write("\n")
        return path
