"""Uniform experiment runner.

Centralises the scaled experiment defaults (cluster shape, time limit)
and knows how to run every workload on every system so the per-
table/figure experiment functions stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.apps import (
    CommunityDetectionApp,
    GraphClusteringApp,
    GraphletCountingApp,
    GraphMatchingApp,
    MaxCliqueApp,
    TriangleCountingApp,
)
from repro.baselines import (
    BatchSubgraphSystem,
    EmbeddingExploreSystem,
    SingleThreadSystem,
    VertexCentricSystem,
)
from repro.baselines.common import UnsupportedWorkload
from repro.core import GMinerConfig, GMinerJob
from repro.core.api import GMinerApp
from repro.core.job import JobResult, JobStatus
from repro.graph.datasets import BuiltDataset, load_dataset
from repro.mining.clustering import FocusParams
from repro.mining.community import CommunityParams
from repro.sim.cluster import ClusterSpec
from repro.sim.failures import FailurePlan

#: The scaled stand-in for the paper's 15-node x 24-core testbed.  Our
#: graphs carry ~10³x fewer tasks, so 4 cores/node keeps the paper's
#: tasks-per-core ratio (and hence the utilisation/queueing dynamics)
#: in a realistic regime.  Experiments that sweep nodes/cores override
#: this.
EXPERIMENT_SPEC = ClusterSpec(num_nodes=15, cores_per_node=4)

#: Stand-in for the paper's 24-hour cutoff, ~10x the slowest successful
#: scaled run.
DEFAULT_TIME_LIMIT = 10.0

#: Systems usable via :func:`run_system`.
SYSTEMS = ("single-thread", "arabesque", "giraph", "graphx", "gthinker", "gminer")

#: GC parameters for benches; kept small enough that the convergent
#: refinement stays tractable in real time at bench scale.
BENCH_FOCUS_PARAMS = FocusParams(max_size=24, max_iterations=15)

#: CD similarity threshold for datasets whose attributes are the
#: synthetic uniform 5-dimension lists of footnote 7: random lists have
#: low Jaccard similarity, so the natively-attributed threshold would
#: accept nothing.
SYNTHETIC_CD_PARAMS = CommunityParams(tau=0.2)


def prepare_dataset(name: str, app: str) -> BuiltDataset:
    """Load a dataset with whatever decoration the workload needs:
    labels for GM, attribute lists for CD/GC (paper footnote 7)."""
    if app == "gm":
        return load_dataset(name, labeled=True)
    if app in ("cd", "gc"):
        return load_dataset(name, attributed=True)
    return load_dataset(name)


def gc_exemplars(dataset: BuiltDataset, count: int = 5) -> List[int]:
    """Pick GC exemplar vertices: members of one planted community when
    the dataset has ground truth, else the first vertices."""
    if dataset.community_map:
        target = min(dataset.community_map.values())
        members = sorted(
            v for v, c in dataset.community_map.items() if c == target
        )
        return members[:count]
    return sorted(dataset.graph.vertices())[:count]


def build_app(app: str, dataset: BuiltDataset) -> GMinerApp:
    """Instantiate the G-Miner application for a workload name."""
    if app == "tc":
        return TriangleCountingApp()
    if app == "mcf":
        return MaxCliqueApp()
    if app == "gm":
        return GraphMatchingApp()
    if app == "gl":
        return GraphletCountingApp(k=3)
    if app == "cd":
        from repro.graph.datasets import DATASETS

        native = DATASETS.get(dataset.name)
        if native is not None and not native.attributed:
            return CommunityDetectionApp(SYNTHETIC_CD_PARAMS)
        return CommunityDetectionApp()
    if app == "gc":
        graph = dataset.graph
        attrs = [graph.attributes(v) for v in gc_exemplars(dataset)]
        return GraphClusteringApp(attrs, params=BENCH_FOCUS_PARAMS)
    raise ValueError(f"unknown app {app!r}")


def run_gminer(
    app: str,
    dataset_name: str,
    spec: Optional[ClusterSpec] = None,
    config: Optional[GMinerConfig] = None,
    time_limit: Optional[float] = DEFAULT_TIME_LIMIT,
    failure_plan: Optional[FailurePlan] = None,
    **config_overrides,
) -> JobResult:
    """Run a workload on G-Miner with experiment defaults."""
    dataset = prepare_dataset(dataset_name, app)
    gminer_app = build_app(app, dataset)
    if config is None:
        config = GMinerConfig(
            cluster=spec or EXPERIMENT_SPEC, time_limit=time_limit
        )
    if config_overrides:
        config = config.replace(**config_overrides)
    job = GMinerJob(gminer_app, dataset.graph, config, failure_plan=failure_plan)
    return job.run()


def run_system(
    system: str,
    app: str,
    dataset_name: str,
    spec: Optional[ClusterSpec] = None,
    time_limit: Optional[float] = DEFAULT_TIME_LIMIT,
    **gminer_overrides,
) -> Optional[JobResult]:
    """Run a workload on any system; ``None`` when the system's model
    cannot express the workload (the paper's empty cells)."""
    spec = spec or EXPERIMENT_SPEC
    dataset = prepare_dataset(dataset_name, app)
    graph = dataset.graph
    try:
        if system == "gminer":
            return run_gminer(
                app, dataset_name, spec=spec, time_limit=time_limit,
                **gminer_overrides,
            )
        if system == "single-thread":
            runner = SingleThreadSystem(time_limit=None)
            exemplars = gc_exemplars(dataset) if app == "gc" else ()
            return runner.run(app, graph, exemplars=exemplars)
        if system == "gthinker":
            gminer_app = build_app(app, dataset)
            return BatchSubgraphSystem(spec, time_limit=time_limit).run_app(
                gminer_app, graph
            )
        if system == "arabesque":
            return EmbeddingExploreSystem(spec, time_limit=time_limit).run(app, graph)
        if system in ("giraph", "graphx"):
            return VertexCentricSystem(system, spec, time_limit=time_limit).run(
                app, graph
            )
    except UnsupportedWorkload:
        return None
    raise ValueError(f"unknown system {system!r}; known: {SYSTEMS}")
