"""Tests for the benchmark harness layer."""

import pytest

from repro.bench.report import ExperimentReport, format_cell, render_series, render_table
from repro.bench.runner import (
    EXPERIMENT_SPEC,
    build_app,
    gc_exemplars,
    prepare_dataset,
    run,
)
from repro.core.job import JobResult, JobStatus
from repro.sim.cluster import ClusterSpec

FAST_SPEC = ClusterSpec(num_nodes=4, cores_per_node=2)


class TestFormatting:
    def test_ok_formats_seconds(self):
        r = JobResult(status=JobStatus.OK, app_name="tc", total_seconds=1.5)
        assert format_cell(r) == "1.500"

    def test_oom_is_x(self):
        r = JobResult(status=JobStatus.OOM, app_name="tc")
        assert format_cell(r) == "x"

    def test_timeout_is_dash(self):
        r = JobResult(status=JobStatus.TIMEOUT, app_name="tc")
        assert format_cell(r) == "-"

    def test_unsupported_is_na(self):
        assert format_cell(None) == "n/a"

    def test_metric_variants(self):
        r = JobResult(
            status=JobStatus.OK,
            app_name="tc",
            total_seconds=2.0,
            mining_seconds=1.0,
            cpu_utilization=0.5,
            peak_memory_bytes=3_000_000,
            network_bytes=1_000_000,
        )
        assert format_cell(r, "mining") == "1.000"
        assert format_cell(r, "cpu") == "50.0%"
        assert format_cell(r, "mem") == "3.00MB"
        assert format_cell(r, "net") == "1.00MB"
        with pytest.raises(ValueError):
            format_cell(r, "joules")

    def test_render_table_alignment(self):
        table = render_table(
            "T", ["c1", "c2"], [["1", "22"], ["333", "4"]], ["rowA", "rowB"]
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "c1" in lines[1] and "c2" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        out = render_series("S", "x", [1, 2], {"a": [0.5, 1.5]})
        assert "0.500" in out and "1.500" in out

    def test_report_str(self):
        rep = ExperimentReport("t1", "Title", "body", checks=["c"], notes=["n"])
        text = str(rep)
        assert "t1" in text and "body" in text and "c" in text and "n" in text


class TestRunner:
    def test_prepare_dataset_decorations(self):
        assert prepare_dataset("skitter-s", "gm").graph.is_labeled
        assert prepare_dataset("skitter-s", "cd").graph.is_attributed
        assert not prepare_dataset("skitter-s", "tc").graph.is_labeled

    def test_gc_exemplars_prefer_ground_truth(self):
        built = prepare_dataset("dblp-s", "gc")
        exemplars = gc_exemplars(built)
        target = {built.community_map[v] for v in exemplars}
        assert len(target) == 1

    def test_build_app_names(self):
        for app in ("tc", "mcf", "gm", "cd", "gc", "gl"):
            built = prepare_dataset("dblp-s", app)
            assert build_app(app, built).name == app
        with pytest.raises(ValueError):
            build_app("pagerank", prepare_dataset("dblp-s", "tc"))

    def test_run_with_overrides(self):
        result = run(workload="tc", dataset="skitter-s", spec=FAST_SPEC, enable_lsh=False)
        assert result.ok

    def test_run_graphlets(self):
        # GL pulls 2-hop neighbourhoods: give it an open-ended budget
        result = run(workload="gl", dataset="skitter-s", spec=FAST_SPEC, time_limit=None)
        assert result.ok
        assert result.value["triangle"] > 0

    def test_run_all_systems_tc(self):
        for system in ("single-thread", "arabesque", "giraph", "graphx",
                       "gthinker", "gminer"):
            result = run(system=system, workload="tc", dataset="skitter-s", spec=FAST_SPEC)
            assert result is not None
            assert result.ok, system

    def test_results_agree_across_systems(self):
        values = {
            system: run(system=system, workload="tc", dataset="skitter-s", spec=FAST_SPEC).value
            for system in ("single-thread", "giraph", "gthinker", "gminer")
        }
        assert len(set(values.values())) == 1

    def test_unsupported_returns_none(self):
        assert run(system="giraph", workload="gm", dataset="skitter-s", spec=FAST_SPEC) is None

    def test_unknown_system_raises(self):
        with pytest.raises(ValueError):
            run(system="spark", workload="tc", dataset="skitter-s", spec=FAST_SPEC)

    def test_experiment_spec_shape(self):
        assert EXPERIMENT_SPEC.num_nodes == 15
