"""Task-lifecycle tracing: observability for the pipeline.

When enabled (``GMinerConfig.enable_tracing``), every worker emits a
timestamped event for each task transition — seeded, stored, dequeued,
pulled, ready, executed, buffered, migrated, finished — into a
:class:`TraceLog`.  The log supports per-task timelines and aggregate
queries (time spent per state, pull latency distributions), which is
how the pipeline's behaviour is debugged and asserted in tests.

This mirrors the instrumentation any production system of this kind
ships; it is also what produced the paper-style utilisation narratives
while tuning the reproduction.
"""

from __future__ import annotations

import enum
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


class TaskEvent(enum.Enum):
    SEEDED = "seeded"
    BUFFERED = "buffered"  # entered the task buffer (inactive)
    STORED = "stored"  # flushed into the task store
    DEQUEUED = "dequeued"  # picked up by the candidate retriever
    PULL_ISSUED = "pull_issued"
    READY = "ready"  # all candidates available; queued for compute
    EXECUTED = "executed"  # one update round completed
    MIGRATED_OUT = "migrated_out"
    MIGRATED_IN = "migrated_in"
    FINISHED = "finished"
    # -- fault-tolerance lifecycle (§7): worker-level events, emitted
    # with task_id = -1 so recovery timelines interleave with task
    # events in the same log --------------------------------------------
    WORKER_FAILED = "worker_failed"  # the node physically died
    WORKER_SUSPECTED = "worker_suspected"  # heartbeat silence > suspect_timeout
    WORKER_CONFIRMED_DOWN = "worker_confirmed_down"  # silence > 2x; recovery starts
    WORKER_RECOVERED = "worker_recovered"  # re-admitted by the master
    RPC_RETRY = "rpc_retry"  # a pull timed out and was retransmitted


@dataclass(frozen=True)
class TraceRecord:
    """One event: (virtual time, worker, task, event, detail)."""

    time: float
    worker: int
    task_id: int
    event: TaskEvent
    detail: float = 0.0  # event-specific payload (e.g. round number)


class TraceLog:
    """Append-only event log with query helpers."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self._records: List[TraceRecord] = []
        self.dropped = 0

    def emit(
        self,
        time: float,
        worker: int,
        task_id: int,
        event: TaskEvent,
        detail: float = 0.0,
    ) -> None:
        if self.capacity is not None and len(self._records) >= self.capacity:
            self.dropped += 1
            return
        self._records.append(TraceRecord(time, worker, task_id, event, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    # -- queries ---------------------------------------------------------

    def for_task(self, task_id: int) -> List[TraceRecord]:
        """The full timeline of one task, in event order."""
        return [r for r in self._records if r.task_id == task_id]

    def count(self, event: TaskEvent) -> int:
        return sum(1 for r in self._records if r.event is event)

    def tasks_touching(self, worker: int) -> List[int]:
        return sorted({r.task_id for r in self._records if r.worker == worker})

    def pull_latencies(self) -> List[float]:
        """Per task: time from first PULL_ISSUED to the next READY.

        The distribution the RCV cache and LSH ordering are meant to
        shrink — a direct observability hook on the pipeline's core
        claim.
        """
        first_pull: Dict[int, float] = {}
        latencies: List[float] = []
        for r in self._records:
            if r.event is TaskEvent.PULL_ISSUED:
                first_pull.setdefault(r.task_id, r.time)
            elif r.event is TaskEvent.READY and r.task_id in first_pull:
                latencies.append(r.time - first_pull.pop(r.task_id))
        return latencies

    def lifetime(self, task_id: int) -> Optional[float]:
        """Seeded/migrated-in → finished duration, if both were seen."""
        timeline = self.for_task(task_id)
        if not timeline:
            return None
        start = next(
            (
                r.time
                for r in timeline
                if r.event in (TaskEvent.SEEDED, TaskEvent.MIGRATED_IN)
            ),
            None,
        )
        end = next(
            (r.time for r in reversed(timeline) if r.event is TaskEvent.FINISHED),
            None,
        )
        if start is None or end is None:
            return None
        return end - start

    def rounds_of(self, task_id: int) -> int:
        return sum(
            1 for r in self._records
            if r.task_id == task_id and r.event is TaskEvent.EXECUTED
        )

    def summary(self) -> Dict[str, float]:
        """Aggregate statistics for reports and assertions."""
        finished = self.count(TaskEvent.FINISHED)
        executed = self.count(TaskEvent.EXECUTED)
        latencies = self.pull_latencies()
        return {
            "events": float(len(self._records)),
            "tasks_finished": float(finished),
            "rounds_executed": float(executed),
            "migrations": float(self.count(TaskEvent.MIGRATED_IN)),
            "mean_pull_latency": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "dropped": float(self.dropped),
        }


class NullTraceLog(TraceLog):
    """No-op log used when tracing is disabled (zero overhead)."""

    def emit(self, *args, **kwargs) -> None:  # noqa: D102
        return
