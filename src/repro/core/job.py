"""Job orchestration: run a G-Miner application on a simulated cluster.

:class:`GMinerJob` wires the full system — HDFS load, partitioning
(BDG or hash), worker construction, the master's coordination loops,
optional failure injection — runs the simulation to completion, and
returns a :class:`JobResult` carrying every quantity the paper's tables
and figures report: elapsed (simulated) time, average CPU utilisation,
peak aggregate memory, network bytes, utilisation timelines and
pipeline statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro import kernels
from repro.core.aggregator import AggregatorState
from repro.core.api import GMinerApp
from repro.core.config import GMinerConfig
from repro.core.master import Master
from repro.core.tracing import NullTraceLog, TaskEvent, TraceLog
from repro.core.worker import SimWorker
from repro.graph.graph import Graph, VertexData
from repro.obs import MASTER_TID, ObsSession, current_collector
from repro.partitioning import BDGPartitioner, HashPartitioner, PartitionAssignment
from repro.sim.cluster import Cluster, build_cluster
from repro.sim.engine import Simulator
from repro.sim.errors import SimulatedOOMError
from repro.sim.failures import FailureInjector, FailurePlan
from repro.sim.hdfs import SimulatedHDFS
from repro.sim.metrics import UtilizationTimeline
from repro.verify import InvariantMonitor, verify_env_enabled


class JobStatus(enum.Enum):
    OK = "ok"
    OOM = "oom"  # the paper's "x" entries
    TIMEOUT = "timeout"  # the paper's "-" entries


class JobController:
    """Global liveness tracking: when is the job done?

    The job finishes when every worker's task generator has completed
    and the number of live tasks reaches zero with no recovery pending.
    """

    def __init__(self, sim: Simulator, num_workers: int) -> None:
        self.sim = sim
        self.live = 0
        self.total_created = 0
        # lifecycle ledger: created + restored == dead + lost once the
        # job finishes (the task-conservation law repro.verify audits)
        self.total_dead = 0
        self.total_lost = 0
        self.total_restored = 0
        self.finished = False
        self.finish_time: Optional[float] = None
        self._seeding_pending: Set[int] = set(range(num_workers))
        self.recovery_pending = 0

    def task_created(self) -> None:
        """A task entered the system (seeding, splitting, re-injection)."""
        self.live += 1
        self.total_created += 1

    def task_dead(self) -> None:
        """A task finished; may complete the job."""
        self.live -= 1
        self.total_dead += 1
        self._check()

    def tasks_lost(self, n: int) -> None:
        """A failed worker took ``n`` live tasks down with it."""
        self.live -= n
        self.total_lost += n

    def tasks_restored(self, n: int) -> None:
        """Checkpoint recovery re-created ``n`` live tasks."""
        self.live += n
        self.total_restored += n

    def seeding_finished(self, worker_id: int) -> None:
        """A worker's task generator completed its scan."""
        self._seeding_pending.discard(worker_id)
        self._check()

    def begin_recovery(self) -> None:
        """Hold job completion open while a worker recovers."""
        self.recovery_pending += 1

    def end_recovery(self) -> None:
        """Recovery done; completion may now trigger."""
        self.recovery_pending -= 1
        self._check()

    def _check(self) -> None:
        if (
            not self.finished
            and not self._seeding_pending
            and self.recovery_pending == 0
            and self.live == 0
        ):
            self.finished = True
            self.finish_time = self.sim.now


@dataclass
class JobResult:
    """Everything a finished (or failed) job reports."""

    status: JobStatus
    app_name: str
    value: Any = None
    aggregated: Any = None
    setup_seconds: float = 0.0
    partition_seconds: float = 0.0
    mining_seconds: float = 0.0
    total_seconds: float = 0.0
    cpu_utilization: float = 0.0
    peak_memory_bytes: int = 0
    network_bytes: int = 0
    disk_bytes: int = 0
    num_results: int = 0
    stats: Dict[str, float] = field(default_factory=dict)
    timeline: Optional[UtilizationTimeline] = None
    mining_window: Tuple[float, float] = (0.0, 0.0)
    trace: Optional[TraceLog] = None
    #: Finalized ``repro.obs`` snapshot (schema ``repro.obs.run/1``)
    #: when the job ran with observability on; ``None`` otherwise.
    obs: Optional[Dict[str, Any]] = None
    #: Native-engine diagnostics (wall-clock seconds, pool size, steal
    #: count, backend) when the job ran under ``execution="native"``;
    #: ``None`` for simulated runs.  Deliberately separate from
    #: ``stats``: these are schedule- and host-dependent, while every
    #: ``stats`` entry of a native result is bit-deterministic.
    native: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        """True when the job completed within memory and time budgets."""
        return self.status is JobStatus.OK

    @property
    def peak_memory_gb(self) -> float:
        """Cluster-wide peak memory in GB (the paper's Mem columns)."""
        return self.peak_memory_bytes / 1e9

    @property
    def network_gb(self) -> float:
        """Total network traffic in GB (the paper's Net columns)."""
        return self.network_bytes / 1e9

    def utilization_series(self, bins: int = 50):
        """CPU/network/disk utilisation time series (Figures 5–6)."""
        if self.timeline is None:
            raise ValueError("no timeline recorded")
        start, end = self.mining_window
        return self.timeline.sample(end, bins=bins, start=start)

    def to_dict(self, bins: int = 20) -> Dict[str, Any]:
        """Flatten to JSON-serialisable primitives.

        Drops the non-serialisable timeline/trace objects but keeps
        their summaries (a sampled utilisation series, the trace
        summary).  This is the canonical serialisation;
        ``repro.bench.export`` delegates here.
        """
        out: Dict[str, Any] = {
            "status": self.status.value,
            "app": self.app_name,
            "setup_seconds": self.setup_seconds,
            "partition_seconds": self.partition_seconds,
            "mining_seconds": self.mining_seconds,
            "total_seconds": self.total_seconds,
            "cpu_utilization": self.cpu_utilization,
            "peak_memory_bytes": self.peak_memory_bytes,
            "network_bytes": self.network_bytes,
            "disk_bytes": self.disk_bytes,
            "num_results": self.num_results,
            "stats": dict(self.stats),
        }
        out["value"] = jsonable(self.value)
        out["aggregated"] = jsonable(self.aggregated)
        if self.timeline is not None and self.mining_window[1] > self.mining_window[0]:
            times, series = self.utilization_series(bins=bins)
            out["utilization"] = {"times": times, **series}
        if self.trace is not None:
            out["trace_summary"] = self.trace.summary()
        if self.native is not None:
            out["native"] = dict(self.native)
        if self.obs is not None:
            # metrics travel (they are small and deterministic); the
            # full span list stays behind ``result.obs`` itself
            out["obs"] = {
                "schema": self.obs.get("schema"),
                "metrics": self.obs.get("metrics"),
                "num_spans": len(self.obs.get("spans", ())),
                "spans_dropped": self.obs.get("spans_dropped", 0),
            }
        return out


def jsonable(value: Any) -> Any:
    """Best-effort conversion of mining results to JSON primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    return repr(value)


class GMinerJob:
    """Configure and execute one G-Miner job."""

    def __init__(
        self,
        app: GMinerApp,
        graph: Graph,
        config: Optional[GMinerConfig] = None,
        failure_plan: Optional[FailurePlan] = None,
    ) -> None:
        self.app = app
        self.graph = graph
        self.config = config or GMinerConfig()
        self.config.validate()
        if failure_plan is not None:
            # fail fast: a malformed chaos schedule should surface at
            # construction, not minutes into the run.  Native fault
            # plans target real worker processes and are only
            # meaningful under execution="native" (lazy import:
            # repro.native depends on this module).
            from repro.native.chaos import NativeFaultPlan

            if isinstance(failure_plan, NativeFaultPlan):
                if self.config.execution != "native":
                    raise ValueError(
                        "NativeFaultPlan injects faults into the real "
                        "process pool and requires execution='native'; "
                        "use sim.failures.FailurePlan for simulated "
                        "chaos runs"
                    )
                failure_plan.validate()
            else:
                failure_plan.validate(num_nodes=self.config.cluster.num_nodes)
        self.failure_plan = failure_plan
        self.workers: List[SimWorker] = []
        self.master: Optional[Master] = None
        self.cluster: Optional[Cluster] = None
        self.assignment: Optional[PartitionAssignment] = None
        self.obs: Optional[ObsSession] = None
        self.verify: Optional[InvariantMonitor] = None

    # ------------------------------------------------------------------

    def _partition(self, num_workers: int) -> PartitionAssignment:
        if self.config.partitioner == "bdg":
            partitioner = BDGPartitioner()
        else:
            partitioner = HashPartitioner()
        # Partitioning is a pure function of (graph, algorithm, k);
        # when a build cache is active, repeated cells — and repeated
        # bench invocations, via the disk level — reuse the assignment.
        from repro.parallel.cache import get_build_cache

        cache = get_build_cache()
        if cache is None:
            return partitioner.partition(self.graph, num_workers)
        params = dict(
            partitioner.cache_params(),
            num_workers=num_workers,
            graph=self.graph.fingerprint(),
        )
        return cache.lookup(
            "partition",
            params,
            lambda: partitioner.partition(self.graph, num_workers),
        )

    def _setup_costs(self, assignment: PartitionAssignment, cluster: Cluster) -> Tuple[float, float]:
        """(hdfs load + shuffle seconds, partitioning seconds)."""
        spec = self.config.cluster
        graph_bytes = self.graph.estimate_size()
        # initial parallel load from HDFS
        load_seconds = graph_bytes / (4e6 * spec.num_nodes) + 2e-3
        # partitioning runs distributed across the cluster
        partition_seconds = assignment.partition_time_units / (
            spec.core_speed * spec.num_nodes
        )
        # shuffle: vertices move from their initial loader (contiguous
        # ranges) to their assigned owner
        vids = sorted(self.graph.vertices())
        chunk = max(1, (len(vids) + spec.num_nodes - 1) // spec.num_nodes)
        moved = 0
        for i, vid in enumerate(vids):
            loader = min(i // chunk, spec.num_nodes - 1)
            if assignment.owner_of(vid) != loader:
                moved += self.graph.vertex_data(vid).estimate_size()
        shuffle_seconds = moved / (spec.net_bandwidth * spec.num_nodes)
        cluster.network.bytes_counter.add(moved)
        return load_seconds + shuffle_seconds, partition_seconds

    # ------------------------------------------------------------------

    def run(self) -> JobResult:
        if self.config.execution == "native":
            # the real multiprocess engine; refuses failure plans and
            # has no simulated timeline (lazy import: repro.native
            # depends on this module)
            from repro.native import run_native

            return run_native(
                self.app, self.graph, self.config, failure_plan=self.failure_plan
            )
        if self.config.kernel_backend is None:
            return self._run()
        # pin the set-operation backend for the duration of the job;
        # backends are work-unit-identical, so this cannot change the
        # simulated metrics, only wall-clock speed
        with kernels.use_backend(self.config.kernel_backend):
            return self._run()

    def _run(self) -> JobResult:
        sim = Simulator()
        collector = current_collector()
        obs: Optional[ObsSession] = None
        if self.config.enable_obs or collector is not None:
            from repro.core.task import peek_task_id

            obs = ObsSession(
                clock=lambda: sim.now,
                name=self.app.name,
                span_capacity=self.config.obs_span_capacity,
            )
            obs.task_base = peek_task_id()
            sim.obs = obs
        self.obs = obs
        verify = None
        if self.config.verify or verify_env_enabled():
            verify = InvariantMonitor(clock=lambda: sim.now)
            sim.verify = verify
        self.verify = verify
        if obs is None and verify is None:
            return self._run_body(sim)
        # meter vectorised kernel batches for the duration of the job;
        # restored unconditionally so a failing run cannot leak the
        # process-global hook into the next one
        if obs is not None and verify is not None:
            obs_hook, verify_hook = obs.kernel_batch, verify.kernel_batch

            def hook(op, units):
                obs_hook(op, units)
                verify_hook(op, units)

        else:
            hook = obs.kernel_batch if obs is not None else verify.kernel_batch
        previous_hook = kernels.set_metering_hook(hook)
        try:
            result = self._run_body(sim)
        finally:
            kernels.set_metering_hook(previous_hook)
        if collector is not None:
            collector.add_run(result.obs)
        return result

    def _run_body(self, sim: Simulator) -> JobResult:
        spec = self.config.cluster
        num_workers = spec.num_nodes
        cluster = build_cluster(spec, sim, extra_network_endpoints=1)
        self.cluster = cluster
        if self.obs is not None:
            cluster.network.obs = self.obs
        if self.verify is not None:
            cluster.network.verify = self.verify
        master_endpoint = num_workers
        hdfs = SimulatedHDFS(sim)

        assignment = self._partition(num_workers)
        assignment.validate_complete(self.graph)
        self.assignment = assignment
        transfer_seconds, partition_seconds = self._setup_costs(assignment, cluster)
        setup_seconds = transfer_seconds + partition_seconds

        controller = JobController(sim, num_workers)
        aggregator = self.app.make_aggregator()
        owner_of = assignment.owner_of

        workers: List[SimWorker] = []
        for worker_id in range(num_workers):
            agg_state = AggregatorState(aggregator) if aggregator else None
            worker = SimWorker(
                worker_id=worker_id,
                node=cluster.node(worker_id),
                cluster=cluster,
                config=self.config,
                app=self.app,
                controller=controller,
                owner_of=owner_of,
                aggregator_state=agg_state,
                master_endpoint=master_endpoint,
            )
            worker.hdfs = hdfs
            if self.obs is not None:
                worker.attach_obs(self.obs)
            if self.verify is not None:
                worker.verify = self.verify
            workers.append(worker)
        self.workers = workers

        trace = (
            TraceLog(capacity=self.config.trace_capacity)
            if self.config.enable_tracing
            else None
        )
        if trace is not None:
            for worker in workers:
                worker.trace = trace
        self.trace = trace

        master = Master(
            cluster=cluster,
            config=self.config,
            num_workers=num_workers,
            endpoint=master_endpoint,
            aggregator=aggregator,
            controller=controller,
        )
        if trace is not None:
            master.trace = trace
        if self.obs is not None:
            master.attach_obs(self.obs)
        if self.verify is not None:
            master.verify = self.verify
        self.master = master

        # distribute partitions (memory charged immediately; the time
        # cost is folded into setup_seconds)
        for worker_id in range(num_workers):
            vids = assignment.vertices_of(worker_id)
            workers[worker_id].load_partition(
                {vid: self.graph.vertex_data(vid) for vid in vids}
            )

        def start_mining():
            for worker in workers:
                worker.seed_tasks()
            master.start()
            for worker in workers:
                self._arm_worker_tick(worker, controller)

        sim.schedule(setup_seconds, start_mining)

        if self.failure_plan is not None:
            self._arm_failures(cluster, hdfs, master, controller)

        time_limit = self.config.time_limit
        status = JobStatus.OK
        try:
            sim.run(until=time_limit)
        except SimulatedOOMError:
            status = JobStatus.OOM
        if status is JobStatus.OK and not controller.finished:
            status = JobStatus.TIMEOUT

        result = self._collect(
            status, controller, cluster, setup_seconds, partition_seconds
        )
        if self.verify is not None:
            # the full conservation audit; on OK runs the controller is
            # finished and the task ledger must balance exactly
            self.verify.check_end_of_job(
                controller=controller,
                workers=workers,
                master=master,
                cluster=cluster,
            )
        result.trace = getattr(self, "trace", None)
        if self.obs is not None:
            self._finalize_obs(
                result, controller, cluster, transfer_seconds, partition_seconds
            )
        return result

    def _finalize_obs(
        self,
        result: JobResult,
        controller: JobController,
        cluster: Cluster,
        transfer_seconds: float,
        partition_seconds: float,
    ) -> None:
        """Record job-phase spans and run-level gauges, then freeze the
        session into ``result.obs``.

        The gauges here are the regression gate's tracked quantities
        (``repro.obs.compare``): simulated makespan, message count,
        network bytes, tasks created and charged work units.
        """
        obs = self.obs
        finish = result.total_seconds
        setup_seconds = result.setup_seconds
        obs.tracer.complete(
            "job.partition",
            cat="job",
            tid=MASTER_TID,
            start=min(transfer_seconds, finish),
            end=min(setup_seconds, finish),
        )
        obs.tracer.complete(
            "job.setup",
            cat="job",
            tid=MASTER_TID,
            start=0.0,
            end=min(setup_seconds, finish),
            transfer=transfer_seconds,
            partition=partition_seconds,
        )
        if finish > setup_seconds:
            obs.tracer.complete(
                "job.mining", cat="job", tid=MASTER_TID, start=setup_seconds, end=finish
            )
        gauge = obs.registry.gauge
        gauge("job.makespan").set(finish)
        gauge("job.messages").set(float(cluster.network.messages_sent))
        gauge("job.network_bytes").set(float(cluster.network.bytes_counter.total))
        gauge("job.tasks_created").set(float(controller.total_created))
        gauge("job.work_units").set(
            float(sum(n.cores.total_work_units for n in cluster.nodes))
        )
        gauge("job.peak_memory_bytes").set(float(result.peak_memory_bytes))
        result.obs = obs.finalize(
            end=finish,
            meta={"app": self.app.name, "status": result.status.value},
        )

    # ------------------------------------------------------------------

    def _arm_worker_tick(self, worker: SimWorker, controller: JobController) -> None:
        """Periodic per-worker loop: progress + agg reports + liveness.

        Backs off exponentially while the worker idles so a finished
        cluster doesn't spin the event loop.
        """
        base = self.config.progress_interval
        state = {"interval": base}
        verify = self.verify
        master = self.master

        def tick():
            if verify is not None:
                # barrier checks piggybacking on this existing event:
                # the monitor never schedules events of its own, so
                # enabling it cannot perturb the simulated timeline
                if worker.node.alive:
                    verify.check_worker(worker)
                if master is not None:
                    verify.check_master(master)
                verify.check_network(worker.cluster.network)
                verify.check_work(worker.cluster.nodes)
            if controller.finished:
                return
            if worker.node.alive:
                worker.send_progress()
                worker.send_agg_report()
                if worker.node.cores.busy_cores == 0 and worker.node.cores.queued == 0:
                    worker._flush_buffer(force=True)
                worker._pump_retriever()
            if worker.idle:
                state["interval"] = min(state["interval"] * 2.0, 1.0)
            else:
                state["interval"] = base
            worker.cluster.sim.schedule(state["interval"], tick)

        worker.cluster.sim.schedule(base, tick)

    def _arm_failures(
        self,
        cluster: Cluster,
        hdfs: SimulatedHDFS,
        master: Master,
        controller: JobController,
    ) -> None:
        """Arm the full degraded-mode stack for this failure plan.

        The *physical* layer (nodes halting, links degrading, reboots
        reloading the checkpoint) always runs from the injector — a
        dying node needs no detector to lose its memory.  How the rest
        of the cluster *finds out* is the protocol's job: by default the
        master's heartbeat suspect→confirm monitor (§7's "missing
        progress reports"), with the legacy direct injector→master hook
        kept only behind ``failure_detection="oracle"`` for tests.
        """
        workers = self.workers
        plan = self.failure_plan
        heartbeat_mode = self.config.failure_detection == "heartbeat"

        # degrade the fabric: seeded loss/duplication/reorder/slow-link/
        # partition behaviour, compiled from the declarative plan
        fault_model = plan.build_link_fault_model()
        if fault_model is not None:
            cluster.network.install_faults(fault_model)

        # arm the degraded-mode protocol on every worker: heartbeats,
        # pull retransmit timers, duplicate suppression
        for worker in workers:
            worker.enable_fault_tolerance(seed=plan.seed)

        # in heartbeat mode a physical failure holds the job open until
        # BOTH the reboot finished restoring AND the master re-admitted
        # the worker (else completion could race the WorkerUp broadcast
        # and strand re-injected tasks)
        pending_readmit: Dict[int, int] = {}
        obs = self.obs
        recovery_spans: Dict[int, Any] = {}

        def on_readmitted(worker_id: int) -> None:
            if pending_readmit.get(worker_id, 0) > 0:
                pending_readmit[worker_id] -= 1
                controller.end_recovery()

        if heartbeat_mode:
            master.on_worker_readmitted = on_readmitted
            master.start_failure_monitor()

        def on_fail(node_id: int) -> None:
            worker = workers[node_id]
            controller.begin_recovery()
            if heartbeat_mode:
                controller.begin_recovery()
                pending_readmit[node_id] = pending_readmit.get(node_id, 0) + 1
            lost = worker.on_failure()
            controller.tasks_lost(lost)
            master.trace.emit(
                cluster.sim.now, node_id, -1, TaskEvent.WORKER_FAILED
            )
            if obs is not None:
                obs.tracer.instant(
                    "worker.failed", cat="fault", tid=node_id, lost=lost
                )
                recovery_spans[node_id] = obs.tracer.begin(
                    "worker.recovery", cat="fault", tid=node_id
                )
            if not heartbeat_mode:
                master.handle_worker_failure(node_id)

        def on_recover(node_id: int) -> None:
            worker = workers[node_id]
            # reload partition + checkpoint from HDFS before resuming
            partition_bytes = sum(
                v.estimate_size() for v in worker.vertex_table.values()
            )
            read_seconds = partition_bytes / 4e6 + 2e-3

            def restore():
                restored = worker.recover(hdfs)
                controller.tasks_restored(restored)
                self._arm_worker_tick(worker, controller)
                worker._pump_retriever()
                finish_restore()

            def finish_restore():
                # a pre-checkpoint death recovers by re-seeding, which
                # runs asynchronously on the cores: hold the job open
                # until the re-scan has re-created every task
                if worker._seeding_done:
                    if obs is not None:
                        obs.tracer.finish(recovery_spans.pop(node_id, None))
                    controller.end_recovery()
                    if not heartbeat_mode:
                        master.handle_worker_recovery(node_id)
                else:
                    cluster.sim.schedule(
                        self.config.progress_interval, finish_restore
                    )

            cluster.sim.schedule(read_seconds, restore)

        injector = FailureInjector(
            cluster,
            plan,
            on_fail=on_fail,
            on_recover=on_recover,
            controller=controller,
        )
        injector.arm()
        self.injector = injector

    # ------------------------------------------------------------------

    def _collect(
        self,
        status: JobStatus,
        controller: JobController,
        cluster: Cluster,
        setup_seconds: float,
        partition_seconds: float,
    ) -> JobResult:
        finish = controller.finish_time if controller.finished else cluster.sim.now
        mining_start = setup_seconds
        mining_seconds = max(0.0, finish - mining_start)

        results: Dict[int, Any] = {}
        for worker in self.workers:
            results.update(worker.results)
        value = self.app.combine_results(results.values()) if results else None

        aggregated = None
        agg = self.app.make_aggregator()
        if agg is not None:
            partials = [
                w.agg.local_partial for w in self.workers if w.agg is not None
            ]
            if self.failure_plan is not None and self.master is not None:
                # the master never crashes in this fault model, so its
                # last-reported copy of each worker's partial is durable:
                # a bound discovered, reported and then lost to a worker
                # crash still reaches the final aggregate.  Only sound
                # for idempotent/monotone merges (MCF's max), which is
                # why it is gated to degraded runs.
                partials.extend(self.master.agg_partials.values())
            aggregated = agg.merge_all(partials) if partials else agg.initial()

        meters = {
            "cpu": _merged_meter([n.cores.meter for n in cluster.nodes], "cpu"),
            "network": _merged_meter(
                [cluster.network.node_meter(n.node_id) for n in cluster.nodes],
                "network",
            ),
            "disk": _merged_meter([n.disk.meter for n in cluster.nodes], "disk"),
        }
        timeline = UtilizationTimeline(meters=meters)

        stats: Dict[str, float] = {
            # total charged work units across the cluster (the quantity
            # the obs gate tracks and the native engine must reproduce
            # bit-for-bit for schedule-independent workloads)
            "work_units": sum(n.cores.total_work_units for n in cluster.nodes),
            "tasks_created": controller.total_created,
            "steals_brokered": self.master.steals_brokered if self.master else 0,
            "cache_hits": sum(c.hits for w in self.workers for c in w.caches),
            "cache_misses": sum(c.misses for w in self.workers for c in w.caches),
            "vertices_pulled": sum(w.stats.vertices_pulled for w in self.workers),
            "re_pulls": sum(w.stats.re_pulls for w in self.workers),
            "tasks_migrated": sum(w.stats.tasks_migrated_in for w in self.workers),
            "rounds_executed": sum(w.stats.rounds_executed for w in self.workers),
            "disk_spills": sum(w.store.disk_spills for w in self.workers),
            "disk_loads": sum(w.store.disk_loads for w in self.workers),
            "checkpoints": sum(w.stats.checkpoints for w in self.workers),
            "overflow_inserts": sum(
                c.rejected_inserts for w in self.workers for c in w.caches
            ),
            # -- degraded-mode protocol counters (§7): all zero on
            # fault-free runs, so fingerprints stay stable ---------------
            "failures_detected": self.master.failures_detected if self.master else 0,
            "workers_suspected": self.master.workers_suspected if self.master else 0,
            "readmissions": self.master.readmissions if self.master else 0,
            "stale_messages_dropped": (
                self.master.stale_messages_dropped if self.master else 0
            ),
            "unknown_messages_dropped": (
                self.master.unknown_messages_dropped if self.master else 0
            ),
            "heartbeats_sent": sum(w.stats.heartbeats_sent for w in self.workers),
            "rpc_retries": sum(w.stats.rpc_retries for w in self.workers),
            "rpc_backoff_cycles": sum(
                w.stats.rpc_backoff_cycles for w in self.workers
            ),
            "duplicate_responses_dropped": sum(
                w.stats.duplicate_responses_dropped for w in self.workers
            ),
            "stale_responses_dropped": sum(
                w.stats.stale_responses_dropped for w in self.workers
            ),
            "duplicate_migrations_dropped": sum(
                w.stats.duplicate_migrations_dropped for w in self.workers
            ),
            "migration_retransmits": sum(
                w.stats.migration_retransmits for w in self.workers
            ),
        }
        fault_model = cluster.network.faults
        stats.update(
            fault_model.stats()
            if fault_model is not None
            else {
                "net_fault_dropped": 0,
                "net_fault_partition_dropped": 0,
                "net_fault_duplicated": 0,
                "net_fault_delayed": 0,
            }
        )
        hits = stats["cache_hits"]
        misses = stats["cache_misses"]
        stats["cache_hit_rate"] = hits / (hits + misses) if hits + misses else 0.0

        disk_bytes = sum(
            n.disk.bytes_read.total + n.disk.bytes_written.total for n in cluster.nodes
        )

        return JobResult(
            status=status,
            app_name=self.app.name,
            value=value,
            aggregated=aggregated,
            setup_seconds=setup_seconds,
            partition_seconds=partition_seconds,
            mining_seconds=mining_seconds,
            total_seconds=finish,
            cpu_utilization=cluster.cpu_utilization(mining_start, finish)
            if finish > mining_start
            else 0.0,
            peak_memory_bytes=cluster.peak_memory_bytes(),
            network_bytes=cluster.network.bytes_counter.total,
            disk_bytes=disk_bytes,
            num_results=len(results),
            stats=stats,
            timeline=timeline,
            mining_window=(mining_start, finish),
        )


def _merged_meter(meters, name: str):
    """Merge per-node meters into one cluster-wide meter."""
    from repro.sim.metrics import ResourceMeter

    merged = ResourceMeter(name=name, capacity=sum(m.capacity for m in meters))
    for meter in meters:
        for start, end, units in meter.intervals:
            merged.add_interval(start, end, units)
    return merged
