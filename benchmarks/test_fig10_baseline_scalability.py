"""Figure 10 — scalability of the baseline systems on TC.

Expected shape: the paper's point is the *absence* of a scaling
guarantee — adding nodes does not reliably help these systems."""

import math

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_fig10_baseline_scalability(benchmark):
    report = run_experiment(benchmark, experiments.fig10_baseline_scalability)
    for dataset, series in report.data.items():
        for system, times in series.items():
            finite = [t for t in times if not math.isnan(t)]
            assert finite, f"{system} never completed on {dataset}"
