"""Partition assignments: which worker owns which vertex."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.graph.graph import Graph


@dataclass
class PartitionAssignment:
    """Vertex → worker map plus derived quality metrics.

    ``partition_time_units`` records the work the partitioner itself
    performed (charged as simulated time in Figure 11's "Partition(s)"
    bars).
    """

    num_partitions: int
    owner: Dict[int, int] = field(default_factory=dict)
    partition_time_units: float = 0.0

    def assign(self, vid: int, worker: int) -> None:
        if not 0 <= worker < self.num_partitions:
            raise ValueError(f"worker {worker} out of range")
        self.owner[vid] = worker

    def owner_of(self, vid: int) -> int:
        return self.owner[vid]

    def vertices_of(self, worker: int) -> List[int]:
        return sorted(v for v, w in self.owner.items() if w == worker)

    def partition_sizes(self) -> List[int]:
        sizes = [0] * self.num_partitions
        for worker in self.owner.values():
            sizes[worker] += 1
        return sizes

    def balance_ratio(self) -> float:
        """max/mean partition size; 1.0 is perfectly balanced."""
        sizes = self.partition_sizes()
        nonzero_mean = sum(sizes) / len(sizes) if sizes else 0.0
        if nonzero_mean == 0:
            return 1.0
        return max(sizes) / nonzero_mean

    def edge_cut_fraction(self, graph: Graph) -> float:
        """Fraction of edges whose endpoints live on different workers.

        The locality metric BDG optimises: a lower cut means fewer
        remote candidate pulls during mining.
        """
        if graph.num_edges == 0:
            return 0.0
        cut = 0
        for u in graph.vertices():
            ou = self.owner.get(u)
            for v in graph.neighbors(u):
                if v > u and self.owner.get(v) != ou:
                    cut += 1
        return cut / graph.num_edges

    def validate_complete(self, graph: Graph) -> None:
        """Raise if any graph vertex is unassigned."""
        missing = [v for v in graph.vertices() if v not in self.owner]
        if missing:
            raise ValueError(
                f"{len(missing)} vertices unassigned (first: {missing[:5]})"
            )
