"""Figures 8 & 9 — vertical (cores/node) and horizontal (nodes)
scalability of G-Miner on Friendster (MCF and GM).

Expected shape: more cores/node reduces elapsed time; more nodes does
not hurt (gains flatten once resources exceed the scaled workload,
which the paper also observes)."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_fig8_vertical(benchmark):
    report = run_experiment(benchmark, experiments.fig8_vertical)
    for name, times in report.data.items():
        assert times[-1] < times[0], name


def test_fig9_horizontal(benchmark):
    report = run_experiment(benchmark, experiments.fig9_horizontal)
    for name, times in report.data.items():
        assert times[-1] <= times[0] * 1.2, name
