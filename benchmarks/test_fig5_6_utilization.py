"""Figures 5 & 6 — CPU/network/disk utilisation timelines of the
G-thinker-like system vs G-Miner running GM on Friendster.

Expected shape: G-Miner's pipeline keeps CPU continuously busy while
the batch system alternates compute bursts with network-bound troughs."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_fig5_6_utilization(benchmark):
    report = run_experiment(benchmark, experiments.fig5_6_utilization)
    _, gthinker = report.data["gthinker"]
    _, gminer = report.data["gminer"]
    mean = lambda xs: sum(xs) / len(xs)
    assert mean(gminer["cpu"]) > mean(gthinker["cpu"])
