"""Resource accounting: busy intervals and utilisation time series.

The paper reports average CPU utilisation (Tables 1 and 4) and plots
CPU/network/disk utilisation over time (Figures 5 and 6).  Every
simulated resource owns a :class:`ResourceMeter` that records busy
intervals; :class:`UtilizationTimeline` bins those intervals into a
sampled utilisation-percentage series suitable for the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class ResourceMeter:
    """Tracks busy time of a resource with some capacity.

    ``capacity`` is the number of units that can be busy at once (e.g.
    24 for a 24-core pool, 1 for a NIC or a disk).  Utilisation over a
    window is ``busy_unit_seconds / (capacity * window)``.
    """

    name: str
    capacity: float = 1.0
    _intervals: List[Tuple[float, float, float]] = field(default_factory=list)
    _open: Dict[int, Tuple[float, float]] = field(default_factory=dict)
    _next_token: int = 0

    def begin(self, now: float, units: float = 1.0) -> int:
        """Record the start of a busy period of ``units`` capacity.

        Returns a token to pass to :meth:`end`.
        """
        token = self._next_token
        self._next_token += 1
        self._open[token] = (now, units)
        return token

    def end(self, now: float, token: int) -> None:
        """Close the busy period identified by ``token``.

        Ending an unknown (never issued, or already ended) token is a
        caller bug; raise a diagnosable error instead of a bare
        ``KeyError``.
        """
        entry = self._open.pop(token, None)
        if entry is None:
            raise ValueError(
                f"meter {self.name!r}: end() called with unknown token "
                f"{token!r} (never issued by begin(), or already ended)"
            )
        start, units = entry
        if now > start:
            self._intervals.append((start, now, units))

    def add_interval(self, start: float, end: float, units: float = 1.0) -> None:
        """Record a complete busy interval directly."""
        if end > start:
            self._intervals.append((start, end, units))

    def busy_unit_seconds(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Total unit-seconds of busy time overlapping ``[start, end]``.

        An inverted window (``end < start``) is always a caller bug —
        a silent 0.0 here has hidden swapped arguments before.
        """
        if end is not None and end < start:
            raise ValueError(
                f"meter {self.name!r}: busy_unit_seconds window is inverted "
                f"(start={start}, end={end})"
            )
        total = 0.0
        for s, e, units in self._intervals:
            lo = max(s, start)
            hi = e if end is None else min(e, end)
            if hi > lo:
                total += (hi - lo) * units
        return total

    def utilization(self, start: float, end: float) -> float:
        """Average utilisation fraction (0..1) over ``[start, end]``."""
        window = end - start
        if window <= 0 or self.capacity <= 0:
            return 0.0
        return min(1.0, self.busy_unit_seconds(start, end) / (self.capacity * window))

    @property
    def intervals(self) -> List[Tuple[float, float, float]]:
        return list(self._intervals)


@dataclass
class UtilizationTimeline:
    """Sampled utilisation series for one or more resources.

    Produces the data behind Figures 5 and 6: for each time bin, the
    percentage utilisation of CPU, network and disk.
    """

    meters: Dict[str, ResourceMeter]

    def sample(self, end: float, bins: int = 50, start: float = 0.0):
        """Return ``(times, {name: [pct, ...]})`` with ``bins`` samples."""
        if bins <= 0:
            raise ValueError("bins must be positive")
        width = (end - start) / bins if end > start else 0.0
        times = [start + width * (i + 0.5) for i in range(bins)]
        series: Dict[str, List[float]] = {}
        for name, meter in self.meters.items():
            values = []
            for i in range(bins):
                lo = start + i * width
                hi = lo + width
                if hi > lo:
                    values.append(100.0 * meter.utilization(lo, hi))
                else:
                    values.append(0.0)
            series[name] = values
        return times, series


@dataclass
class ByteCounter:
    """Accumulates byte counts, e.g. total network traffic (Table 4)."""

    name: str
    total: int = 0

    def add(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("byte count cannot be negative")
        self.total += nbytes

    @property
    def gigabytes(self) -> float:
        return self.total / 1e9


@dataclass
class MemoryGauge:
    """Tracks current and peak simulated memory of a node.

    Raising past ``limit_bytes`` is detected by the caller (the node),
    which turns it into a :class:`~repro.sim.errors.SimulatedOOMError`;
    the gauge itself only does arithmetic so it can also be used for
    unlimited accounting (e.g. the single-thread baseline).
    """

    name: str
    current: int = 0
    peak: int = 0

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("allocation cannot be negative")
        self.current += nbytes
        if self.current > self.peak:
            self.peak = self.current

    def free(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("free cannot be negative")
        self.current = max(0, self.current - nbytes)

    @property
    def peak_gigabytes(self) -> float:
        return self.peak / 1e9


def merge_peaks(gauges: Iterable[MemoryGauge]) -> int:
    """Aggregate peak memory across nodes (paper reports cluster peak sums)."""
    return sum(g.peak for g in gauges)
