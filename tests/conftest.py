"""Shared fixtures for the test suite.

Small deterministic graphs and cluster specs keep the tests fast; the
scaled datasets (`*-s`) are reserved for the integration tests that
compare distributed results against sequential oracles.
"""

from __future__ import annotations

import pytest

from repro.graph.generators import preferential_attachment_graph, random_labels
from repro.graph.graph import Graph
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tiny_graph():
    """A 6-vertex graph with two triangles sharing an edge plus a tail.

    Edges: triangle (0,1,2), triangle (1,2,3), path 3-4-5.
    """
    return Graph.from_edges(
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
    )


@pytest.fixture
def small_social_graph():
    """A seeded 120-vertex clustered graph for pipeline tests."""
    return preferential_attachment_graph(
        n=120, m=6, triangle_prob=0.6, seed=42, max_degree=30
    )


@pytest.fixture
def small_labeled_graph(small_social_graph):
    random_labels(small_social_graph, alphabet=tuple("abcde"), seed=3)
    return small_social_graph


@pytest.fixture
def small_spec():
    """A small cluster for fast end-to-end job tests."""
    return ClusterSpec(num_nodes=4, cores_per_node=2)


def adjacency_of(graph: Graph):
    return {v: graph.neighbors(v) for v in graph.vertices()}


def labels_of(graph: Graph):
    return {v: graph.label(v) for v in graph.vertices()}


def attributes_of(graph: Graph):
    return {v: graph.attributes(v) for v in graph.vertices()}
