"""Unit tests for the dataset registry (Table 2 stand-ins)."""

import pytest

from repro.graph.datasets import (
    DATASETS,
    dataset_table,
    load_dataset,
)


class TestRegistry:
    def test_all_six_paper_datasets_registered(self):
        assert set(DATASETS) == {
            "skitter-s", "orkut-s", "btc-s", "friendster-s", "tencent-s", "dblp-s",
        }

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_caching_returns_same_object(self):
        a = load_dataset("skitter-s")
        b = load_dataset("skitter-s")
        assert a.graph is b.graph

    def test_relative_size_ordering_preserved(self):
        """The paper's ordering: skitter < orkut < friendster by |E|;
        btc has the most vertices of the non-attributed graphs."""
        sizes = {name: load_dataset(name).graph for name in DATASETS}
        assert sizes["skitter-s"].num_edges < sizes["orkut-s"].num_edges
        assert sizes["orkut-s"].num_edges < sizes["friendster-s"].num_edges
        assert sizes["btc-s"].num_vertices == max(
            sizes[n].num_vertices
            for n in ("skitter-s", "orkut-s", "btc-s", "friendster-s")
        )

    def test_density_shape(self):
        """Social graphs dense, web graphs sparse (paper Table 2)."""
        orkut = load_dataset("orkut-s").graph
        btc = load_dataset("btc-s").graph
        assert orkut.avg_degree() > 4 * btc.avg_degree()


class TestAttributedDatasets:
    def test_tencent_is_attributed_with_communities(self):
        built = load_dataset("tencent-s")
        assert built.graph.is_attributed
        assert built.community_map is not None
        assert built.attribute_space is not None

    def test_dblp_attribute_space_smaller_than_tencent(self):
        dblp = load_dataset("dblp-s").graph
        tencent = load_dataset("tencent-s").graph
        assert dblp.attribute_dimensions() < tencent.attribute_dimensions()


class TestDecoration:
    def test_labeled_copy_does_not_mutate_cache(self):
        labeled = load_dataset("skitter-s", labeled=True)
        base = load_dataset("skitter-s")
        assert labeled.graph.is_labeled
        assert not base.graph.is_labeled

    def test_labeled_deterministic(self):
        a = load_dataset("skitter-s", labeled=True)
        b = load_dataset("skitter-s", labeled=True)
        assert all(
            a.graph.label(v) == b.graph.label(v) for v in a.graph.vertices()
        )

    def test_attributed_decoration(self):
        built = load_dataset("orkut-s", attributed=True)
        assert built.graph.is_attributed
        # 5-dimension synthetic attributes (paper footnote 7)
        any_vertex = next(iter(built.graph.vertices()))
        assert len(built.graph.attributes(any_vertex)) == 5

    def test_natively_attributed_not_overwritten(self):
        built = load_dataset("tencent-s", attributed=True)
        base = load_dataset("tencent-s")
        v = next(iter(base.graph.vertices()))
        assert built.graph.attributes(v) == base.graph.attributes(v)


def test_dataset_table_renders_all():
    table = dataset_table()
    for name in DATASETS:
        assert name in table
    assert "Max.Deg" in table
