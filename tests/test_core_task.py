"""Unit tests for the task model (paper §4.2)."""

import pytest

from repro.core.task import Task, TaskEnv, TaskStatus
from repro.graph.graph import VertexData


class RecordingTask(Task):
    """Pulls whatever the test tells it to; finishes on request."""

    def __init__(self, seed, script):
        super().__init__(seed)
        self.script = list(script)
        self.seen = []
        first = self.script.pop(0)
        if first is not None:
            self.pull(first)

    def update(self, cand_objs, env):
        self.seen.append((dict(cand_objs), env.aggregated))
        self.charge(5)
        step = self.script.pop(0)
        if step is None:
            self.finish(result=len(self.seen))
        else:
            self.pull(step)


def make_seed(vid=0, neighbors=(1, 2)):
    return VertexData(vid=vid, neighbors=tuple(neighbors))


class TestLifecycle:
    def test_initial_state(self):
        t = RecordingTask(make_seed(), [[1, 2], None])
        assert t.status is TaskStatus.ACTIVE
        assert t.round == 0
        assert not t.finished
        assert t.subgraph.has_node(0)
        assert t.candidates == [1, 2]
        assert t.to_pull == {1, 2}

    def test_run_round_increments_and_charges(self):
        t = RecordingTask(make_seed(), [[1], None])
        env = TaskEnv(worker_id=0)
        work = t.run_round({1: make_seed(1)}, env)
        assert t.round == 1
        assert work == 5
        assert t.finished
        assert t.result == 1

    def test_pull_deduplicates_and_sorts(self):
        t = RecordingTask(make_seed(), [[3, 1, 3, 2]])
        assert t.candidates == [1, 2, 3]

    def test_finish_clears_candidates(self):
        t = RecordingTask(make_seed(), [[1], None])
        t.run_round({}, TaskEnv(0))
        assert t.candidates == []
        assert t.to_pull == set()

    def test_unique_task_ids(self):
        a = RecordingTask(make_seed(), [[1]])
        b = RecordingTask(make_seed(), [[1]])
        assert a.task_id != b.task_id


class TestEnv:
    def test_aggregated_visible(self):
        t = RecordingTask(make_seed(), [[1], None])
        t.run_round({}, TaskEnv(0, aggregated=42))
        assert t.seen[0][1] == 42

    def test_push_to_aggregator(self):
        pushed = []
        env = TaskEnv(0, push=pushed.append)
        env.push_to_aggregator(7)
        assert pushed == [7]

    def test_push_without_sink_is_noop(self):
        TaskEnv(0).push_to_aggregator(7)  # must not raise


class TestCostModel:
    def test_migration_cost_eq2(self):
        t = RecordingTask(make_seed(), [[1, 2, 3]])
        t.subgraph.add_nodes([10, 11])
        # c(t) = |subG| + |candVtxs| = 3 + 3
        assert t.migration_cost() == 6

    def test_local_rate_eq3(self):
        t = RecordingTask(make_seed(), [[1, 2, 3, 4]])
        assert t.local_rate(num_to_pull=1) == pytest.approx(0.75)
        assert t.local_rate(num_to_pull=4) == 0.0

    def test_local_rate_no_candidates(self):
        t = RecordingTask(make_seed(), [[1], None])
        t.run_round({}, TaskEnv(0))
        assert t.local_rate(0) == 1.0

    def test_estimate_size_includes_context(self):
        class FatContext(RecordingTask):
            def context_size(self):
                return 10_000

        lean = RecordingTask(make_seed(), [[1]])
        fat = FatContext(make_seed(), [[1]])
        assert fat.estimate_size() > lean.estimate_size() + 9_000


class TestDefaults:
    def test_base_update_abstract(self):
        t = Task(make_seed())
        with pytest.raises(NotImplementedError):
            t.update({}, TaskEnv(0))

    def test_spawn_default_empty(self):
        assert Task(make_seed()).spawn() == []

    def test_split_default_none(self):
        assert Task(make_seed()).split() is None

    def test_repr_mentions_seed_and_round(self):
        t = RecordingTask(make_seed(vid=9), [[1]])
        assert "seed=9" in repr(t)
