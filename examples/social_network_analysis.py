#!/usr/bin/env python
"""Scenario: analysing a social network (the paper's intro workloads).

Runs three mining jobs over the scaled Orkut stand-in on one simulated
cluster configuration and compares their profiles:

* triangle counting — the light 1-hop workload,
* maximum clique finding — heavy search with global-bound pruning,
* graph matching — find occurrences of a small labelled pattern
  (e.g. "a person of type a connected to types b and c, where the c
  contact knows a d and an e" — an interaction template).

Run:  python examples/social_network_analysis.py
"""

from repro.apps import GraphMatchingApp, MaxCliqueApp, TriangleCountingApp
from repro.core import GMinerConfig, GMinerJob
from repro.graph.datasets import load_dataset
from repro.mining.patterns import make_pattern
from repro.sim.cluster import ClusterSpec


def profile(name, app, graph, config):
    result = GMinerJob(app, graph, config).run()
    value = result.value
    if name == "max clique":
        value = f"clique of {len(value)}: {value}"
    print(f"{name:<13} {result.total_seconds:>8.3f}s  "
          f"cpu {100 * result.cpu_utilization:>5.1f}%  "
          f"net {result.network_bytes / 1e6:>6.2f}MB  -> {value}")
    return result


def main() -> None:
    config = GMinerConfig(cluster=ClusterSpec(num_nodes=15, cores_per_node=4))

    plain = load_dataset("orkut-s").graph
    labeled = load_dataset("orkut-s", labeled=True).graph
    print(f"dataset: {plain} (scaled stand-in for Orkut)")
    print()

    profile("triangles", TriangleCountingApp(), plain, config)
    profile("max clique", MaxCliqueApp(), plain, config)

    # the paper's Figure-1 pattern, written out with the pattern API:
    # root 'a' with children 'b' and 'c'; 'c' has children 'd' and 'e'
    pattern = make_pattern("a", [("b", 0), ("c", 0)], [("d", 1), ("e", 1)])
    profile("matching", GraphMatchingApp(pattern), labeled, config)

    # a second, deeper pattern: chain a -> b -> c -> d
    chain = make_pattern("a", [("b", 0)], [("c", 0)], [("d", 0)])
    profile("chain match", GraphMatchingApp(chain), labeled, config)


if __name__ == "__main__":
    main()
