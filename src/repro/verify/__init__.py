"""repro.verify — runtime invariant checking and differential testing.

Three layers, all built on the simulator's seeded determinism:

* :mod:`repro.verify.invariants` — an :class:`InvariantMonitor` that the
  runtime arms behind ``GMinerConfig(verify=True)`` / ``REPRO_VERIFY=1``
  and that asserts conservation laws at existing barrier points;
* :mod:`repro.verify.fuzz` — a differential fuzzer
  (``python -m repro.verify.fuzz``) that runs G-Miner against the
  single-thread baseline and a second kernel backend over seeded random
  cases, shrinking any mismatch to a replayable JSON repro;
* :mod:`repro.verify.metamorphic` — helpers for the metamorphic oracle
  suite (result invariance under relabelling, cluster reshaping and
  fault injection), exercised by ``tests/test_metamorphic.py``.

See ``docs/testing.md`` for the full invariant list and taxonomy.
"""

from repro.verify.invariants import (
    InvariantMonitor,
    InvariantViolation,
    allocation_counts,
    verify_env_enabled,
)

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "allocation_counts",
    "verify_env_enabled",
]
