"""The ``subG`` field of a task: the growing intermediate subgraph.

Mirrors the paper's ``Subgraph<KeyT, AttrT>`` (Listing 1): a small
mutable graph the task grows, shrinks or splits as its ``update``
operation runs.  Kept deliberately lightweight — most applications only
need the vertex set plus occasional internal edges — with an explicit
byte estimate feeding the memory model and the task-stealing cost
function ``c(t)`` (Eq. 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple


class Subgraph:
    """A small mutable subgraph owned by one task."""

    __slots__ = ("_nodes", "_edges")

    def __init__(self) -> None:
        self._nodes: Set[int] = set()
        self._edges: Set[Tuple[int, int]] = set()

    # -- mutation (the paper's grow / shrink / split operations) -------

    def add_node(self, vid: int) -> None:
        """Grow: include a vertex."""
        self._nodes.add(vid)

    def add_nodes(self, vids: Iterable[int]) -> None:
        """Grow: include several vertices."""
        self._nodes.update(vids)

    def add_edge(self, u: int, v: int) -> None:
        """Grow: record an internal edge (endpoints auto-included)."""
        if u == v:
            raise ValueError("self-loops not allowed in task subgraphs")
        self._nodes.add(u)
        self._nodes.add(v)
        self._edges.add((min(u, v), max(u, v)))

    def remove_node(self, vid: int) -> None:
        """Shrink: drop a vertex and its incident internal edges."""
        self._nodes.discard(vid)
        self._edges = {e for e in self._edges if vid not in e}

    def split(self) -> List["Subgraph"]:
        """Split into one subgraph per connected component.

        Supports the paper's *split* update and the recursive
        task-splitting extension (§9).  Isolated vertices become
        singleton subgraphs.
        """
        parent: Dict[int, int] = {v: v for v in self._nodes}

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for u, v in self._edges:
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
        groups: Dict[int, "Subgraph"] = {}
        for v in self._nodes:
            groups.setdefault(find(v), Subgraph()).add_node(v)
        for u, v in self._edges:
            groups[find(u)].add_edge(u, v)
        return [groups[k] for k in sorted(groups)]

    # -- accessors ------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Vertex count (the |t.subG| of Eq. 2)."""
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        """Internal edge count."""
        return len(self._edges)

    def nodes(self) -> Iterator[int]:
        """Vertices in ascending order."""
        return iter(sorted(self._nodes))

    def node_set(self) -> Set[int]:
        """A copy of the vertex set."""
        return set(self._nodes)

    def has_node(self, vid: int) -> bool:
        """True when the vertex is in the subgraph."""
        return vid in self._nodes

    def has_edge(self, u: int, v: int) -> bool:
        """True when the internal edge was recorded."""
        return (min(u, v), max(u, v)) in self._edges

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Internal edges as sorted (lo, hi) pairs."""
        return iter(sorted(self._edges))

    def min_node(self) -> Optional[int]:
        """Smallest vertex id (the dedup anchor), or None when empty."""
        return min(self._nodes) if self._nodes else None

    def copy(self) -> "Subgraph":
        """Independent deep copy."""
        out = Subgraph()
        out._nodes = set(self._nodes)
        out._edges = set(self._edges)
        return out

    def estimate_size(self) -> int:
        """Byte estimate: 8 per vertex id, 16 per edge, small header."""
        return 16 + 8 * len(self._nodes) + 16 * len(self._edges)

    def __contains__(self, vid: int) -> bool:
        return vid in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"Subgraph(|V|={len(self._nodes)}, |E|={len(self._edges)})"
