"""Unit tests for the triangle-counting kernel."""

import pytest

from repro.graph.algorithms import triangle_count_exact
from repro.mining.cost import WorkMeter
from repro.mining.triangles import (
    local_adjacency,
    triangle_count_sequential,
    triangles_for_seed,
)
from tests.conftest import adjacency_of


class TestPerSeed:
    def test_seed_counts_only_minimum_vertex_triangles(self, tiny_graph):
        adj = adjacency_of(tiny_graph)
        m = WorkMeter()
        # triangle (0,1,2) is counted at seed 0 only
        assert triangles_for_seed(0, adj[0], adj, m) == 1
        # triangle (1,2,3) at seed 1
        assert triangles_for_seed(1, adj[1], adj, m) == 1
        assert triangles_for_seed(2, adj[2], adj, m) == 0
        assert triangles_for_seed(4, adj[4], adj, m) == 0

    def test_per_seed_sums_to_exact(self, small_social_graph):
        adj = adjacency_of(small_social_graph)
        m = WorkMeter()
        total = sum(triangles_for_seed(v, adj[v], adj, m) for v in adj)
        assert total == triangle_count_exact(small_social_graph)

    def test_work_charged(self, tiny_graph):
        adj = adjacency_of(tiny_graph)
        m = WorkMeter()
        triangles_for_seed(0, adj[0], adj, m)
        assert m.units > 0

    def test_restricted_adjacency_sufficient(self, tiny_graph):
        """Only Γ(u) for higher neighbors u is needed — exactly what
        the TC task pulls."""
        adj = adjacency_of(tiny_graph)
        higher = {u: adj[u] for u in adj[0] if u > 0}
        m = WorkMeter()
        assert triangles_for_seed(0, adj[0], higher, m) == 1


class TestSequential:
    def test_matches_oracle(self, small_social_graph):
        adj = adjacency_of(small_social_graph)
        count = triangle_count_sequential(adj, WorkMeter())
        assert count == triangle_count_exact(small_social_graph)

    def test_empty_graph(self):
        assert triangle_count_sequential({}, WorkMeter()) == 0

    def test_triangle_free(self):
        adj = {0: (1,), 1: (0, 2), 2: (1,)}
        assert triangle_count_sequential(adj, WorkMeter()) == 0


def test_local_adjacency_materialises_subset(tiny_graph):
    adj = adjacency_of(tiny_graph)
    sub = local_adjacency([0, 1], adj)
    assert set(sub) == {0, 1}
    assert sub[0] == adj[0]
