"""A G-Miner worker: vertex table + the task pipeline (paper §4.3, §5.1).

One worker runs per cluster node.  It hosts:

* the **vertex table** (its graph partition),
* the **task store** (LSH-ordered priority queue, disk-backed),
* the **candidate retriever** (CMQ + RCV cache + remote pulls),
* the **task executor** (compute pool + task buffer),
* the request listener (serving pulls and migrations from peers),
* the progress reporter and checkpoint logic.

The three pipeline stages share no barrier: the retriever keeps the
CMQ primed while cores crunch tasks and the disk spills/loads store
blocks, which is exactly the overlap Figure 6 shows.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.aggregator import AggregatorState
from repro.core.api import GMinerApp
from repro.core.config import GMinerConfig
from repro.core.lsh import MinHashLSH
from repro.core.messages import (
    AggBroadcast,
    AggReport,
    CheckpointCommand,
    Heartbeat,
    MembershipView,
    MigrateCommand,
    MigrationAck,
    NoTask,
    ProgressReport,
    PullRequest,
    PullResponse,
    StealRequest,
    TaskMigration,
    WorkerDown,
    WorkerUp,
)
from repro.core.rcv_cache import CachePolicy, RCVCache
from repro.core.task import Task, TaskEnv, TaskStatus
from repro.core.task_store import TaskStore
from repro.core.tracing import NullTraceLog, TaskEvent, TraceLog
from repro.graph.graph import VertexData
from repro.sim.cluster import Cluster, Node


@dataclass
class _PendingPull:
    """A CMQ entry: a task waiting for remote candidates."""

    task: Task
    remaining: Set[int] = field(default_factory=set)  # vids not yet available
    parked: Set[int] = field(default_factory=set)  # vids owned by down workers


@dataclass
class _PendingRpc:
    """An outstanding pull RPC awaiting its (seq-matched) response."""

    owner: int
    vids: Tuple[int, ...]
    attempts: int = 0
    timer: Any = None  # sim Event for the retransmit timeout


@dataclass
class _PendingMigration:
    """An unacked outbound TaskMigration, retransmitted until acked."""

    dest: int
    migration: TaskMigration
    attempts: int = 0
    timer: Any = None


@dataclass
class WorkerStats:
    """Counters reported in benchmark tables and tests."""

    tasks_seeded: int = 0
    tasks_completed: int = 0
    tasks_migrated_in: int = 0
    tasks_migrated_out: int = 0
    rounds_executed: int = 0
    pulls_sent: int = 0
    vertices_pulled: int = 0
    re_pulls: int = 0
    steal_requests: int = 0
    checkpoints: int = 0
    # -- degraded-mode protocol counters (all zero on fault-free runs) --
    heartbeats_sent: int = 0
    rpc_retries: int = 0
    rpc_backoff_cycles: int = 0
    duplicate_responses_dropped: int = 0
    stale_responses_dropped: int = 0
    duplicate_migrations_dropped: int = 0
    migration_retransmits: int = 0


class SimWorker:
    """One G-Miner worker process on a simulated node."""

    def __init__(
        self,
        worker_id: int,
        node: Node,
        cluster: Cluster,
        config: GMinerConfig,
        app: GMinerApp,
        controller: "JobControllerProtocol",
        owner_of: Callable[[int], int],
        aggregator_state: Optional[AggregatorState],
        master_endpoint: int,
    ) -> None:
        self.worker_id = worker_id
        self.node = node
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config
        self.app = app
        self.controller = controller
        self.owner_of = owner_of
        self.agg = aggregator_state
        self.master_endpoint = master_endpoint

        self.vertex_table: Dict[int, VertexData] = {}
        lsh = MinHashLSH(config.lsh_signature_size) if config.enable_lsh else None
        self.store = TaskStore(
            disk=node.disk,
            block_tasks=config.store_block_tasks,
            lsh=lsh,
            on_alloc=lambda n: self._alloc(n, "task store"),
            on_free=node.free,
            notify=self._pump_retriever,
            block_bytes=config.store_block_bytes,
        )
        # §5.1: one process per node shares one cache (the default);
        # multi-process deployment splits the budget into independent
        # per-process caches with no sharing between them.
        k = config.processes_per_node
        self.caches = [
            RCVCache(
                capacity_bytes=config.cache_capacity_bytes // k,
                policy=CachePolicy(config.cache_policy),
                on_alloc=lambda n: self._alloc(n, "RCV cache"),
                on_free=node.free,
            )
            for _ in range(k)
        ]
        self.cmq: Dict[int, _PendingPull] = {}
        self.inflight: Dict[int, List[int]] = {}  # vid -> waiting task ids
        self.task_buffer: List[Task] = []
        self.live_tasks: Dict[int, Task] = {}
        self.results: Dict[int, Any] = {}
        self.overflow: Dict[int, Tuple[VertexData, int]] = {}  # cache-bypass slots
        self.down_workers: Set[int] = set()
        # copies of tasks migrated out, kept so they can be re-injected
        # if the destination dies before checkpointing them (§7): task
        # results are deterministic and deduplicated by task id, so
        # re-running a migrated task is always safe
        self.sent_tasks: Dict[int, List[Task]] = {}
        self.stats = WorkerStats()
        self._steal_pending = False
        self._checkpoint: Optional[Dict[str, Any]] = None
        self._seeding_done = False
        self.hdfs = None  # set by GMinerJob (checkpoint target)
        self.trace: TraceLog = NullTraceLog()  # replaced by GMinerJob
        #: :class:`repro.obs.ObsSession` when observability is on;
        #: ``None`` keeps every instrumented site to a single branch.
        self.obs = None
        #: :class:`repro.verify.InvariantMonitor` when invariant
        #: checking is armed; ``None`` keeps each recording site to a
        #: single branch.  The monitor double-entry accounts the work
        #: units this worker hands to its core pool so barrier checks
        #: can compare them against the pool's own accumulator.
        self.verify = None

        # -- degraded-mode protocol state (§7) --------------------------
        # Dormant unless a failure plan is armed: fault-free runs issue
        # no heartbeats, start no RPC timers and track no dedup state,
        # so they stay byte-identical to a build without the fault
        # layer.  ``incarnation`` counts reboots and rides on every
        # heartbeat so the master can detect crashes it never observed
        # as silence.
        self.faults_enabled = False
        self.incarnation = 0
        self._rpc_rng: Optional[random.Random] = None
        self._next_seq = 0
        self._pending_rpcs: Dict[int, _PendingRpc] = {}
        self._completed_seqs: Set[int] = set()
        self._pending_migrations: Dict[int, _PendingMigration] = {}
        self._seen_migrations: Set[Tuple[int, int]] = set()
        # latest membership view applied; stale (reordered/duplicated)
        # WorkerDown/WorkerUp notices carry an older view and are dropped
        self._membership_view = -1

        cluster.network.register_handler(worker_id, self._on_message)

    def _emit(self, task_id: int, event: TaskEvent, detail: float = 0.0) -> None:
        self.trace.emit(self.sim.now, self.worker_id, task_id, event, detail)
        if self.obs is not None:
            self.obs.tracer.instant(
                "task." + event.value,
                cat="lifecycle",
                tid=self.worker_id,
                task=self.obs.rel_task(task_id),
            )

    def attach_obs(self, obs) -> None:
        """Wire an :class:`repro.obs.ObsSession` into this worker.

        Metric handles are resolved once here so the per-event cost is a
        dict-free ``inc()``; span books (pull-wait, RPC, round) are
        plain dicts keyed by task id / RPC seq.  Everything in this
        path is read-only over the simulation: it never schedules
        events, so enabling it cannot change any simulated quantity.
        """
        self.obs = obs
        labels = {"worker": self.worker_id}
        registry = obs.registry
        self._m_seeded = registry.counter("gminer.tasks.seeded", **labels)
        self._m_completed = registry.counter("gminer.tasks.completed", **labels)
        self._m_rounds = registry.counter("gminer.rounds", **labels)
        self._m_pulls = registry.counter("gminer.pulls.sent", **labels)
        self._m_vertices = registry.counter("gminer.vertices.pulled", **labels)
        self._m_retries = registry.counter("gminer.rpc.retries", **labels)
        self._m_checkpoints = registry.counter("gminer.checkpoints", **labels)
        self._h_pull_wait = registry.histogram(
            "gminer.pull.wait_seconds", **labels
        )
        self._pull_spans: Dict[int, Any] = {}  # task_id -> open task.pull_wait
        self._rpc_spans: Dict[int, Any] = {}  # rpc seq -> open rpc.pull

    # ------------------------------------------------------------------
    # memory helpers
    # ------------------------------------------------------------------

    def _alloc(self, nbytes: int, what: str) -> None:
        self.node.allocate(nbytes, what=f"worker {self.worker_id} {what}")

    def _account_task(self, task: Task) -> None:
        size = task.estimate_size()
        setattr(task, "_accounted_size", size)
        self._alloc(size, "task")

    def _unaccount_task(self, task: Task) -> None:
        self.node.free(getattr(task, "_accounted_size", task.estimate_size()))

    @property
    def cache(self) -> RCVCache:
        """The (first) process cache; the full list is ``caches``."""
        return self.caches[0]

    def _cache_of(self, task_id: int) -> RCVCache:
        """The cache of the process a task is pinned to (by id)."""
        return self.caches[task_id % len(self.caches)]

    def _reaccount_task(self, task: Task) -> None:
        old = getattr(task, "_accounted_size", 0)
        new = task.estimate_size()
        if new > old:
            self._alloc(new - old, "task growth")
        else:
            self.node.free(old - new)
        setattr(task, "_accounted_size", new)

    # ------------------------------------------------------------------
    # setup: partition loading and task seeding
    # ------------------------------------------------------------------

    def load_partition(self, vertices: Dict[int, VertexData]) -> None:
        """Install the partition assigned to this worker."""
        self.vertex_table = dict(vertices)
        total = sum(v.estimate_size() for v in vertices.values())
        self._alloc(total, "vertex table")

    def seed_tasks(self, chunk_size: int = 256) -> None:
        """Run the task generator: scan the vertex table, create one
        task per qualifying seed (§5.1).  Scanning is charged to the
        compute pool in chunks so seeding itself is parallel."""
        vids = sorted(self.vertex_table)
        if not vids:
            self._seeding_done = True
            self.controller.seeding_finished(self.worker_id)
            return
        chunks = [vids[i : i + chunk_size] for i in range(0, len(vids), chunk_size)]
        remaining = {"n": len(chunks)}
        seed_span = None
        if self.obs is not None:
            seed_span = self.obs.tracer.begin(
                "task.seed", cat="task", tid=self.worker_id, vertices=len(vids)
            )

        for chunk in chunks:

            def factory(chunk=chunk):
                work = 0.0
                tasks: List[Task] = []
                for vid in chunk:
                    vertex = self.vertex_table[vid]
                    work += self.app.seed_cost(vertex)
                    task = self.app.make_task(vertex)
                    if task is not None:
                        task.owner_worker = self.worker_id
                        tasks.append(task)
                if self.verify is not None:
                    self.verify.on_work(work, f"worker[{self.worker_id}].seed")

                def done():
                    if self.obs is not None and tasks:
                        self._m_seeded.inc(len(tasks))
                    for task in tasks:
                        self.stats.tasks_seeded += 1
                        self.controller.task_created()
                        self.live_tasks[task.task_id] = task
                        self._account_task(task)
                        self._emit(task.task_id, TaskEvent.SEEDED)
                        self._route(task)
                    remaining["n"] -= 1
                    if remaining["n"] == 0:
                        if seed_span is not None:
                            self.obs.tracer.finish(seed_span)
                        self._seeding_done = True
                        self.controller.seeding_finished(self.worker_id)
                        self._flush_buffer(force=True)

                return (work, done)

            self.node.cores.submit_lazy(factory)

    # ------------------------------------------------------------------
    # routing: where does a task go after an update round?
    # ------------------------------------------------------------------

    def _remote_needed(self, task: Task) -> List[int]:
        return [v for v in task.to_pull if v not in self.vertex_table]

    def _route(self, task: Task) -> None:
        """Apply the task-lifetime rules (§4.2) after a round."""
        if task.finished:
            self._kill(task)
            return
        remote = self._remote_needed(task)
        if not remote:
            # no remote candidate: next round directly, no status change
            task.status = TaskStatus.ACTIVE
            self._enqueue_ready(task, front=True)
            return
        task.status = TaskStatus.INACTIVE
        task.to_pull = set(remote)
        self._emit(task.task_id, TaskEvent.BUFFERED)
        self.task_buffer.append(task)
        if len(self.task_buffer) >= self.config.task_buffer_batch:
            self._flush_buffer(force=True)

    def _flush_buffer(self, force: bool = False) -> None:
        if not self.task_buffer:
            return
        if not force and len(self.task_buffer) < self.config.task_buffer_batch:
            return
        batch, self.task_buffer = self.task_buffer, []
        for task in batch:
            self._emit(task.task_id, TaskEvent.STORED)
        self.store.insert_batch(batch)
        self._pump_retriever()

    def _kill(self, task: Task) -> None:
        task.status = TaskStatus.DEAD
        self._emit(task.task_id, TaskEvent.FINISHED)
        self.live_tasks.pop(task.task_id, None)
        if task.result is not None:
            self.results[task.task_id] = task.result
        self._unaccount_task(task)
        self.stats.tasks_completed += 1
        if self.obs is not None:
            self._m_completed.inc()
        self.controller.task_dead()

    # ------------------------------------------------------------------
    # candidate retriever (§4.3)
    # ------------------------------------------------------------------

    def _pump_retriever(self) -> None:
        if not self.node.alive:
            return
        cpq_limit = self.config.cpq_per_core * self.node.cores.cores
        while (
            len(self.cmq) < self.config.max_inflight_tasks
            and self.node.cores.queued < cpq_limit
        ):
            task = self.store.pop()
            if task is None:
                break
            self._process_dequeued(task)
        if len(self.store) == 0 and not self.store.loading:
            self._flush_buffer(force=False)
        self._maybe_request_steal()

    def _process_dequeued(self, task: Task) -> None:
        self._emit(task.task_id, TaskEvent.DEQUEUED)
        held: Set[int] = getattr(task, "_held_refs", set())
        need_pull: List[int] = []
        for vid in sorted(task.to_pull):
            if vid in held:
                continue
            cache = self._cache_of(task.task_id)
            if cache.lookup(vid) is not None:
                cache.addref(vid)
                held.add(vid)
            elif vid in self.overflow:
                data, refs = self.overflow[vid]
                self.overflow[vid] = (data, refs + 1)
                held.add(vid)
            else:
                need_pull.append(vid)
        setattr(task, "_held_refs", held)
        if not need_pull:
            self._mark_ready(task)
            return
        pending = _PendingPull(task=task, remaining=set(need_pull))
        self._emit(task.task_id, TaskEvent.PULL_ISSUED, detail=len(need_pull))
        if self.obs is not None:
            self._pull_spans[task.task_id] = self.obs.tracer.begin(
                "task.pull_wait",
                cat="task",
                tid=self.worker_id,
                task=self.obs.rel_task(task.task_id),
                vids=len(need_pull),
            )
        self.cmq[task.task_id] = pending
        by_owner: Dict[int, List[int]] = {}
        for vid in need_pull:
            waiters = self.inflight.get(vid)
            if waiters is not None:
                waiters.append(task.task_id)
                continue  # someone already pulled this vid
            self.inflight[vid] = [task.task_id]
            owner = self.owner_of(vid)
            if owner in self.down_workers:
                pending.parked.add(vid)
            else:
                by_owner.setdefault(owner, []).append(vid)
        for owner, vids in sorted(by_owner.items()):
            self._send_pull(owner, vids)

    def _send_pull(self, owner: int, vids: List[int]) -> None:
        seq = self._next_seq
        self._next_seq += 1
        request = PullRequest(
            requester=self.worker_id, vids=tuple(sorted(vids)), seq=seq
        )
        self.stats.pulls_sent += 1
        if self.obs is not None:
            self._m_pulls.inc()
            self._rpc_spans[seq] = self.obs.tracer.begin(
                "rpc.pull",
                cat="rpc",
                tid=self.worker_id,
                owner=owner,
                vids=len(vids),
            )
        if self.faults_enabled:
            pending = _PendingRpc(owner=owner, vids=request.vids)
            self._pending_rpcs[seq] = pending
            pending.timer = self.sim.schedule(
                self._rpc_delay(0), lambda: self._on_rpc_timeout(seq)
            )
        self.cluster.network.send(
            self.worker_id, owner, request.size_bytes(), request
        )

    # ------------------------------------------------------------------
    # RPC robustness (§7): timeout, seeded backoff, dedup
    # ------------------------------------------------------------------

    def enable_fault_tolerance(self, seed: int = 0) -> None:
        """Arm the degraded-mode protocol: heartbeats to the master,
        per-pull retransmit timers and duplicate suppression.  Called by
        :class:`GMinerJob` exactly when a failure plan exists, keeping
        fault-free runs byte-identical to the legacy path."""
        self.faults_enabled = True
        self._rpc_rng = random.Random(
            1_000_003 * (seed + 1) + 7_919 * (self.worker_id + 1)
        )
        self._arm_heartbeat()

    def _arm_heartbeat(self) -> None:
        interval = self.config.heartbeat_interval

        def tick() -> None:
            if self.controller.finished:
                return
            if self.node.alive:
                beat = Heartbeat(
                    worker=self.worker_id, incarnation=self.incarnation
                )
                self.stats.heartbeats_sent += 1
                self.cluster.network.send(
                    self.worker_id, self.master_endpoint, beat.size_bytes(), beat
                )
            self.sim.schedule(interval, tick)

        self.sim.schedule(interval, tick)

    def _rpc_delay(self, attempt: int) -> float:
        """Exponential backoff with seeded jitter; the exponent is
        capped at ``rpc_max_retries`` so cool-down cycles cannot grow
        without bound."""
        exponent = min(attempt, self.config.rpc_max_retries)
        base = self.config.rpc_timeout * (2.0 ** exponent)
        return base * (1.0 + 0.25 * self._rpc_rng.random())

    def _on_rpc_timeout(self, seq: int) -> None:
        pending = self._pending_rpcs.get(seq)
        if pending is None or not self.node.alive or self.controller.finished:
            return
        if pending.owner in self.down_workers:
            # the master declared the owner dead after this pull went
            # out: its vids are parked (``on_worker_down``) and will be
            # re-issued as a fresh RPC on ``WorkerUp``
            del self._pending_rpcs[seq]
            return
        pending.attempts += 1
        if pending.attempts > self.config.rpc_max_retries:
            # cycle exhausted.  Abandoning the pull would strand its
            # tasks forever, so instead rest for one maximum-backoff
            # period and start a fresh cycle.
            self.stats.rpc_backoff_cycles += 1
            pending.attempts = 0
            pending.timer = self.sim.schedule(
                self._rpc_delay(self.config.rpc_max_retries),
                lambda: self._on_rpc_timeout(seq),
            )
            return
        self.stats.rpc_retries += 1
        self._emit(-1, TaskEvent.RPC_RETRY, detail=float(pending.owner))
        if self.obs is not None:
            self._m_retries.inc()
            self.obs.tracer.instant(
                "rpc.retry",
                cat="rpc",
                tid=self.worker_id,
                owner=pending.owner,
                attempt=pending.attempts,
            )
        request = PullRequest(
            requester=self.worker_id, vids=pending.vids, seq=seq
        )
        self.cluster.network.send(
            self.worker_id, pending.owner, request.size_bytes(), request
        )
        pending.timer = self.sim.schedule(
            self._rpc_delay(pending.attempts), lambda: self._on_rpc_timeout(seq)
        )

    def _on_pull_response(self, response: PullResponse) -> None:
        if self.obs is not None:
            # pop handles duplicates: a retransmitted response finds no
            # open span and records nothing twice
            span = self._rpc_spans.pop(response.seq, None)
            if span is not None:
                self.obs.tracer.finish(span)
                self._h_pull_wait.observe(span.end - span.start)
        if self.faults_enabled:
            if response.seq in self._completed_seqs:
                # at-least-once delivery: a duplicated or retransmitted
                # response for an RPC we already consumed
                self.stats.duplicate_responses_dropped += 1
                return
            pending = self._pending_rpcs.pop(response.seq, None)
            if pending is None:
                # response to an RPC cancelled by WorkerDown/failure
                self.stats.stale_responses_dropped += 1
                return
            if pending.timer is not None:
                pending.timer.cancel()
            self._completed_seqs.add(response.seq)
        if self.obs is not None and response.vertices:
            self._m_vertices.inc(len(response.vertices))
        ready: List[Task] = []
        for data in response.vertices:
            self.stats.vertices_pulled += 1
            waiters = self.inflight.pop(data.vid, [])
            live_waiters = [t for t in waiters if t in self.cmq]
            # without cross-process sharing each waiting task's process
            # stores its own copy (the §5.1 multi-process cost); the
            # default single process inserts once with the full count
            by_process: Dict[int, List[int]] = {}
            for task_id in live_waiters:
                by_process.setdefault(task_id % len(self.caches), []).append(task_id)
            stored_everywhere = True
            for process, group in sorted(by_process.items()):
                if not self.caches[process].insert(data, refs=len(group)):
                    stored_everywhere = False
            if not live_waiters:
                # every waiter died in flight: cache opportunistically,
                # nothing to pin
                self.caches[0].insert(data, refs=0)
            elif not stored_everywhere:
                # a cache cannot make room (all entries referenced, or
                # the vertex alone exceeds capacity): bypass into
                # overflow so the pipeline never deadlocks (§7's
                # "sleep" case).
                size = data.estimate_size()
                self._alloc(size, "cache overflow")
                self.overflow[data.vid] = (data, len(live_waiters))
            for task_id in live_waiters:
                pending = self.cmq[task_id]
                held = getattr(pending.task, "_held_refs", set())
                held.add(data.vid)
                setattr(pending.task, "_held_refs", held)
                pending.remaining.discard(data.vid)
                pending.parked.discard(data.vid)
                if not pending.remaining:
                    ready.append(pending.task)
        for task in ready:
            self.cmq.pop(task.task_id, None)
            self._mark_ready(task)
        self._pump_retriever()

    def _mark_ready(self, task: Task) -> None:
        task.status = TaskStatus.READY
        if self.obs is not None:
            self.obs.tracer.finish(self._pull_spans.pop(task.task_id, None))
        self._emit(task.task_id, TaskEvent.READY)
        self._enqueue_ready(task)

    # ------------------------------------------------------------------
    # task executor (§4.3)
    # ------------------------------------------------------------------

    def _enqueue_ready(self, task: Task, front: bool = False) -> None:
        self.node.cores.submit_lazy(lambda: self._execute(task), front=front)

    def _gather(self, task: Task) -> Tuple[Dict[int, VertexData], List[int]]:
        """Collect candidate vertex objects; report evicted ones."""
        cand_objs: Dict[int, VertexData] = {}
        missing: List[int] = []
        for vid in task.candidates:
            local = self.vertex_table.get(vid)
            if local is not None:
                cand_objs[vid] = local
                continue
            cached = self._cache_of(task.task_id).peek(vid)
            if cached is not None:
                cand_objs[vid] = cached
                continue
            over = self.overflow.get(vid)
            if over is not None:
                cand_objs[vid] = over[0]
                continue
            missing.append(vid)
        return cand_objs, missing

    def _execute(self, task: Task) -> Tuple[float, Callable[[], None]]:
        """Core-start callback: run one real update round."""
        if not self.node.alive or task.task_id not in self.live_tasks:
            return (0.0, lambda: None)
        cand_objs, missing = self._gather(task)
        if missing:
            # a candidate was evicted (lru/fifo ablation) — re-pull it
            self.stats.re_pulls += 1
            if self.verify is not None:
                self.verify.on_work(1.0, f"worker[{self.worker_id}].repull")

            def requeue():
                self._release_refs(task)
                task.status = TaskStatus.INACTIVE
                task.to_pull = set(missing)
                self.task_buffer.append(task)
                self._flush_buffer(force=True)

            return (1.0, requeue)
        task.status = TaskStatus.ACTIVE
        env = TaskEnv(
            worker_id=self.worker_id,
            aggregated=self.agg.best_known if self.agg else None,
            push=self.agg.offer if self.agg else None,
        )
        work = task.run_round(cand_objs, env)
        if self.verify is not None:
            self.verify.on_work(work, f"worker[{self.worker_id}].round")
        self.stats.rounds_executed += 1
        self._emit(task.task_id, TaskEvent.EXECUTED, detail=task.round)
        round_span = None
        if self.obs is not None:
            self._m_rounds.inc()
            round_span = self.obs.tracer.begin(
                "task.round",
                cat="task",
                tid=self.worker_id,
                task=self.obs.rel_task(task.task_id),
                round=task.round,
                work=work,
            )

        def done():
            if round_span is not None:
                self.obs.tracer.finish(round_span)
            if not self.node.alive:
                return
            self._release_refs(task)
            self._reaccount_task(task)
            children = task.spawn()
            for child in children:
                child.owner_worker = self.worker_id
                self.controller.task_created()
                self.live_tasks[child.task_id] = child
                self._account_task(child)
                self._route(child)
            if (
                self.config.enable_splitting
                and not task.finished
                and len(task.candidates) > self.config.split_candidate_threshold
            ):
                parts = task.split()
                if parts:
                    for part in parts:
                        part.owner_worker = self.worker_id
                        self.controller.task_created()
                        self.live_tasks[part.task_id] = part
                        self._account_task(part)
                        self._route(part)
                    task.finish()
            self._route(task)
            if self.node.cores.queued == 0:
                self._flush_buffer(force=True)
            self._pump_retriever()

        return (work, done)

    def _release_refs(self, task: Task) -> None:
        held: Set[int] = getattr(task, "_held_refs", set())
        cache = self._cache_of(task.task_id)
        for vid in held:
            if vid in self.overflow:
                data, refs = self.overflow[vid]
                if refs <= 1:
                    del self.overflow[vid]
                    self.node.free(data.estimate_size())
                else:
                    self.overflow[vid] = (data, refs - 1)
            else:
                cache.release(vid)
        setattr(task, "_held_refs", set())

    # ------------------------------------------------------------------
    # idle detection & task stealing (§6.2)
    # ------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        return (
            self._seeding_done
            and len(self.store) == 0
            and not self.store.loading
            and not self.cmq
            and not self.task_buffer
            and self.node.cores.busy_cores == 0
            and self.node.cores.queued == 0
        )

    def _maybe_request_steal(self) -> None:
        if (
            not self.config.enable_stealing
            or self._steal_pending
            or self.controller.finished
            or not self.idle
        ):
            return
        self._steal_pending = True
        self.stats.steal_requests += 1
        request = StealRequest(worker=self.worker_id)
        self.cluster.network.send(
            self.worker_id, self.master_endpoint, request.size_bytes(), request
        )

    def migrate_tasks_to(self, dest: int, count: int) -> None:
        """MIGRATE handler on the victim: ship tasks from the store tail."""

        def local_rate(task: Task) -> float:
            return task.local_rate(len(self._remote_needed(task)))

        tasks = self.store.steal_batch(
            limit=count,
            cost_threshold=self.config.steal_cost_threshold,
            local_rate_threshold=self.config.steal_local_rate_threshold,
            local_rate_fn=local_rate,
        )
        if not tasks:
            notice = NoTask(source=self.worker_id)
            self.cluster.network.send(
                self.worker_id, dest, notice.size_bytes(), notice
            )
            return
        for task in tasks:
            self.live_tasks.pop(task.task_id, None)
            self._unaccount_task(task)
            self.stats.tasks_migrated_out += 1
            self._emit(task.task_id, TaskEvent.MIGRATED_OUT, detail=dest)
            self.sent_tasks.setdefault(dest, []).append(copy.deepcopy(task))
        seq = self._next_seq
        self._next_seq += 1
        migration = TaskMigration(source=self.worker_id, tasks=tasks, seq=seq)
        if self.faults_enabled:
            # explicit in-flight accounting: the tasks leave this
            # worker's responsibility now and re-enter the live count
            # when (an incarnation of) the migration is applied.  The
            # recovery hold keeps the job from finishing while they are
            # on the wire.
            self.controller.tasks_lost(len(tasks))
            self.controller.begin_recovery()
            pending = _PendingMigration(dest=dest, migration=migration)
            self._pending_migrations[seq] = pending
            pending.timer = self.sim.schedule(
                self._rpc_delay(1), lambda: self._on_migration_timeout(seq)
            )
        self.cluster.network.send(
            self.worker_id, dest, migration.size_bytes(), migration
        )

    def _on_migration_timeout(self, seq: int) -> None:
        pending = self._pending_migrations.get(seq)
        if pending is None or not self.node.alive:
            return
        if pending.dest in self.down_workers:
            # the destination was declared down under us; the copies are
            # covered by ``sent_tasks`` re-injection, so settle the
            # migration here (normally ``on_worker_down`` already did)
            self._cancel_pending_migrations_to(pending.dest)
            return
        pending.attempts += 1
        if pending.attempts > self.config.rpc_max_retries:
            self.stats.rpc_backoff_cycles += 1
            pending.attempts = 0
        else:
            self.stats.migration_retransmits += 1
            self._emit(-1, TaskEvent.RPC_RETRY, detail=float(pending.dest))
            migration = pending.migration
            self.cluster.network.send(
                self.worker_id, pending.dest, migration.size_bytes(), migration
            )
        pending.timer = self.sim.schedule(
            self._rpc_delay(max(pending.attempts, 1)),
            lambda: self._on_migration_timeout(seq),
        )

    def _on_migration_ack(self, ack: MigrationAck) -> None:
        pending = self._pending_migrations.pop(ack.seq, None)
        if pending is None:
            return  # ack retransmitted for a migration already settled
        if pending.timer is not None:
            pending.timer.cancel()
        self.controller.end_recovery()

    def _cancel_pending_migrations_to(self, dest: int) -> None:
        """The destination was declared down: stop retransmitting.  The
        in-flight copies are covered by ``sent_tasks`` re-injection."""
        for seq, pending in list(self._pending_migrations.items()):
            if pending.dest != dest:
                continue
            if pending.timer is not None:
                pending.timer.cancel()
            del self._pending_migrations[seq]
            self.controller.end_recovery()

    def _on_migration(self, migration: TaskMigration) -> None:
        self._steal_pending = False
        if self.faults_enabled:
            # always (re-)ack — the previous ack may have been lost
            ack = MigrationAck(worker=self.worker_id, seq=migration.seq)
            self.cluster.network.send(
                self.worker_id, migration.source, ack.size_bytes(), ack
            )
            key = (migration.source, migration.seq)
            if key in self._seen_migrations:
                # a duplicated or retransmitted delivery: applying it
                # twice would double-run the tasks and corrupt the
                # global live count
                self.stats.duplicate_migrations_dropped += 1
                return
            self._seen_migrations.add(key)
        for task in migration.tasks:
            task.owner_worker = self.worker_id
            self.stats.tasks_migrated_in += 1
            self._emit(task.task_id, TaskEvent.MIGRATED_IN, detail=migration.source)
            if self.faults_enabled:
                # pairs with the sender's ``tasks_lost`` at ship time
                self.controller.task_created()
            self.live_tasks[task.task_id] = task
            self._account_task(task)
            task.status = TaskStatus.INACTIVE
            # what is "remote" changed with the move: recompute the
            # pull set relative to this worker's partition
            task.to_pull = set(self._remote_needed_from_candidates(task))
            self.task_buffer.append(task)
        self._flush_buffer(force=True)

    def _remote_needed_from_candidates(self, task: Task) -> List[int]:
        return [v for v in task.candidates if v not in self.vertex_table]

    def _on_no_task(self) -> None:
        self._steal_pending = False
        if self.controller.finished or not self.idle:
            return
        self.sim.schedule(
            self.config.steal_retry_interval, self._maybe_request_steal
        )

    # ------------------------------------------------------------------
    # progress / aggregation (§5.1)
    # ------------------------------------------------------------------

    def progress_snapshot(self) -> ProgressReport:
        return ProgressReport(
            worker=self.worker_id,
            store_size=len(self.store),
            cmq_size=len(self.cmq),
            cpq_size=self.node.cores.queued,
            busy_cores=self.node.cores.busy_cores,
            buffer_size=len(self.task_buffer),
            idle=self.idle,
        )

    def send_progress(self) -> None:
        if not self.node.alive:
            return
        report = self.progress_snapshot()
        self.cluster.network.send(
            self.worker_id, self.master_endpoint, report.size_bytes(), report
        )

    def send_agg_report(self) -> None:
        if self.agg is None or not self.node.alive:
            return
        report = AggReport(worker=self.worker_id, partial=self.agg.local_partial)
        self.cluster.network.send(
            self.worker_id, self.master_endpoint, report.size_bytes(), report
        )

    # ------------------------------------------------------------------
    # fault tolerance (§7)
    # ------------------------------------------------------------------

    def take_checkpoint(self, hdfs, epoch: int) -> None:
        """Snapshot live tasks + results + aggregator partial to HDFS.

        Skipped while seeding is still running: a mid-seeding snapshot
        is not a consistent state (it records no scan position), and
        restoring it would silently drop every task seeded after it.
        With no checkpoint at all, recovery re-seeds from scratch, which
        is exact.
        """
        if not self.node.alive or not self._seeding_done:
            return
        self._flush_buffer(force=True)
        # a task can be finished but still in live_tasks: its last round
        # has run (state mutates at core dispatch) while the completion
        # callback that records the result and kills it fires only after
        # the round's simulated duration.  Snapshotting it as *live*
        # would make a restore re-execute a round past its lifetime (and
        # lose the result, which is not in self.results yet) — so it is
        # checkpointed as completed instead
        tasks = []
        results = dict(self.results)
        for t in self.live_tasks.values():
            if t.finished:
                if t.result is not None:
                    results[t.task_id] = t.result
            else:
                tasks.append(copy.deepcopy(t))
        # sender-side logging: unacked outbound migrations are still
        # this worker's responsibility — without them, a crash after a
        # lost migration message would lose the tasks forever
        for pending in self._pending_migrations.values():
            tasks.extend(copy.deepcopy(t) for t in pending.migration.tasks)
        snapshot = {
            "tasks": tasks,
            "results": results,
            "agg_partial": copy.deepcopy(self.agg.local_partial) if self.agg else None,
            # the migration dedup ledger is durable state: it must stay
            # consistent with the task snapshot, else a retransmission
            # arriving after a restore would re-apply tasks the snapshot
            # already contains (double-count), or be wrongly suppressed
            "seen_migrations": set(self._seen_migrations),
        }
        size = sum(t.estimate_size() for t in self.live_tasks.values()) + 64 * (
            len(self.results) + 1
        )
        self._checkpoint = snapshot
        self.stats.checkpoints += 1
        if self.obs is not None:
            self._m_checkpoints.inc()
            self.obs.tracer.instant(
                "checkpoint.taken",
                cat="fault",
                tid=self.worker_id,
                epoch=epoch,
                tasks=len(tasks),
            )
        hdfs.write(f"ckpt/{epoch}/worker-{self.worker_id}", snapshot, size)
        self.node.disk.write(size, lambda: None)

    def on_failure(self) -> int:
        """The node died: all volatile state is gone.  Returns the number
        of live tasks lost (the controller removes them from the global
        count until recovery restores the checkpoint)."""
        lost = len(self.live_tasks)
        # until recover() completes, this worker has no consistent state:
        # clearing the seeding flag blocks the checkpoint path, else a
        # CheckpointCommand arriving between the physical reboot and the
        # logical restore would snapshot the post-crash empty state and
        # shadow the real recovery source (re-seed or a prior snapshot)
        self._seeding_done = False
        self.live_tasks.clear()
        self.cmq.clear()
        self.inflight.clear()
        self.task_buffer.clear()
        self.overflow.clear()
        self.store.drain_all()
        for cache in self.caches:
            cache.drop_all()
        self.results.clear()
        self._steal_pending = False
        # volatile protocol state dies with the node.  The migration
        # dedup ledger is deliberately cleared too — amnesia is real,
        # and a retransmission arriving post-reboot must re-apply since
        # the first application was wiped.
        for pending in self._pending_rpcs.values():
            if pending.timer is not None:
                pending.timer.cancel()
        self._pending_rpcs.clear()
        self._completed_seqs.clear()
        for pending in self._pending_migrations.values():
            if pending.timer is not None:
                pending.timer.cancel()
            # release the in-flight hold: the tasks are either delivered
            # anyway (the message survives the sender), restored from
            # this worker's checkpoint (it snapshots unacked outbound
            # migrations), or re-run at the destination
            self.controller.end_recovery()
        self._pending_migrations.clear()
        self._seen_migrations.clear()
        return lost

    def recover(self, hdfs, recovery_latency_cb: Optional[Callable[[], None]] = None) -> int:
        """Reload partition + checkpoint and resume.  Returns the number
        of tasks restored into the live set."""
        self.incarnation += 1
        total = sum(v.estimate_size() for v in self.vertex_table.values())
        self._alloc(total, "vertex table reload")
        if self._checkpoint is None:
            # died before the first snapshot: restart this worker's
            # share of the job from scratch by re-seeding
            self._seeding_done = False
            self.seed_tasks()
            if recovery_latency_cb is not None:
                recovery_latency_cb()
            return 0
        snapshot = self._checkpoint or {"tasks": [], "results": {}, "agg_partial": None}
        restored = 0
        self.results = dict(snapshot["results"])
        self._seen_migrations = set(snapshot.get("seen_migrations", ()))
        if self.agg is not None and snapshot["agg_partial"] is not None:
            self.agg.local_partial = copy.deepcopy(snapshot["agg_partial"])
        for task in snapshot["tasks"]:
            task = copy.deepcopy(task)
            task.owner_worker = self.worker_id
            self.live_tasks[task.task_id] = task
            self._account_task(task)
            task.status = TaskStatus.INACTIVE
            self.task_buffer.append(task)
            restored += 1
        self._seeding_done = True
        self._flush_buffer(force=True)
        if recovery_latency_cb is not None:
            recovery_latency_cb()
        return restored

    def _apply_membership(self, view: int, down: Set[int]) -> None:
        """Reconcile against a versioned membership view from the master.

        Views are totally ordered; anything at or below the last applied
        view is a duplicated or reordered straggler and is ignored, so a
        stale ``WorkerDown`` can never re-bury a recovered peer.  The
        reconcile itself is a diff, which makes lost individual notices
        harmless: the next periodic ``MembershipView`` carries the same
        information.
        """
        if view <= self._membership_view:
            return
        self._membership_view = view
        down = set(down)
        down.discard(self.worker_id)  # never act on our own obituary
        for worker in sorted(down - self.down_workers):
            self.on_worker_down(worker)
        for worker in sorted(self.down_workers - down):
            self.on_worker_up(worker)

    def on_worker_down(self, dead: int) -> None:
        """Park pulls aimed at a dead worker until it comes back, and
        re-inject any task this worker migrated to the casualty."""
        if dead in self.down_workers:
            return  # duplicated notice; the transition already ran
        self.down_workers.add(dead)
        # cancel outstanding RPCs to the casualty: their vids park below
        # and re-issue as fresh RPCs on WorkerUp
        for seq, pending in list(self._pending_rpcs.items()):
            if pending.owner != dead:
                continue
            if pending.timer is not None:
                pending.timer.cancel()
            del self._pending_rpcs[seq]
        self._cancel_pending_migrations_to(dead)
        for vid, waiters in list(self.inflight.items()):
            if self.owner_of(vid) != dead:
                continue
            for task_id in waiters:
                pending = self.cmq.get(task_id)
                if pending is not None and vid in pending.remaining:
                    pending.parked.add(vid)
        for task in self.sent_tasks.pop(dead, []):
            if task.task_id in self.live_tasks:
                continue
            task.owner_worker = self.worker_id
            self.controller.task_created()
            self.live_tasks[task.task_id] = task
            self._account_task(task)
            task.status = TaskStatus.INACTIVE
            self.task_buffer.append(task)
        self._flush_buffer(force=True)

    def on_worker_up(self, recovered: int) -> None:
        """Re-issue pulls that were parked while ``recovered`` was down."""
        if recovered not in self.down_workers:
            return  # duplicated notice; the transition already ran
        self.down_workers.discard(recovered)
        reissue: Set[int] = set()
        for pending in self.cmq.values():
            for vid in sorted(pending.parked):
                if self.owner_of(vid) == recovered:
                    pending.parked.discard(vid)
                    reissue.add(vid)
        if reissue:
            self._send_pull(recovered, sorted(reissue))

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def _on_message(self, message) -> None:
        payload = message.payload
        if isinstance(payload, PullRequest):
            vertices = tuple(
                self.vertex_table[vid]
                for vid in payload.vids
                if vid in self.vertex_table
            )
            response = PullResponse(vertices=vertices, seq=payload.seq)
            self.cluster.network.send(
                self.worker_id, payload.requester, response.size_bytes(), response
            )
        elif isinstance(payload, PullResponse):
            self._on_pull_response(payload)
        elif isinstance(payload, TaskMigration):
            self._on_migration(payload)
        elif isinstance(payload, MigrationAck):
            self._on_migration_ack(payload)
        elif isinstance(payload, NoTask):
            self._on_no_task()
        elif isinstance(payload, AggBroadcast):
            if self.agg is not None:
                self.agg.receive_global(payload.value)
        elif isinstance(payload, MigrateCommand):
            self.migrate_tasks_to(payload.dest, payload.count)
        elif isinstance(payload, CheckpointCommand):
            if self.hdfs is not None:
                self.take_checkpoint(self.hdfs, payload.epoch)
        elif isinstance(payload, WorkerDown):
            if payload.view >= 0:
                self._apply_membership(
                    payload.view, self.down_workers | {payload.worker}
                )
            else:
                self.on_worker_down(payload.worker)
        elif isinstance(payload, WorkerUp):
            if payload.view >= 0:
                self._apply_membership(
                    payload.view, self.down_workers - {payload.worker}
                )
            else:
                self.on_worker_up(payload.worker)
        elif isinstance(payload, MembershipView):
            self._apply_membership(payload.view, set(payload.down))
        else:
            raise TypeError(f"worker cannot handle {type(payload).__name__}")


class JobControllerProtocol:
    """What workers need from the job controller (documented interface)."""

    finished: bool

    def task_created(self) -> None:
        raise NotImplementedError

    def task_dead(self) -> None:
        raise NotImplementedError

    def seeding_finished(self, worker_id: int) -> None:
        raise NotImplementedError
