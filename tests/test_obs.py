"""Tests for the observability subsystem (repro.obs).

The contract under test, in rough order of importance:

* read-only: enabling observability changes no simulated quantity;
* zero overhead off: a run without obs allocates no spans or series;
* deterministic: same seed -> byte-identical snapshots and exports;
* the exporters emit well-formed Chrome trace / Prometheus / JSON;
* the regression gate passes clean and fails on injected drift.
"""

import copy
import json

import pytest

from repro.bench.runner import run
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    ObsCollector,
    Tracer,
    allocation_counts,
    collecting,
    current_collector,
)
from repro.obs import compare as obs_compare
from repro.obs.exporters import (
    chrome_trace,
    dumps_deterministic,
    metrics_document,
    prometheus_text,
)
from repro.sim.cluster import ClusterSpec

SPEC = ClusterSpec(num_nodes=4, cores_per_node=2)


def run_tc(**overrides):
    return run(workload="tc", dataset="skitter-s", spec=SPEC,
               time_limit=None, **overrides)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestMetrics:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b", worker=1) is reg.counter("a.b", worker=1)
        assert reg.counter("a.b", worker=1) is not reg.counter("a.b", worker=2)

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a.b", x=1, y=2)
        c2 = reg.counter("a.b", y=2, x=1)
        assert c1 is c2
        assert c1.key == 'a.b{x="1",y="2"}'

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("Bad-Name")

    def test_counter_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a.b").inc(-1)

    def test_histogram_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat.s", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 1.5, 99.0):
            h.observe(v)
        assert h.counts == [1, 2, 1]  # <=1, <=2, +Inf
        assert h.count == 4
        assert h.sum == pytest.approx(102.5)

    def test_histogram_rebucket_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("lat.s", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            reg.histogram("lat.s", buckets=(1.0, 3.0))

    def test_snapshot_sorted_and_plain(self):
        reg = MetricsRegistry()
        reg.counter("z.z").inc(2)
        reg.counter("a.a").inc(1)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.a", "z.z"]
        json.dumps(snap)  # plain primitives only

    def test_merge_counters_sum_gauges_max(self):
        a = MetricsRegistry()
        a.counter("c.n").inc(3)
        a.gauge("g.n").set(5.0)
        b = MetricsRegistry()
        b.counter("c.n").inc(4)
        b.gauge("g.n").set(2.0)
        merged = MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["counters"]["c.n"] == 7
        assert merged["gauges"]["g.n"] == 5.0

    def test_merge_histograms_sum(self):
        a = MetricsRegistry()
        a.histogram("h.n", buckets=(1.0,)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h.n", buckets=(1.0,)).observe(2.0)
        merged = MetricsRegistry.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["histograms"]["h.n"]["counts"] == [1, 1]
        assert merged["histograms"]["h.n"]["count"] == 2


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


class TestTracer:
    def test_begin_finish_nesting(self):
        clock = {"t": 0.0}
        tr = Tracer(lambda: clock["t"])
        outer = tr.begin("a", cat="task", tid=1)
        clock["t"] = 1.0
        inner = tr.begin("b", cat="task", tid=1, parent=outer.span_id)
        clock["t"] = 2.0
        tr.finish(inner)
        tr.finish(outer)
        d = tr.to_dicts()
        assert d[0]["start"] == 0.0 and d[0]["end"] == 2.0
        assert d[1]["parent"] == d[0]["id"]

    def test_capacity_drops_and_counts(self):
        tr = Tracer(lambda: 0.0, capacity=2)
        assert tr.begin("a") is not None
        assert tr.begin("b") is not None
        assert tr.begin("c") is None
        tr.finish(None)  # None-safe
        assert tr.dropped == 1
        assert len(tr) == 2

    def test_close_open_spans(self):
        tr = Tracer(lambda: 0.0)
        tr.begin("a")
        tr.instant("b")
        assert tr.close_open_spans(5.0) == 1
        assert tr.spans[0].end == 5.0


# ----------------------------------------------------------------------
# Read-only + zero-overhead contracts
# ----------------------------------------------------------------------


class TestOverheadAndEquivalence:
    def test_disabled_run_allocates_nothing(self):
        run_tc()  # warm caches so the probe measures steady state
        before = allocation_counts()
        result = run_tc()
        assert result.obs is None
        assert allocation_counts() == before

    def test_enabling_obs_changes_no_simulated_quantity(self):
        plain = run_tc()
        observed = run_tc(enable_obs=True)
        assert observed.obs is not None
        assert observed.value == plain.value
        assert observed.total_seconds == plain.total_seconds
        assert observed.network_bytes == plain.network_bytes
        assert observed.peak_memory_bytes == plain.peak_memory_bytes

    def test_same_seed_snapshots_byte_identical(self):
        a = run_tc(enable_obs=True)
        b = run_tc(enable_obs=True)
        assert dumps_deterministic(a.obs) == dumps_deterministic(b.obs)

    def test_gauges_mirror_job_result(self):
        result = run_tc(enable_obs=True)
        gauges = result.obs["metrics"]["gauges"]
        assert gauges["job.makespan"] == pytest.approx(result.total_seconds)
        assert gauges["job.messages"] > 0
        assert gauges["job.network_bytes"] == result.network_bytes

    def test_span_taxonomy_present(self):
        result = run_tc(enable_obs=True)
        names = {s["name"] for s in result.obs["spans"]}
        for expected in ("job.setup", "job.mining", "task.seed",
                         "task.pull_wait", "task.round", "rpc.pull"):
            assert expected in names, expected

    def test_collector_auto_attaches(self):
        assert current_collector() is None
        collector = ObsCollector()
        with collecting(collector):
            assert current_collector() is collector
            result = run_tc()
        assert current_collector() is None
        assert len(collector) == 1
        assert result.obs is not None
        assert collector.runs[0] is result.obs


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def obs_run():
    return run(workload="tc", dataset="skitter-s", spec=SPEC,
               time_limit=None, enable_obs=True).obs


class TestExporters:
    def test_chrome_trace_structure(self, obs_run):
        doc = chrome_trace([obs_run])
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        assert "X" in phases and "i" in phases
        meta = [e for e in events if e["ph"] == "M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["args"]["name"] == "master" for e in meta
                   if e["name"] == "thread_name")
        for e in events:
            if e["ph"] == "X":
                assert e["dur"] > 0 and e["ts"] >= 0

    def test_chrome_trace_one_pid_per_run(self, obs_run):
        doc = chrome_trace([obs_run, obs_run])
        assert {e["pid"] for e in doc["traceEvents"]} == {0, 1}

    def test_prometheus_text(self, obs_run):
        text = prometheus_text(obs_run["metrics"])
        assert "# TYPE sim_events counter" in text
        assert "# TYPE job_makespan gauge" in text
        assert "# TYPE gminer_pull_wait_seconds histogram" in text
        assert 'le="+Inf"' in text
        # cumulative bucket counts must end at the series count
        lines = text.splitlines()
        inf = next(l for l in lines if l.startswith("gminer_pull_wait_seconds_bucket")
                   and 'le="+Inf"' in l)
        count = next(l for l in lines
                     if l.startswith("gminer_pull_wait_seconds_count"))
        assert inf.rsplit(" ", 1)[1] == count.rsplit(" ", 1)[1]

    def test_metrics_document_schema(self, obs_run):
        doc = metrics_document([obs_run])
        assert doc["schema"] == "repro.obs.metrics/1"
        assert len(doc["runs"]) == 1
        entry = doc["runs"][0]
        assert entry["num_spans"] == len(obs_run["spans"])
        assert entry["metrics"] == obs_run["metrics"]

    def test_deterministic_dumps(self, obs_run):
        assert dumps_deterministic(obs_run) == dumps_deterministic(
            json.loads(dumps_deterministic(obs_run))
        )


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------


BASE_DOC = {
    "schema": "repro.obs.bench/1",
    "spec": {"num_nodes": 4, "cores_per_node": 4},
    "cells": {
        "tc/skitter-s": {
            "makespan": 0.5, "messages": 100.0, "network_bytes": 1000.0,
            "tasks_created": 10.0, "work_units": 5000.0,
        },
    },
}


class TestCompareGate:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_clean_pass_exits_zero(self, tmp_path, capsys):
        p = self._write(tmp_path, "base.json", BASE_DOC)
        assert obs_compare.main([p, p]) == 0
        assert "OK" in capsys.readouterr().out

    def test_injected_drift_exits_one(self, tmp_path, capsys):
        drifted = copy.deepcopy(BASE_DOC)
        drifted["cells"]["tc/skitter-s"]["work_units"] += 1
        a = self._write(tmp_path, "base.json", BASE_DOC)
        b = self._write(tmp_path, "new.json", drifted)
        assert obs_compare.main([a, b]) == 1
        assert "work_units drifted" in capsys.readouterr().out

    def test_missing_cell_exits_one(self, tmp_path):
        smaller = copy.deepcopy(BASE_DOC)
        del smaller["cells"]["tc/skitter-s"]
        a = self._write(tmp_path, "base.json", BASE_DOC)
        b = self._write(tmp_path, "new.json", smaller)
        assert obs_compare.main([a, b]) == 1

    def test_rtol_allows_small_drift(self, tmp_path):
        drifted = copy.deepcopy(BASE_DOC)
        drifted["cells"]["tc/skitter-s"]["makespan"] *= 1.0 + 1e-12
        a = self._write(tmp_path, "base.json", BASE_DOC)
        b = self._write(tmp_path, "new.json", drifted)
        assert obs_compare.main([a, b]) == 0
        assert obs_compare.main([a, b, "--rtol", "1e-15"]) == 1

    def test_quantity_unknown_to_baseline_is_tolerated(self, tmp_path):
        """A quantity added after the baseline was pinned isn't drift."""
        older = copy.deepcopy(BASE_DOC)
        del older["cells"]["tc/skitter-s"]["work_units"]
        a = self._write(tmp_path, "base.json", older)
        b = self._write(tmp_path, "new.json", BASE_DOC)
        assert obs_compare.main([a, b]) == 0

    def test_quantity_disappearing_from_new_is_drift(self, tmp_path, capsys):
        shrunk = copy.deepcopy(BASE_DOC)
        del shrunk["cells"]["tc/skitter-s"]["work_units"]
        a = self._write(tmp_path, "base.json", BASE_DOC)
        b = self._write(tmp_path, "new.json", shrunk)
        assert obs_compare.main([a, b]) == 1
        assert "disappeared" in capsys.readouterr().out

    def test_env_metadata_in_fresh_collect(self):
        from repro.obs import environment_metadata

        env = environment_metadata()
        assert set(env) >= {
            "python", "implementation", "numpy", "cpu_count", "platform",
            "machine",
        }
        assert env["cpu_count"] >= 1

    def test_bad_schema_exits_two(self, tmp_path, capsys):
        bad = dict(BASE_DOC, schema="something/else")
        a = self._write(tmp_path, "base.json", BASE_DOC)
        b = self._write(tmp_path, "bad.json", bad)
        assert obs_compare.main([a, b]) == 2
        assert "schema" in capsys.readouterr().err

    def test_checked_in_baseline_matches_fresh_collect(self):
        """The real gate: results/BENCH_obs.json vs a fresh collect."""
        from repro.obs import baseline as obs_baseline

        fresh = obs_baseline.collect()
        with open("results/BENCH_obs.json", encoding="utf-8") as fh:
            checked_in = json.load(fh)
        assert obs_compare.compare(checked_in, fresh) == []
