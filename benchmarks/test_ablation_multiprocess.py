"""Ablation D — cache sharing vs multi-process deployment (paper §5.1).

Expected shape: the default single-process-per-node deployment (cache
shared by all cores) keeps a higher hit rate and far less pull traffic
than split per-process caches — the reason the paper deploys one
worker per node."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_ablation_multiprocess(benchmark):
    report = run_experiment(benchmark, experiments.ablation_multiprocess)
    shared = report.data["1 process(es)"]
    split = report.data["4 process(es)"]
    assert shared.stats["cache_hit_rate"] > split.stats["cache_hit_rate"]
    assert shared.stats["vertices_pulled"] < split.stats["vertices_pulled"]
    assert shared.network_bytes < split.network_bytes
