"""Brute-force ground truth for compiled plans.

:func:`count_embeddings_bruteforce` enumerates injective embeddings by
naive DFS in *global pattern-node order* — deliberately sharing no
code with the compiler's extension order, symmetry constraints or the
kernel-backed executor — and returns the count under the query's
symmetry semantics:

* ``symmetry="none"`` — the raw embedding count;
* ``symmetry="auto"`` — raw count divided by the automorphism group
  order (the orbit-counting identity: the compiler's symmetry-broken
  count must pick exactly one embedding per orbit, so the division is
  exact and any remainder is itself a bug).

This is the oracle leg of the fuzzer's plan axis and the equivalence
tests; it is exponential and only fit for small graphs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.graph import Graph
from repro.plans.compiler import automorphisms
from repro.plans.query import WILDCARD, PatternQuery, flatten_pattern


def _raw_embedding_count(query: PatternQuery, graph: Graph) -> int:
    """Injective embeddings satisfying edges, labels, predicates and
    the query's *explicit* order constraints."""
    labels, tree_edges = flatten_pattern(query.pattern)
    k = len(labels)
    earlier_adjacent: List[List[int]] = [[] for _ in range(k)]
    for a, b in list(tree_edges) + list(query.edges):
        lo, hi = (a, b) if a < b else (b, a)
        earlier_adjacent[hi].append(lo)
    preds: List[List[Tuple[str, int]]] = [[] for _ in range(k)]
    for node, op, value in query.predicates:
        preds[node].append((op, value))
    orders_at: List[List[Tuple[int, bool]]] = [[] for _ in range(k)]
    for a, b in query.orders:
        # check at the later global index; True means "image must be
        # greater than image(other)"
        if a < b:
            orders_at[b].append((a, True))
        else:
            orders_at[a].append((b, False))

    def admissible(node: int, vid: int, image: List[int]) -> bool:
        if vid in image:
            return False
        data = graph.vertex_data(vid)
        if labels[node] != WILDCARD and data.label != labels[node]:
            return False
        for op, value in preds[node]:
            if op == "has-attr" and value not in data.attributes:
                return False
        neighbors = set(data.neighbors)
        for other in earlier_adjacent[node]:
            if image[other] not in neighbors:
                return False
        for other, must_be_greater in orders_at[node]:
            if must_be_greater and vid <= image[other]:
                return False
            if not must_be_greater and vid >= image[other]:
                return False
        return True

    count = 0
    image: List[int] = []

    def extend(node: int) -> None:
        nonlocal count
        if node == k:
            count += 1
            return
        if node == 0:
            candidates: Sequence[int] = sorted(graph.vertices())
        else:
            # every non-root node has a tree parent among the earlier
            # nodes, so its image must neighbour that parent's image
            parent = earlier_adjacent[node][0]
            candidates = graph.neighbors(image[parent])
        for vid in candidates:
            if admissible(node, vid, image):
                image.append(vid)
                extend(node + 1)
                image.pop()

    extend(0)
    return count


def count_embeddings_bruteforce(query: PatternQuery, graph: Graph) -> int:
    """Ground-truth count for ``query`` on ``graph`` (see module doc)."""
    query.validate()
    raw = _raw_embedding_count(query, graph)
    if query.symmetry != "auto":
        return raw
    labels, tree_edges = flatten_pattern(query.pattern)
    edges = list(tree_edges) + list(query.edges)
    group_order = len(
        automorphisms(labels, edges, query.predicates, query.orders)
    )
    if raw % group_order:
        raise AssertionError(
            f"embedding count {raw} is not divisible by |Aut| = "
            f"{group_order}: symmetry accounting is broken"
        )
    return raw // group_order
