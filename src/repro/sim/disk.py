"""Simulated per-node disk.

Models a single SATA spindle (the paper's nodes each have one 10krpm
SATA disk): requests pay a fixed seek/setup latency plus a transfer
delay, and the disk services one request at a time.  The task store
uses this to spill and load task blocks, and the checkpointer uses it
for snapshot writes; both costs are meant to be *hidden* under CPU work
by the task pipeline, which Figure 6 demonstrates.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Tuple

from repro.sim.engine import Simulator
from repro.sim.metrics import ByteCounter, ResourceMeter


class Disk:
    """One node's disk with FIFO request servicing.

    Parameters
    ----------
    read_bandwidth / write_bandwidth:
        Bytes per second for sequential transfers.
    latency:
        Per-request positioning overhead in seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        read_bandwidth: float = 150e6,
        write_bandwidth: float = 120e6,
        latency: float = 5e-3,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.latency = latency
        self.meter = ResourceMeter(name=f"disk-{node_id}", capacity=1)
        self.bytes_read = ByteCounter(name=f"disk-read-{node_id}")
        self.bytes_written = ByteCounter(name=f"disk-write-{node_id}")
        self._queue: Deque[Tuple[float, Callable[[], None]]] = deque()
        self._busy = False
        self._halted = False

    def halt(self) -> None:
        self._halted = True
        self._queue.clear()

    def resume(self) -> None:
        self._halted = False
        self._pump()

    def read(self, size_bytes: int, on_done: Callable[[], None]) -> None:
        """Queue a read of ``size_bytes``; ``on_done`` fires at completion."""
        if size_bytes < 0:
            raise ValueError("read size cannot be negative")
        self.bytes_read.add(size_bytes)
        duration = self.latency + size_bytes / self.read_bandwidth
        self._queue.append((duration, on_done))
        self._pump()

    def write(self, size_bytes: int, on_done: Callable[[], None]) -> None:
        """Queue a write of ``size_bytes``; ``on_done`` fires at completion."""
        if size_bytes < 0:
            raise ValueError("write size cannot be negative")
        self.bytes_written.add(size_bytes)
        duration = self.latency + size_bytes / self.write_bandwidth
        self._queue.append((duration, on_done))
        self._pump()

    def _pump(self) -> None:
        if self._busy or self._halted or not self._queue:
            return
        duration, on_done = self._queue.popleft()
        self._busy = True
        token = self.meter.begin(self.sim.now)

        def finish():
            self._busy = False
            self.meter.end(self.sim.now, token)
            if not self._halted:
                on_done()
            self._pump()

        self.sim.schedule(duration, finish)

    def utilization(self, start: float, end: float) -> float:
        return self.meter.utilization(start, end)
