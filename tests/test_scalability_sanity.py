"""Fast scalability sanity checks (miniature Figures 7–9).

The full sweeps live in ``benchmarks/``; these small versions guard
the *directions* in the regular test suite so a regression in core
scheduling is caught within seconds.
"""

import pytest

from repro.apps import TriangleCountingApp
from repro.core import GMinerConfig, GMinerJob
from repro.sim.cluster import ClusterSpec


def run_tc(graph, nodes, cores):
    config = GMinerConfig(cluster=ClusterSpec(num_nodes=nodes, cores_per_node=cores))
    return GMinerJob(TriangleCountingApp(), graph, config).run()


class TestVertical:
    def test_more_cores_never_hurt_much(self, small_social_graph):
        one = run_tc(small_social_graph, 4, 1)
        four = run_tc(small_social_graph, 4, 4)
        assert four.value == one.value
        assert four.mining_seconds < one.mining_seconds

    def test_work_conserved_across_cores(self, small_social_graph):
        """Cores change elapsed time, not the work performed."""
        one = run_tc(small_social_graph, 4, 1)
        four = run_tc(small_social_graph, 4, 4)
        assert one.stats["rounds_executed"] == four.stats["rounds_executed"]


class TestHorizontal:
    def test_more_nodes_spread_memory(self, small_social_graph):
        two = run_tc(small_social_graph, 2, 2)
        eight = run_tc(small_social_graph, 8, 2)
        assert eight.value == two.value
        # per-node footprint shrinks even if the cluster total grows
        per_node_two = two.peak_memory_bytes / 2
        per_node_eight = eight.peak_memory_bytes / 8
        assert per_node_eight < per_node_two

    def test_single_node_no_network(self, small_social_graph):
        solo = run_tc(small_social_graph, 1, 4)
        multi = run_tc(small_social_graph, 4, 4)
        assert solo.stats["vertices_pulled"] == 0
        assert multi.stats["vertices_pulled"] > 0
        assert solo.value == multi.value


class TestUtilizationDirection:
    def test_fewer_cores_higher_utilization(self, small_social_graph):
        packed = run_tc(small_social_graph, 4, 1)
        roomy = run_tc(small_social_graph, 4, 8)
        assert packed.cpu_utilization > roomy.cpu_utilization
