"""Crash-safe supervision for the native process pool.

The simulator earned its fault-tolerance story in PR 3 (heartbeats,
incarnations, recovery); this module gives the *real* execution engine
the same contract.  :class:`Supervisor` runs the chunk pool under a
master-side control loop that survives everything short of the parent
process dying:

* **liveness** — worker processes are watched by exitcode; a death
  (OOM kill, segfault, injected ``os._exit``) forfeits every chunk the
  worker held and triggers a bounded respawn;
* **chunk leases** — each claimed chunk carries a wall-clock lease in
  shared memory, written under the claim lock; a worker that holds a
  chunk past ``native_chunk_deadline`` is presumed hung, terminated,
  and its chunks forfeited;
* **retry with reassignment** — forfeited and transiently-failed
  chunks are re-dispatched to idle workers with an explicit attempt
  number; because chunk outcomes are pure functions of the chunk's
  seed vertices, a retried chunk's outcome is bit-identical to what
  the first attempt would have produced, so the merged result never
  depends on the fault schedule;
* **poison quarantine** — a chunk that exhausts
  ``native_max_chunk_retries`` is quarantined with its per-attempt
  error log; the run then fails with a structured
  :class:`NativeChunkError` instead of hanging or dying on a bare
  traceback;
* **graceful degradation** — respawns are bounded by
  ``native_max_respawns``; past the budget the pool shrinks, and if it
  empties entirely the remaining chunks execute serially in-process
  (the final fallback), so ``mine()`` returns either the exact answer
  or a precise diagnosis.

Self-scheduling (the per-worker queues with seeded tail-stealing from
PR 7) is preserved: the shared queue state outlives any individual
worker, so a surviving or respawned worker claims the chunks a dead
one never started, and only *claimed-but-unfinished* chunks need the
supervisor's retry path.  Lease accounting follows the claim, not the
queue: a stolen chunk is leased to the thief, so a thief's failure
charges (and retries) the chunk exactly once.

Every message a worker emits may be lost at an abrupt death (that is
what abrupt death means); the supervisor relies on shared memory plus
exitcodes, never on a farewell message, for correctness.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import random
import time
import traceback
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Set, Tuple

from repro import kernels
from repro.native.chaos import FAULT_EXIT_CODE, HANG_FOREVER, NativeFaultPlan
from repro.native.runtime import ChunkOutcome, execute_chunk, make_data_source

#: Engine defaults for the supervision knobs, used when the
#: corresponding ``GMinerConfig`` field is ``None``.
DEFAULT_CHUNK_DEADLINE = 60.0
DEFAULT_MAX_CHUNK_RETRIES = 2
DEFAULT_MAX_RESPAWNS = 2

#: Supervisor poll period: the latency of death/lease detection.
#: Purely a control-plane cadence — results never depend on it.
_TICK = 0.05
#: Grace period for workers to drain and exit after a stop command.
_STOP_GRACE = 5.0

#: Fixed steal seed (same constant family as PR 7): victim selection
#: is deterministic per (seed, slot) — though results never depend on
#: the steal schedule in the first place.
STEAL_SEED = 0xC0FFEE


@dataclass
class ChunkFailure:
    """One quarantined chunk: its id, how often it was tried, and the
    per-attempt error descriptions (tracebacks for real exceptions)."""

    chunk_id: int
    attempts: int
    errors: List[str] = field(default_factory=list)


class NativeChunkError(RuntimeError):
    """A native run gave up on one or more chunks.

    Raised — after the pool is fully torn down — when chunks exhausted
    their retry budget.  ``failures`` carries one :class:`ChunkFailure`
    per quarantined chunk, sorted by chunk id, so callers (and CI
    logs) see exactly which seed ranges failed, how many attempts were
    made, and every per-attempt error, instead of a hang or a bare
    worker traceback.
    """

    def __init__(self, failures: Sequence[ChunkFailure]) -> None:
        self.failures = sorted(failures, key=lambda f: f.chunk_id)
        lines = [
            f"native run gave up on {len(self.failures)} chunk(s) after "
            "exhausting their retry budget "
            "(see .failures for per-attempt details):"
        ]
        for failure in self.failures:
            last = failure.errors[-1] if failure.errors else "<no error recorded>"
            first_line = last.strip().splitlines()[-1] if last.strip() else last
            lines.append(
                f"  chunk {failure.chunk_id}: {failure.attempts} failed "
                f"attempt(s); last error: {first_line}"
            )
        super().__init__("\n".join(lines))


# ----------------------------------------------------------------------
# the pool worker
# ----------------------------------------------------------------------


def _claim(
    slot: int,
    num_slots: int,
    queues: Sequence[Sequence[int]],
    counts,
    holders,
    leases,
    rng: random.Random,
    wid: int,
) -> Tuple[Optional[int], bool]:
    """Pop the next chunk id and record the lease, all under one lock.

    Own queue head first, else steal from the *tail* of a seeded-random
    victim (the classic discipline).  The lease — holder id plus a
    monotonic claim timestamp — is written inside the same critical
    section, so the supervisor can never observe a claimed chunk
    without its lease.
    """
    with counts.get_lock():
        head, tail = counts[2 * slot], counts[2 * slot + 1]
        if head < tail:
            counts[2 * slot] = head + 1
            chunk_id = queues[slot][head]
            holders[chunk_id] = wid
            leases[chunk_id] = time.monotonic()
            return chunk_id, False
        victims = [w for w in range(num_slots) if w != slot]
        rng.shuffle(victims)
        for victim in victims:
            vhead, vtail = counts[2 * victim], counts[2 * victim + 1]
            if vhead < vtail:
                counts[2 * victim + 1] = vtail - 1
                chunk_id = queues[victim][vtail - 1]
                holders[chunk_id] = wid
                leases[chunk_id] = time.monotonic()
                return chunk_id, True
    return None, False


def _worker_main(
    wid: int,
    slot: int,
    num_slots: int,
    app_bytes: bytes,
    graph_bytes: bytes,
    backend: Optional[str],
    chunks: List[List[int]],
    queues: List[List[int]],
    counts,
    holders,
    leases,
    fault_plan: Optional[NativeFaultPlan],
    feed,
    out_queue,
) -> None:
    """Pool-worker loop: self-schedule until dry, then serve retries.

    Phase 1 claims/steals from the shared queues exactly like PR 7's
    worker.  Once the queues are dry the worker announces ``idle`` and
    blocks on its feed for supervisor-dispatched retries (``("exec",
    chunk_id, attempt)``) until told to stop.  Respawned workers run
    the same loop — phase 1 lets them pick up chunks a dead sibling
    never started.

    Injected faults fire at chunk pickup (crash/hang/slow) or as
    whole-chunk transient errors, never mid-chunk: a chunk either
    ships its complete deterministic outcome or nothing.
    """
    try:
        app = pickle.loads(app_bytes)
        graph = pickle.loads(graph_bytes)
        data_of = make_data_source(graph)
        rng = random.Random(STEAL_SEED * 2654435761 + slot)
        claim_index = 0

        def execute_one(chunk_id: int, attempt: int, stolen: bool) -> None:
            nonlocal claim_index
            my_claim = claim_index
            claim_index += 1
            if fault_plan is not None:
                delay = fault_plan.slow_delay(wid)
                if delay > 0.0:
                    time.sleep(delay)
                action = fault_plan.claim_action(wid, my_claim)
                if action is not None:
                    kind, duration = action
                    if kind == "crash":
                        # abrupt: no atexit, no queue flush — buffered
                        # messages die with us, like a real OOM kill
                        os._exit(FAULT_EXIT_CODE)
                    time.sleep(duration if duration is not None else HANG_FOREVER)
                failure = fault_plan.chunk_failure(chunk_id, attempt)
                if failure is not None:
                    out_queue.put(
                        ("chunk-error", wid, chunk_id, attempt, failure, stolen)
                    )
                    return
            try:
                outcome = execute_chunk(
                    app, graph, chunk_id, chunks[chunk_id], data_of
                )
            except Exception:
                out_queue.put(
                    (
                        "chunk-error",
                        wid,
                        chunk_id,
                        attempt,
                        traceback.format_exc(),
                        stolen,
                    )
                )
                return
            out_queue.put(
                ("chunk", outcome, {"wid": wid, "attempt": attempt, "stolen": stolen})
            )

        context = kernels.use_backend(backend) if backend else nullcontext()
        with context:
            while True:
                chunk_id, stolen = _claim(
                    slot, num_slots, queues, counts, holders, leases, rng, wid
                )
                if chunk_id is None:
                    break
                execute_one(chunk_id, 0, stolen)
            out_queue.put(("idle", wid))
            while True:
                command = feed.get()
                if command[0] == "stop":
                    break
                _, chunk_id, attempt = command
                with counts.get_lock():
                    # refresh the lease at execution start: dispatch
                    # latency must not eat into the chunk's deadline
                    leases[chunk_id] = time.monotonic()
                execute_one(chunk_id, attempt, False)
                out_queue.put(("idle", wid))
        out_queue.put(("done", wid))
    except BaseException:  # ship the traceback; never hang the parent
        try:
            out_queue.put(("fatal", wid, traceback.format_exc()))
        except Exception:
            pass


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------


@dataclass
class _Worker:
    """Parent-side handle for one pool process."""

    wid: int
    slot: int
    proc: Any
    feed: Any
    idle: bool = False
    stopping: bool = False


class Supervisor:
    """Master-side control loop for one supervised native run.

    Construct, then call :meth:`run` exactly once.  ``run`` returns
    ``(outcomes, diagnostics)`` — outcomes keyed by chunk id, merged
    first-result-wins (chunk outcomes are pure, so duplicates are
    byte-identical) — or raises :class:`NativeChunkError` after full
    pool teardown when chunks were quarantined.  Any exception path
    (including ``KeyboardInterrupt``) terminates and joins every child
    and drains the queues: no orphan workers, no leaked feeder
    threads.
    """

    def __init__(
        self,
        *,
        ctx,
        app,
        graph,
        app_bytes: bytes,
        graph_bytes: bytes,
        backend: Optional[str],
        chunks: List[List[int]],
        num_workers: int,
        fault_plan: Optional[NativeFaultPlan] = None,
        chunk_deadline: Optional[float] = DEFAULT_CHUNK_DEADLINE,
        max_chunk_retries: int = DEFAULT_MAX_CHUNK_RETRIES,
        max_respawns: int = DEFAULT_MAX_RESPAWNS,
        obs=None,
    ) -> None:
        self.ctx = ctx
        self.app = app
        self.graph = graph
        self.app_bytes = app_bytes
        self.graph_bytes = graph_bytes
        self.backend = backend
        self.chunks = chunks
        self.num_slots = num_workers
        self.fault_plan = fault_plan
        self.chunk_deadline = chunk_deadline
        self.max_chunk_retries = max_chunk_retries
        self.max_respawns = max_respawns
        self.obs = obs

        n = len(chunks)
        queues: List[List[int]] = [[] for _ in range(num_workers)]
        for chunk_id in range(n):
            queues[chunk_id % num_workers].append(chunk_id)
        self.queues = queues
        self.counts = ctx.Array(
            "l", [x for queue in queues for x in (0, len(queue))], lock=True
        )
        self.lock = self.counts.get_lock()
        self.holders = ctx.Array("l", [-1] * max(n, 1), lock=False)
        self.leases = ctx.Array("d", [0.0] * max(n, 1), lock=False)
        self.out_queue = ctx.Queue()

        self.workers: Dict[int, _Worker] = {}
        self.exited: List[Any] = []
        self.next_wid = 0

        self.outcomes: Dict[int, ChunkOutcome] = {}
        self.attempts: List[int] = [0] * n
        self.errors: Dict[int, List[str]] = {}
        self.retry_q: Deque[int] = deque()
        self.quarantined: Set[int] = set()

        self.diag: Dict[str, int] = {
            "steals": 0,
            "crashes": 0,
            "hangs": 0,
            "retries": 0,
            "respawns": 0,
            "chunk_errors": 0,
            "leases_expired": 0,
            "fallback_chunks": 0,
        }
        if obs is not None:
            # eagerly create the counters so even fault-free snapshots
            # carry explicit zeros for the supervision quantities
            self._obs_counters = {
                key: obs.registry.counter(f"native.{key}")
                for key in (
                    "crashes",
                    "hangs",
                    "retries",
                    "respawns",
                    "chunk_errors",
                    "leases_expired",
                )
            }
        else:
            self._obs_counters = None

    # -- bookkeeping ---------------------------------------------------

    def _count(self, key: str, n: int = 1) -> None:
        self.diag[key] += n
        if self._obs_counters is not None and key in self._obs_counters:
            self._obs_counters[key].inc(n)

    def _remaining(self) -> int:
        return len(self.chunks) - len(self.outcomes) - len(self.quarantined)

    def _done(self, chunk_id: int) -> bool:
        return chunk_id in self.outcomes or chunk_id in self.quarantined

    # -- lifecycle -----------------------------------------------------

    def run(self) -> Tuple[Dict[int, ChunkOutcome], Dict[str, int]]:
        try:
            for slot in range(self.num_slots):
                self._spawn(slot)
            self._loop()
            if self._remaining() > 0 and not self.workers:
                # the pool is gone and the respawn budget is spent:
                # finish what is left in-process, serially
                self._serial_fallback()
        except BaseException:
            self._shutdown(graceful=False)
            raise
        self._shutdown(graceful=True)
        if self.quarantined:
            raise NativeChunkError(
                [
                    ChunkFailure(
                        chunk_id=chunk_id,
                        attempts=self.attempts[chunk_id],
                        errors=list(self.errors.get(chunk_id, ())),
                    )
                    for chunk_id in sorted(self.quarantined)
                ]
            )
        return self.outcomes, self.diag

    def _spawn(self, slot: int) -> _Worker:
        wid = self.next_wid
        self.next_wid += 1
        feed = self.ctx.Queue()
        proc = self.ctx.Process(
            target=_worker_main,
            args=(
                wid,
                slot,
                self.num_slots,
                self.app_bytes,
                self.graph_bytes,
                self.backend,
                self.chunks,
                self.queues,
                self.counts,
                self.holders,
                self.leases,
                self.fault_plan,
                feed,
                self.out_queue,
            ),
            daemon=True,
        )
        worker = _Worker(wid=wid, slot=slot, proc=proc, feed=feed)
        self.workers[wid] = worker
        proc.start()
        return worker

    def _loop(self) -> None:
        while self._remaining() > 0 and self.workers:
            try:
                message = self.out_queue.get(timeout=_TICK)
            except queue_mod.Empty:
                message = None
            if message is not None:
                self._on_message(message)
                while True:
                    try:
                        self._on_message(self.out_queue.get_nowait())
                    except queue_mod.Empty:
                        break
            self._reap_dead()
            self._expire_leases()
            self._dispatch_retries()

    # -- message handling ----------------------------------------------

    def _on_message(self, message: Tuple) -> None:
        kind = message[0]
        if kind == "chunk":
            _, outcome, meta = message
            self.diag["steals"] += int(meta["stolen"])
            chunk_id = outcome.chunk_id
            if chunk_id not in self.outcomes:
                # first result wins; a quarantined chunk that somehow
                # still delivered (a hung worker racing its own
                # termination) is rescued — exact answers beat diagnoses
                self.quarantined.discard(chunk_id)
                self.outcomes[chunk_id] = outcome
        elif kind == "chunk-error":
            _, wid, chunk_id, attempt, error, stolen = message
            if wid not in self.workers:
                return  # stale message from a worker already reaped
            self.diag["steals"] += int(stolen)
            self._count("chunk_errors")
            if self.obs is not None:
                self.obs.tracer.instant(
                    "native.chunk_error",
                    cat="native",
                    tid=wid,
                    chunk=chunk_id,
                    attempt=attempt,
                )
            if chunk_id in self.outcomes:
                return
            self._record_failure(
                chunk_id, f"attempt {attempt} on worker {wid}: {error}"
            )
        elif kind == "idle":
            worker = self.workers.get(message[1])
            if worker is not None:
                worker.idle = True
        elif kind == "done":
            worker = self.workers.pop(message[1], None)
            if worker is not None:
                self.exited.append(worker.proc)
        elif kind == "fatal":
            _, wid, tb = message
            if wid in self.workers:
                self._worker_died(
                    wid, f"worker {wid} internal error:\n{tb}", kind="crash"
                )

    def _record_failure(
        self, chunk_id: int, description: str, requeue: bool = True
    ) -> None:
        """One failed attempt of ``chunk_id``: log, then retry or
        quarantine.  The holder entry is cleared so a later worker
        death cannot double-charge the same failure."""
        with self.lock:
            self.holders[chunk_id] = -1
        self.attempts[chunk_id] += 1
        self.errors.setdefault(chunk_id, []).append(description)
        if self.attempts[chunk_id] > self.max_chunk_retries:
            self.quarantined.add(chunk_id)
            if self.obs is not None:
                self.obs.tracer.instant(
                    "native.quarantine",
                    cat="native",
                    tid=-1,
                    chunk=chunk_id,
                    attempts=self.attempts[chunk_id],
                )
        elif requeue:
            self.retry_q.append(chunk_id)

    # -- liveness ------------------------------------------------------

    def _reap_dead(self) -> None:
        for wid, worker in list(self.workers.items()):
            if not worker.proc.is_alive() and not worker.stopping:
                code = worker.proc.exitcode
                label = (
                    "injected crash"
                    if code == FAULT_EXIT_CODE
                    else f"exitcode {code}"
                )
                self._worker_died(
                    wid, f"worker {wid} died ({label})", kind="crash"
                )

    def _expire_leases(self) -> None:
        if self.chunk_deadline is None:
            return
        now = time.monotonic()
        hung: Dict[int, List[int]] = {}
        with self.lock:
            for chunk_id in range(len(self.chunks)):
                wid = self.holders[chunk_id]
                if wid < 0 or self._done(chunk_id) or wid not in self.workers:
                    continue
                lease = self.leases[chunk_id]
                if lease > 0.0 and now - lease > self.chunk_deadline:
                    hung.setdefault(wid, []).append(chunk_id)
        for wid, chunk_ids in hung.items():
            self._count("leases_expired", len(chunk_ids))
            if self.obs is not None:
                for chunk_id in chunk_ids:
                    self.obs.tracer.instant(
                        "native.lease_expired",
                        cat="native",
                        tid=wid,
                        chunk=chunk_id,
                    )
            self._worker_died(
                wid,
                f"worker {wid} forfeited its lease "
                f"(chunk held past the {self.chunk_deadline}s deadline)",
                kind="hang",
            )

    def _worker_died(self, wid: int, reason: str, kind: str) -> None:
        """A worker is gone (or being put down): forfeit its chunks,
        count the event, and respawn into its slot if budget allows."""
        worker = self.workers.pop(wid, None)
        if worker is None:
            return
        if worker.proc.is_alive():
            self._terminate(worker.proc)
        self.exited.append(worker.proc)
        self._count("crashes" if kind == "crash" else "hangs")
        if self.obs is not None:
            self.obs.tracer.instant(
                f"native.worker_{'crash' if kind == 'crash' else 'hang'}",
                cat="native",
                tid=wid,
                reason=reason.splitlines()[0],
            )
        forfeited: List[int] = []
        with self.lock:
            for chunk_id in range(len(self.chunks)):
                if self.holders[chunk_id] == wid and not self._done(chunk_id):
                    self.holders[chunk_id] = -1
                    forfeited.append(chunk_id)
        for chunk_id in forfeited:
            self._record_failure(chunk_id, f"attempt forfeited: {reason}")
        if self._remaining() > 0 and self.diag["respawns"] < self.max_respawns:
            self._count("respawns")
            replacement = self._spawn(worker.slot)
            if self.obs is not None:
                self.obs.tracer.instant(
                    "native.respawn",
                    cat="native",
                    tid=replacement.wid,
                    slot=worker.slot,
                )

    def _terminate(self, proc) -> None:
        """Terminate a worker without ever killing a lock holder.

        The claim lock's critical sections are pure memory operations,
        so holding it here is momentary — but killing a process that
        owns it would deadlock every survivor, hence the acquire."""
        with self.lock:
            proc.terminate()
        proc.join(1.0)
        if proc.is_alive():
            proc.kill()
            proc.join(1.0)

    # -- retry dispatch ------------------------------------------------

    def _dispatch_retries(self) -> None:
        if not self.retry_q:
            return
        idle = sorted(
            (w for w in self.workers.values() if w.idle and not w.stopping),
            key=lambda w: w.wid,
        )
        for worker in idle:
            chunk_id = None
            while self.retry_q:
                candidate = self.retry_q.popleft()
                if not self._done(candidate):
                    chunk_id = candidate
                    break
            if chunk_id is None:
                return
            with self.lock:
                self.holders[chunk_id] = worker.wid
                self.leases[chunk_id] = time.monotonic()
            worker.idle = False
            worker.feed.put(("exec", chunk_id, self.attempts[chunk_id]))
            self._count("retries")
            if self.obs is not None:
                self.obs.tracer.instant(
                    "native.retry",
                    cat="native",
                    tid=worker.wid,
                    chunk=chunk_id,
                    attempt=self.attempts[chunk_id],
                )

    # -- the final fallback --------------------------------------------

    def _serial_fallback(self) -> None:
        """Execute every unfinished chunk in-process.

        Process-level faults (crash/hang/slow) model *worker* failures
        and cannot apply here — the supervisor's own process is the
        reliability anchor, like the simulator's master — but injected
        transient chunk errors still fire, so attempt accounting stays
        uniform and a poison chunk is still quarantined, never looped
        forever.
        """
        data_of = make_data_source(self.graph)
        context = (
            kernels.use_backend(self.backend) if self.backend else nullcontext()
        )
        with context:
            for chunk_id in range(len(self.chunks)):
                if self._done(chunk_id):
                    continue
                self._count("fallback_chunks")
                while not self._done(chunk_id):
                    attempt = self.attempts[chunk_id]
                    failure = (
                        self.fault_plan.chunk_failure(chunk_id, attempt)
                        if self.fault_plan is not None
                        else None
                    )
                    if failure is None:
                        try:
                            self.outcomes[chunk_id] = execute_chunk(
                                self.app,
                                self.graph,
                                chunk_id,
                                self.chunks[chunk_id],
                                data_of,
                            )
                            break
                        except Exception:
                            failure = traceback.format_exc()
                    self._record_failure(
                        chunk_id,
                        f"attempt {attempt} (serial fallback): {failure}",
                        requeue=False,
                    )

    # -- teardown ------------------------------------------------------

    def _shutdown(self, graceful: bool) -> None:
        """Terminate/stop and join every child, then drain the queues.

        ``graceful=True`` (normal completion) lets idle workers exit
        via the stop command; ``graceful=False`` (interrupt or internal
        error) terminates immediately.  Either way no child survives
        this method and every queue feeder thread is released — the
        no-orphans / no-leaked-semaphores contract the shutdown-hygiene
        tests assert.
        """
        for worker in self.workers.values():
            worker.stopping = True
            if graceful:
                try:
                    worker.feed.put(("stop",))
                except Exception:
                    pass
        deadline = time.monotonic() + (_STOP_GRACE if graceful else 0.0)
        for worker in list(self.workers.values()):
            remaining = max(0.0, deadline - time.monotonic())
            worker.proc.join(remaining)
            if worker.proc.is_alive():
                self._terminate(worker.proc)
        for proc in self.exited:
            proc.join(1.0)
        # drain whatever the children left behind so the queue feeder
        # threads release their pipes (a killed writer can leave a
        # torn pickle — swallow it, the run is already decided)
        while True:
            try:
                self.out_queue.get_nowait()
            except queue_mod.Empty:
                break
            except Exception:
                break
        for worker in self.workers.values():
            worker.feed.close()
            worker.feed.cancel_join_thread()
        self.out_queue.close()
        self.out_queue.cancel_join_thread()
        self.workers.clear()
