"""Attribute handling for attributed graphs.

Community detection and graph clustering (§8.1) operate on graphs whose
vertices carry attribute lists: interest tags in Tencent, publication
venues in DBLP, and — for the synthetic runs — 5-dimensional uniform
attribute vectors like the paper's footnote 7 describes
(``{A1, B5, C10, D6, E4}``).  We encode an attribute as an integer
``dimension * base + value`` so lists stay cheap tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Sequence, Tuple

from repro import kernels

#: Encoding base: attribute integer = dimension * BASE + value.
DIMENSION_BASE = 1000


@dataclass(frozen=True)
class AttributeSpace:
    """Describes a synthetic attribute universe.

    ``dimensions`` named dimensions, each taking integer values in
    ``[1, values_per_dimension]`` — the paper's synthetic attributes use
    5 dimensions ([A-E]) with values [1-10].
    """

    dimensions: int = 5
    values_per_dimension: int = 10

    def encode(self, dimension: int, value: int) -> int:
        """Pack (dimension, value) into one attribute integer."""
        if not 0 <= dimension < self.dimensions:
            raise ValueError(f"dimension {dimension} out of range")
        if not 1 <= value <= self.values_per_dimension:
            raise ValueError(f"value {value} out of range")
        return dimension * DIMENSION_BASE + value

    def decode(self, attr: int) -> Tuple[int, int]:
        """Unpack an attribute integer into (dimension, value)."""
        return divmod(attr, DIMENSION_BASE)

    def describe(self, attr: int) -> str:
        """Human form, e.g. ``A7`` for dimension 0 value 7."""
        dim, value = self.decode(attr)
        return f"{chr(ord('A') + dim)}{value}"

    @property
    def total_values(self) -> int:
        """Size of the whole attribute universe (|Attr| in Table 2)."""
        return self.dimensions * self.values_per_dimension


def jaccard_similarity(a: Sequence[int], b: Sequence[int]) -> float:
    """Jaccard similarity of two attribute lists (CD's filter condition)."""
    return jaccard_sorted(kernels.unique_sorted(a), kernels.unique_sorted(b))


def jaccard_sorted(ia: Any, ib: Any) -> float:
    """Jaccard over pre-converted kernel array handles.

    Kernels that compare one fixed attribute list against many
    candidates convert each side once (:func:`repro.kernels.unique_sorted`)
    and call this, skipping the per-comparison set/array rebuild.
    """
    la, lb = len(ia), len(ib)
    if not la and not lb:
        return 1.0
    inter = kernels.intersect_count(ia, ib)
    union = la + lb - inter
    if union == 0:
        return 1.0
    return inter / union


def overlap_count(a: Sequence[int], b: Sequence[int]) -> int:
    """Number of shared attribute values."""
    return kernels.intersect_count(kernels.unique_sorted(a), kernels.unique_sorted(b))


#: Denominator weight of an attribute outside the focus set.  FocusCO
#: learns a full weight vector where unfocused attributes get small but
#: non-zero mass; without it, two vertices sharing one low-weight focus
#: attribute (and nothing else weighted) would score a perfect 1.0,
#: which lets clusters grow through attribute noise.
DEFAULT_UNFOCUSED_WEIGHT = 0.03


def weighted_similarity(
    a: Sequence[int],
    b: Sequence[int],
    weights: Dict[int, float],
    default_weight: float = DEFAULT_UNFOCUSED_WEIGHT,
) -> float:
    """Attribute similarity weighted per attribute value.

    FocusCO-style clustering (§8.1, [21]) learns a weight per attribute
    from user exemplars, then measures similarity as the weighted share
    of matching attributes.  Unfocused attributes score nothing but
    still dilute the denominator by ``default_weight`` each, so
    similarity is driven by the focus attributes while attribute noise
    dampens coincidental low-weight matches.
    """
    return weighted_similarity_sorted(
        kernels.unique_sorted(a), kernels.unique_sorted(b), weights, default_weight
    )


def weighted_similarity_sorted(
    ia: Any,
    ib: Any,
    weights: Dict[int, float],
    default_weight: float = DEFAULT_UNFOCUSED_WEIGHT,
) -> float:
    """:func:`weighted_similarity` over pre-converted kernel handles.

    Both sums run in ascending attribute order — kernel intersections
    and unions are sorted — because float addition is not associative
    and an order-dependent sum would make similarity asymmetric.
    """
    score = sum(
        weights.get(attr, 0.0) for attr in kernels.tolist(kernels.intersect(ia, ib))
    )
    norm = sum(
        weights.get(attr, default_weight)
        for attr in kernels.tolist(kernels.union(ia, ib))
    )
    if norm == 0.0:
        return 0.0
    return score / norm


def infer_attribute_weights(
    exemplars: Iterable[Sequence[int]],
) -> Dict[int, float]:
    """Learn attribute weights from exemplar vertices (FocusCO step 1).

    Attributes shared by many exemplar pairs get high weight; attributes
    appearing in few exemplars get low weight.  Weight of attribute
    ``x`` = (fraction of exemplars containing ``x``) squared, which
    emphasises consensus attributes, normalised to sum to 1.
    """
    exemplar_list = [set(e) for e in exemplars]
    if not exemplar_list:
        return {}
    counts: Dict[int, int] = {}
    for attrs in exemplar_list:
        for attr in attrs:
            counts[attr] = counts.get(attr, 0) + 1
    n = len(exemplar_list)
    raw = {attr: (c / n) ** 2 for attr, c in counts.items()}
    total = sum(raw.values())
    if total == 0.0:
        return {}
    return {attr: w / total for attr, w in raw.items()}
