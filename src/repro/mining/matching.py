"""Graph-matching kernel (the paper's GM application).

Counts embeddings of a :class:`~repro.mining.patterns.TreePattern` in a
labelled data graph: injective maps from pattern nodes to data vertices
preserving labels and parent edges.  The computation is organised
level-by-level exactly as the paper's Figure 1 walk-through — round
``r`` matches the pattern's level-``r`` nodes against the candidates
generated in round ``r-1`` — so the same kernel drives the per-round
G-Miner task and the sequential baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.mining.cost import WorkMeter
from repro.mining.patterns import PatternNode, TreePattern

#: A partial embedding: per pattern level, the tuple of data-vertex
#: images for that level's pattern nodes (level 0 = the root image).
PartialEmbedding = Tuple[Tuple[int, ...], ...]


def _extend_one(
    partial: PartialEmbedding,
    level_nodes: Sequence[PatternNode],
    labels: Mapping[int, Optional[str]],
    adjacency: Mapping[int, Iterable[int]],
    meter: WorkMeter,
) -> List[PartialEmbedding]:
    """All extensions of ``partial`` with images for ``level_nodes``."""
    parent_images = partial[-1]
    used: Set[int] = set()
    for level in partial:
        used.update(level)
    results: List[PartialEmbedding] = []
    assignment: List[int] = []

    def assign(i: int) -> None:
        if i == len(level_nodes):
            results.append(partial + (tuple(assignment),))
            return
        node = level_nodes[i]
        parent_image = parent_images[node.parent]
        cands = adjacency.get(parent_image, ())
        if not isinstance(cands, (tuple, list)):
            cands = tuple(cands)
        # one unit per candidate probed, charged in bulk; the label and
        # injectivity filters stay scalar — labels are arbitrary
        # strings, outside the sorted-integer kernel domain
        meter.charge(len(cands))
        for candidate in cands:
            if candidate in used or candidate in assignment:
                continue
            if labels.get(candidate) != node.label:
                continue
            assignment.append(candidate)
            assign(i + 1)
            assignment.pop()

    assign(0)
    return results


def match_level(
    partials: Iterable[PartialEmbedding],
    level_nodes: Sequence[PatternNode],
    labels: Mapping[int, Optional[str]],
    adjacency: Mapping[int, Iterable[int]],
    meter: WorkMeter,
) -> List[PartialEmbedding]:
    """Advance every partial embedding by one pattern level."""
    out: List[PartialEmbedding] = []
    for partial in partials:
        out.extend(_extend_one(partial, level_nodes, labels, adjacency, meter))
    return out


def frontier_vertices(
    partials: Iterable[PartialEmbedding],
    pattern: TreePattern,
    next_round: int,
) -> Set[int]:
    """Data vertices whose neighbourhoods the next round will expand.

    These are the images of the level-``next_round - 1`` pattern nodes
    that are parents of some level-``next_round`` node — the vertices
    whose Γ must be pulled, i.e. the task's next ``candidates`` source.
    """
    if next_round > pattern.depth:
        return set()
    parent_indexes = {node.parent for node in pattern.level_nodes(next_round)}
    frontier: Set[int] = set()
    for partial in partials:
        last = partial[-1]
        for idx in parent_indexes:
            frontier.add(last[idx])
    return frontier


def count_embeddings_from_seed(
    seed: int,
    pattern: TreePattern,
    labels: Mapping[int, Optional[str]],
    adjacency: Mapping[int, Iterable[int]],
    meter: WorkMeter,
) -> int:
    """Count all embeddings whose root maps to ``seed``.

    Requires full adjacency access; the sequential baseline and tests
    use this directly, while the G-Miner task performs the same rounds
    with pulled data.
    """
    meter.charge()
    if labels.get(seed) != pattern.root_label:
        return 0
    partials: List[PartialEmbedding] = [((seed,),)]
    for round_index in range(1, pattern.depth + 1):
        partials = match_level(
            partials, pattern.level_nodes(round_index), labels, adjacency, meter
        )
        if not partials:
            return 0
    return len(partials)


def graph_matching_sequential(
    pattern: TreePattern,
    labels: Mapping[int, Optional[str]],
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
) -> int:
    """Total embedding count over all seeds (single-thread kernel)."""
    total = 0
    for seed in sorted(adjacency):
        total += count_embeddings_from_seed(seed, pattern, labels, adjacency, meter)
    return total


def estimate_partials_size(partials: Sequence[PartialEmbedding]) -> int:
    """Byte estimate of a partial-embedding set (task memory model)."""
    if not partials:
        return 0
    per_vertex = 8
    vertices = sum(sum(len(level) for level in p) for p in partials)
    return 32 * len(partials) + per_vertex * vertices
