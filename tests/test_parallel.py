"""Tests for repro.parallel: pool fan-out, build cache, API shims."""

import pytest

from repro.bench import run
from repro.bench.runner import run_gminer, run_system
from repro.graph.datasets import clear_dataset_cache, load_dataset
from repro.parallel import (
    BuildCache,
    ParallelRunner,
    RunRequest,
    content_key,
    current_runner,
    parallel_context,
    set_build_cache,
    source_fingerprint,
)
from repro.core.config import GMinerConfig
from repro.sim.cluster import ClusterSpec

FAST_SPEC = ClusterSpec(num_nodes=4, cores_per_node=2)

FAST_CELLS = [
    RunRequest.make("tc", "skitter-s", spec=FAST_SPEC),
    RunRequest.make("mcf", "skitter-s", spec=FAST_SPEC),
    RunRequest.make("tc", "skitter-s", system="gthinker", spec=FAST_SPEC),
]


@pytest.fixture(autouse=True)
def _no_ambient_cache():
    """Each test starts and ends with no process-wide build cache."""
    previous = set_build_cache(None)
    yield
    set_build_cache(previous)


class TestParallelEquivalence:
    def test_pool_results_identical_to_serial(self):
        serial = ParallelRunner(workers=1).map(FAST_CELLS)
        pooled = ParallelRunner(workers=4).map(FAST_CELLS)
        assert len(serial) == len(pooled) == len(FAST_CELLS)
        for s, p in zip(serial, pooled):
            assert s.to_dict() == p.to_dict()

    def test_run_entrypoint_workers_identical(self):
        r1 = run(workload="tc", dataset="skitter-s", spec=FAST_SPEC, workers=1)
        r4 = run(workload="tc", dataset="skitter-s", spec=FAST_SPEC, workers=4)
        assert r1.to_dict() == r4.to_dict()

    def test_results_come_back_in_request_order(self):
        results = ParallelRunner(workers=4).map(FAST_CELLS)
        # tc finds triangles, mcf finds cliques: distinguishable outputs
        assert results[0].app_name == results[2].app_name == "tc"
        assert results[1].app_name == "mcf"
        assert results[0].to_dict() != results[1].to_dict()

    def test_outcomes_and_footer(self):
        runner = ParallelRunner(workers=1)
        runner.map(FAST_CELLS[:2])
        assert len(runner.outcomes) == 2
        assert all(o.wall_seconds > 0 for o in runner.outcomes)
        footer = runner.footer_summary()
        assert "2 cells" in footer and "workers=1" in footer

    def test_footer_none_without_cells(self):
        assert ParallelRunner(workers=1).footer_summary() is None

    def test_ambient_runner_defaults_to_serial(self):
        runner = current_runner()
        assert runner.workers == 1
        with parallel_context(workers=3) as installed:
            assert current_runner() is installed
            assert current_runner().workers == 3
        assert current_runner() is not installed


class TestBuildCache:
    def test_miss_then_hit(self, tmp_path):
        cache = BuildCache(directory=str(tmp_path))
        calls = []
        build = lambda: calls.append(1) or "value"
        assert cache.lookup("thing", {"x": 1}, build) == "value"
        assert cache.lookup("thing", {"x": 1}, build) == "value"
        assert calls == [1]
        assert cache.stats()["hits"] == 1 and cache.stats()["misses"] == 1

    def test_different_params_miss(self, tmp_path):
        cache = BuildCache(directory=str(tmp_path))
        cache.lookup("thing", {"x": 1}, lambda: "a")
        cache.lookup("thing", {"x": 2}, lambda: "b")
        assert cache.stats()["misses"] == 2

    def test_disk_persistence_across_instances(self, tmp_path):
        first = BuildCache(directory=str(tmp_path))
        first.lookup("thing", {"x": 1}, lambda: {"built": True})
        fresh = BuildCache(directory=str(tmp_path))
        value = fresh.lookup("thing", {"x": 1}, lambda: pytest.fail("rebuilt"))
        assert value == {"built": True}
        assert fresh.stats()["disk_hits"] == 1

    def test_no_persist_writes_nothing(self, tmp_path):
        cache = BuildCache(directory=str(tmp_path / "sub"), persist=False)
        cache.lookup("thing", {"x": 1}, lambda: "v")
        assert not (tmp_path / "sub").exists()

    def test_content_key_stable_and_sensitive(self):
        assert content_key("k", {"a": 1, "b": 2}) == content_key("k", {"b": 2, "a": 1})
        assert content_key("k", {"a": 1}) != content_key("k", {"a": 2})
        assert content_key("k", {"a": 1}) != content_key("other", {"a": 1})

    def test_source_fingerprint_differs_across_functions(self):
        def f():
            return 1

        def g():
            return 2

        assert source_fingerprint(f) != source_fingerprint(g)

    def test_dataset_builds_cached_and_seed_sensitive(self, tmp_path):
        cache = BuildCache(directory=str(tmp_path))
        set_build_cache(cache)
        try:
            clear_dataset_cache()
            load_dataset("skitter-s", labeled=True, label_seed=1)
            baseline = cache.stats()["misses"]
            # same seed again: decorated build is a hit, not a rebuild
            load_dataset("skitter-s", labeled=True, label_seed=1)
            assert cache.stats()["misses"] == baseline
            # changing the generator seed invalidates: fresh miss
            load_dataset("skitter-s", labeled=True, label_seed=2)
            assert cache.stats()["misses"] == baseline + 1
        finally:
            set_build_cache(None)
            clear_dataset_cache()

    def test_partition_assignment_cached(self, tmp_path):
        cache = BuildCache(directory=str(tmp_path))
        runner = ParallelRunner(workers=1, cache=cache)
        request = RunRequest.make("tc", "skitter-s", spec=FAST_SPEC)
        first = runner.map([request])[0]
        before = cache.stats()["hits"]
        second = runner.map([request])[0]
        assert cache.stats()["hits"] > before
        assert first.to_dict() == second.to_dict()
        assert runner.cache_stats()["hits"] >= 1

    def test_cached_run_identical_to_uncached(self, tmp_path):
        request = RunRequest.make("mcf", "skitter-s", spec=FAST_SPEC)
        uncached = ParallelRunner(workers=1).map([request])[0]
        cache = BuildCache(directory=str(tmp_path))
        warm = ParallelRunner(workers=1, cache=cache)
        warm.map([request])  # populate
        cached = warm.map([request])[0]
        assert uncached.to_dict() == cached.to_dict()


class TestRunAPI:
    def test_run_is_keyword_only(self):
        with pytest.raises(TypeError):
            run("tc", "skitter-s")  # noqa: the point is positional args fail

    def test_run_unknown_system_raises(self):
        with pytest.raises(ValueError, match="unknown system"):
            run(system="spark", workload="tc", dataset="skitter-s")

    def test_run_unsupported_workload_returns_none(self):
        assert run(system="giraph", workload="gc", dataset="tencent-s") is None

    def test_run_applies_config_overrides(self):
        r = run(
            workload="tc", dataset="skitter-s", spec=FAST_SPEC, partitioner="hash"
        )
        assert r.ok

    def test_run_gminer_tombstone_raises(self):
        with pytest.raises(TypeError, match="repro.bench.run"):
            run_gminer("tc", "skitter-s", spec=FAST_SPEC)

    def test_run_system_tombstone_raises(self):
        with pytest.raises(TypeError, match="repro.bench.run"):
            run_system("gthinker", "tc", "skitter-s", spec=FAST_SPEC)

    def test_shims_not_exported_from_bench(self):
        import repro.bench

        assert not hasattr(repro.bench, "run_gminer")
        assert not hasattr(repro.bench, "run_system")

    def test_job_result_to_dict_tombstone_raises(self):
        from repro.bench.export import job_result_to_dict

        result = run(workload="tc", dataset="skitter-s", spec=FAST_SPEC)
        with pytest.raises(TypeError, match="to_dict"):
            job_result_to_dict(result)


class TestConfigFailFast:
    def test_bad_partitioner_fails_at_construction(self):
        with pytest.raises(ValueError, match="partitioner"):
            GMinerConfig(partitioner="metis")

    def test_bad_cache_policy_fails_at_construction(self):
        with pytest.raises(ValueError, match="cache policy"):
            GMinerConfig(cache_policy="arc")

    def test_nonpositive_checkpoint_interval_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_interval"):
            GMinerConfig(checkpoint_interval=0)

    def test_nonpositive_time_limit_rejected(self):
        with pytest.raises(ValueError, match="time_limit"):
            GMinerConfig(time_limit=-1.0)

    def test_fields_are_keyword_only(self):
        with pytest.raises(TypeError):
            GMinerConfig(ClusterSpec())  # positional cluster no longer allowed

    def test_replace_rejects_unknown_field(self):
        with pytest.raises(ValueError, match="unknown GMinerConfig field"):
            GMinerConfig().replace(partitoner="bdg")  # typo'd knob
