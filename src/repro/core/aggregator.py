"""Global aggregation (paper §5.1, Listing 1's ``Aggregator``).

Workers push local values; the master merges them periodically and
broadcasts the global aggregate back, giving every worker a slightly
delayed global view.  The flagship use is MCF's global
currently-maximum clique size, whose broadcast is what produces the
paper's superlinear pruning speedup (§3).
"""

from __future__ import annotations

from typing import Any, Generic, Iterable, List, Optional, TypeVar

T = TypeVar("T")


class Aggregator(Generic[T]):
    """Base aggregator: subclass and implement :meth:`merge`.

    ``initial`` is the identity value.  ``agg`` folds one offered value
    into a running partial (the paper's ``agg(context)``).
    """

    def initial(self) -> T:
        raise NotImplementedError

    def merge(self, a: T, b: T) -> T:
        raise NotImplementedError

    def agg(self, partial: T, value: T) -> T:
        return self.merge(partial, value)

    def merge_all(self, values: Iterable[T]) -> T:
        out = self.initial()
        for value in values:
            out = self.merge(out, value)
        return out


class MaxAggregator(Aggregator[float]):
    """Global maximum — MCF's clique bound."""

    def initial(self) -> float:
        return 0

    def merge(self, a: float, b: float) -> float:
        return a if a >= b else b


class SumAggregator(Aggregator[float]):
    """Global sum — e.g. total matched-pattern count."""

    def initial(self) -> float:
        return 0

    def merge(self, a: float, b: float) -> float:
        return a + b


class AggregatorState:
    """Per-worker aggregation endpoint.

    Tracks the local partial (folded from task offers) and the last
    global value broadcast by the master.
    """

    def __init__(self, aggregator: Aggregator) -> None:
        self.aggregator = aggregator
        self.local_partial = aggregator.initial()
        self.global_value = aggregator.initial()

    def offer(self, value: Any) -> None:
        self.local_partial = self.aggregator.agg(self.local_partial, value)

    def receive_global(self, value: Any) -> None:
        self.global_value = self.aggregator.merge(self.global_value, value)

    @property
    def best_known(self) -> Any:
        """What tasks should prune with: max of local and global views."""
        return self.aggregator.merge(self.local_partial, self.global_value)
