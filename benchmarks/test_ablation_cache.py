"""Ablation A — RCV cache vs LRU/FIFO (paper §7's design discussion).

Expected shape: only the reference-counting policy guarantees a ready
task's vertices survive until execution; LRU/FIFO evict them and force
re-pulls."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_ablation_cache(benchmark):
    report = run_experiment(benchmark, experiments.ablation_cache)
    for app in ("gm", "mcf"):
        rcv = report.data[f"{app} rcv"]
        worst = max(
            report.data[f"{app} lru"].stats["re_pulls"],
            report.data[f"{app} fifo"].stats["re_pulls"],
        )
        assert rcv.stats["re_pulls"] <= max(10, 0.05 * worst), app
