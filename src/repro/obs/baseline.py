"""Generate the observability bench baseline (``results/BENCH_obs.json``).

Runs a small, fast G-Miner cell matrix with observability on and
records the tracked quantities the regression gate
(:mod:`repro.obs.compare`) checks: simulated makespan, message count,
network bytes, tasks created and total work units — the simulator-side
numbers every paper table derives from.

Also doubles as the observability smoke harness: ``--trace-out`` /
``--metrics-out`` export the Chrome trace and metrics snapshot of the
same runs (the CI artifacts)::

    python -m repro.obs.baseline -o results/BENCH_obs.json
    python -m repro.obs.baseline -o new.json --trace-out trace.json
    python -m repro.obs.compare results/BENCH_obs.json new.json
"""

from __future__ import annotations

import argparse
from typing import Any, Dict, Iterable, Sequence, Tuple

from repro.obs.compare import BENCH_SCHEMA
from repro.obs.env import environment_metadata
from repro.obs.session import ObsCollector, collecting

#: The gate's cell matrix: small enough to finish in seconds, varied
#: enough (three workloads) to catch pipeline-wide drift.
DEFAULT_CELLS: Tuple[Tuple[str, str], ...] = (
    ("tc", "skitter-s"),
    ("mcf", "skitter-s"),
    ("gm", "skitter-s"),
)

#: Cluster shape for the gate cells (mirrors the golden-value tests).
BASELINE_NODES = 4
BASELINE_CORES = 4


def collect(
    cells: Sequence[Tuple[str, str]] = DEFAULT_CELLS,
    collector: ObsCollector = None,
) -> Dict[str, Any]:
    """Run the cell matrix and return the baseline document.

    Imports the bench layer lazily so ``repro.obs`` stays importable
    without dragging the full system in.
    """
    from repro.bench.runner import run
    from repro.sim.cluster import ClusterSpec

    spec = ClusterSpec(num_nodes=BASELINE_NODES, cores_per_node=BASELINE_CORES)
    own_collector = collector if collector is not None else ObsCollector()
    cell_records: Dict[str, Dict[str, float]] = {}
    with collecting(own_collector):
        for workload, dataset in cells:
            result = run(
                workload=workload,
                dataset=dataset,
                spec=spec,
                time_limit=None,
                enable_obs=True,
            )
            if not result.ok:
                raise RuntimeError(
                    f"baseline cell {workload}/{dataset} failed: {result.status}"
                )
            gauges = result.obs["metrics"]["gauges"]
            cell_records[f"{workload}/{dataset}"] = {
                "makespan": gauges["job.makespan"],
                "messages": gauges["job.messages"],
                "network_bytes": gauges["job.network_bytes"],
                "tasks_created": gauges["job.tasks_created"],
                "work_units": gauges["job.work_units"],
            }
    return {
        "schema": BENCH_SCHEMA,
        "spec": {"num_nodes": BASELINE_NODES, "cores_per_node": BASELINE_CORES},
        # attribution only: the gate compares cells, never env keys
        "env": environment_metadata(),
        "cells": cell_records,
        "_collector": own_collector if collector is None else None,
    }


def write_baseline(path: str, cells: Iterable[Tuple[str, str]] = DEFAULT_CELLS):
    """Run the matrix and write the baseline; returns (path, collector)."""
    from repro.obs.exporters import _write, dumps_deterministic

    document = collect(tuple(cells))
    obs_collector = document.pop("_collector")
    _write(path, dumps_deterministic(document))
    return path, obs_collector


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.baseline",
        description="Regenerate the observability bench baseline.",
    )
    parser.add_argument(
        "-o", "--out", default="results/BENCH_obs.json",
        help="baseline JSON path (default: %(default)s)",
    )
    parser.add_argument(
        "--trace-out", default=None,
        help="also export the runs' Chrome trace_event JSON here",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="also export the runs' metrics snapshot JSON here",
    )
    parser.add_argument(
        "--prometheus-out", default=None,
        help="also export the merged Prometheus text exposition here",
    )
    args = parser.parse_args(argv)
    path, collector = write_baseline(args.out)
    print(f"wrote {path} ({len(DEFAULT_CELLS)} cells)")
    if args.trace_out:
        print(f"wrote {collector.write_chrome_trace(args.trace_out)}")
    if args.metrics_out:
        print(f"wrote {collector.write_metrics_json(args.metrics_out)}")
    if args.prometheus_out:
        print(f"wrote {collector.write_prometheus(args.prometheus_out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
