"""Differential fuzzer: G-Miner vs the sequential oracle vs itself.

``python -m repro.verify.fuzz --iterations 25 --seed 0`` generates
seeded random (graph, workload, cluster-config, failure-plan,
kernel-backend) cases and, for each one:

1. runs the distributed G-Miner job with invariant checking armed and
   the first kernel backend;
2. runs it again with a second kernel backend — results *and* metered
   quantities (simulated makespan, network bytes, per-run stats) must
   match exactly, because backends are value- and work-unit-identical;
3. runs the single-thread baseline kernel as the ground-truth oracle —
   normalised results must agree.

With ``--plan-axis`` every case additionally exercises the pattern
plan compiler (:mod:`repro.plans`): the tailed-triangle motif — and,
when the case's workload has a pattern-vocabulary equivalent (tc, gm),
that query too — is compiled and run distributed under *both* kernel
backends; the runs must agree with each other on the full fingerprint,
with the brute-force embedding oracle on the value, and with the
legacy grower's result where one exists.

With ``--native-axis`` every case also runs under the native
multiprocess engine (:mod:`repro.native`) on its fault-free twin
(native mode refuses chaos schedules): worker counts 1 and 2 — under
*different* kernel backends — must agree on the full result
fingerprint, and the native run must match the simulated one per
DESIGN.md's equivalence contract (value/aggregated always; raw value,
``num_results``, ``tasks_created`` for every schedule-independent
workload; ``work_units`` additionally when the simulated cache never
re-pulled).  A compiled tailed-triangle plan rides the same checks.

With ``--native-chaos`` every case additionally runs the native engine
under a seeded *survivable* :class:`~repro.native.NativeFaultPlan`
(worker crashes, hangs, stragglers, transient chunk errors — derived
deterministically from the case seed, bounded so the supervisor's
retry/respawn budgets always cover it): the chaotic run must match the
fault-free native run on the **full** result fingerprint (value,
``num_results``, every stats entry — the determinism-under-crashes
contract), must not raise, and the fault-free native leg must match
the simulator per the equivalence contract.

Any mismatch (or :class:`~repro.verify.InvariantViolation`) is shrunk
by delta-debugging the vertex set (induced subgraphs) and simplifying
the configuration, then persisted as a replayable JSON repro
(``repro.verify.fuzz/1``).  Replay one with
``python -m repro.verify.fuzz --replay <repro.json>``.

Everything is derived from ``--seed``, so a failing case reproduces
bit-for-bit from its case seed alone — the JSON exists so the *shrunk*
case survives even after the generator changes.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro import kernels
from repro.apps import (
    CommunityDetectionApp,
    GraphClusteringApp,
    GraphMatchingApp,
    MaxCliqueApp,
    TriangleCountingApp,
)
from repro.baselines.single_thread import SingleThreadSystem
from repro.core.config import GMinerConfig
from repro.core.job import GMinerJob, JobStatus
from repro.graph.generators import (
    preferential_attachment_graph,
    random_attributes,
    random_labels,
)
from repro.graph.graph import Graph
from repro.mining.clustering import FocusParams
from repro.mining.community import CommunityParams
from repro.native import NativeChunkError, NativeFaultPlan
from repro.mining.patterns import PAPER_PATTERN
from repro.plans import (
    PatternQuery,
    PlanApp,
    compile_pattern,
    count_embeddings_bruteforce,
    motif,
)
from repro.sim.cluster import ClusterSpec
from repro.sim.failures import FailurePlan
from repro.verify.invariants import InvariantViolation
from repro.verify.metamorphic import normalize_value

SCHEMA = "repro.verify.fuzz/1"
#: tc dominates (cheapest, sharpest oracle); the rest rotate through.
WORKLOADS = ("tc", "tc", "mcf", "gm", "cd", "gc")
LABEL_ALPHABET = ("a", "b", "c", "d", "e")


# ----------------------------------------------------------------------
# case generation and (de)serialisation
# ----------------------------------------------------------------------


def second_backend() -> str:
    """The backend to differentiate against "reference"."""
    try:
        import numpy  # noqa: F401

        return "numpy"
    except ImportError:
        return "bitset"


def generate_case(seed: int) -> Dict[str, Any]:
    """One seeded random (graph, workload, config, plan, backends) tuple."""
    rng = random.Random(seed)
    workload = rng.choice(WORKLOADS)
    n = rng.randrange(16, 96)
    graph = preferential_attachment_graph(
        n=n,
        m=rng.randrange(2, 6),
        triangle_prob=rng.uniform(0.3, 0.8),
        seed=rng.randrange(1 << 30),
    )
    labels: Dict[int, str] = {}
    attrs: Dict[int, List[int]] = {}
    if workload == "gm":
        random_labels(graph, alphabet=LABEL_ALPHABET, seed=rng.randrange(1 << 30))
        labels = {v: graph.label(v) for v in graph.vertices()}
    if workload in ("cd", "gc"):
        random_attributes(graph, seed=rng.randrange(1 << 30))
        attrs = {v: list(graph.attributes(v)) for v in graph.vertices()}
    config: Dict[str, Any] = {
        "partitioner": rng.choice(["bdg", "hash"]),
        "cache_policy": rng.choice(["rcv", "rcv", "lru", "fifo"]),
        "enable_lsh": rng.random() < 0.8,
        "enable_stealing": rng.random() < 0.8,
    }
    if rng.random() < 0.3:
        config["cache_capacity_bytes"] = rng.choice([2048, 8192])
    if rng.random() < 0.3:
        config["store_block_tasks"] = rng.choice([2, 8])
        config["task_buffer_batch"] = 2
    plan: Optional[Dict[str, Any]] = None
    num_nodes = rng.randrange(2, 5)
    if rng.random() < 0.3:
        config["checkpoint_interval"] = 0.02
        plan = {"seed": rng.randrange(1 << 30), "kills": [], "lossy": []}
        if rng.random() < 0.7:
            plan["kills"].append(
                [rng.randrange(num_nodes), rng.uniform(0.01, 0.08), 0.02]
            )
        if rng.random() < 0.5:
            plan["lossy"].append([rng.uniform(0.02, 0.15), 0.0, 0.2])
    return {
        "schema": SCHEMA,
        "seed": seed,
        "workload": workload,
        "vertices": sorted(graph.vertices()),
        "edges": [
            [u, v] for u in sorted(graph.vertices())
            for v in graph.neighbors(u) if u < v
        ],
        "labels": {str(k): v for k, v in labels.items()},
        "attributes": {str(k): v for k, v in attrs.items()},
        "num_nodes": num_nodes,
        "cores_per_node": rng.choice([1, 2, 4]),
        "config": config,
        "failure_plan": plan,
        "backends": ["reference", second_backend()],
    }


def graph_from_case(case: Dict[str, Any]) -> Graph:
    graph = Graph.from_edges(
        [tuple(e) for e in case["edges"]], vertices=case["vertices"]
    )
    if case.get("labels"):
        graph.set_labels({int(k): v for k, v in case["labels"].items()})
    if case.get("attributes"):
        graph.set_all_attributes(
            {int(k): tuple(v) for k, v in case["attributes"].items()}
        )
    return graph


def plan_from_case(case: Dict[str, Any]) -> Optional[FailurePlan]:
    spec = case.get("failure_plan")
    if spec is None:
        return None
    plan = FailurePlan(seed=spec["seed"])
    for node_id, at_time, recovery in spec["kills"]:
        plan.kill(node_id, at_time, recovery_delay=recovery)
    for rate, start, end in spec["lossy"]:
        plan.lossy(rate, start=start, end=end)
    return plan


def _build_app(case: Dict[str, Any], graph: Graph):
    workload = case["workload"]
    if workload == "tc":
        return TriangleCountingApp()
    if workload == "mcf":
        return MaxCliqueApp()
    if workload == "gm":
        return GraphMatchingApp()
    if workload == "cd":
        return CommunityDetectionApp()
    if workload == "gc":
        exemplars = _exemplars(graph)
        return GraphClusteringApp([graph.attributes(e) for e in exemplars])
    raise ValueError(f"unknown workload {workload!r}")


def _exemplars(graph: Graph) -> List[int]:
    return sorted(graph.vertices())[:3]


# ----------------------------------------------------------------------
# differential execution
# ----------------------------------------------------------------------


def run_distributed(case: Dict[str, Any], backend: str):
    """One G-Miner run with invariant checking armed; returns JobResult."""
    graph = graph_from_case(case)
    config = GMinerConfig(
        cluster=ClusterSpec(
            num_nodes=case["num_nodes"], cores_per_node=case["cores_per_node"]
        ),
        verify=True,
        kernel_backend=backend,
        **case["config"],
    )
    job = GMinerJob(_build_app(case, graph), graph, config, plan_from_case(case))
    return job.run()


def run_oracle(case: Dict[str, Any]):
    """The single-thread ground truth for this case's workload."""
    graph = graph_from_case(case)
    system = SingleThreadSystem()
    return system.run(
        case["workload"],
        graph,
        community_params=CommunityParams(),
        focus_params=FocusParams(),
        exemplars=_exemplars(graph),
    )


def _fingerprint(result) -> Dict[str, Any]:
    """The quantities two kernel backends must agree on exactly.

    Backends are value- and work-unit-identical, so the entire
    simulated timeline — not just the answer — must match.
    """
    return {
        "status": result.status.value,
        "value": result.value,
        "num_results": result.num_results,
        "total_seconds": result.total_seconds,
        "network_bytes": result.network_bytes,
        "stats": dict(sorted(result.stats.items())),
    }


def check_case(
    case: Dict[str, Any],
    plan_axis: Optional[bool] = None,
    native_axis: Optional[bool] = None,
    native_chaos: Optional[bool] = None,
) -> List[str]:
    """Run the differential triad; return mismatch descriptions.

    ``plan_axis`` arms the plan-vs-legacy axis, ``native_axis`` the
    sim-vs-native one, ``native_chaos`` the native-under-faults one;
    ``None`` (the default) reads the case's own
    ``"plan_axis"``/``"native_axis"``/``"native_chaos"`` keys, so
    persisted repros replay — and shrink — with their axes armed.
    """
    if plan_axis is None:
        plan_axis = bool(case.get("plan_axis", False))
    if native_axis is None:
        native_axis = bool(case.get("native_axis", False))
    if native_chaos is None:
        native_chaos = bool(case.get("native_chaos", False))
    workload = case["workload"]
    backend_a, backend_b = case["backends"]
    try:
        result_a = run_distributed(case, backend_a)
    except InvariantViolation as violation:
        return [f"invariant violation under backend {backend_a}: {violation}"]
    mismatches: List[str] = []
    if result_a.status is not JobStatus.OK:
        return [f"distributed run did not complete: {result_a.status.value}"]
    try:
        result_b = run_distributed(case, backend_b)
    except InvariantViolation as violation:
        return [f"invariant violation under backend {backend_b}: {violation}"]
    fp_a, fp_b = _fingerprint(result_a), _fingerprint(result_b)
    if fp_a != fp_b:
        diff = {
            key: (fp_a[key], fp_b[key])
            for key in fp_a
            if fp_a[key] != fp_b[key]
        }
        mismatches.append(
            f"backends {backend_a} vs {backend_b} diverged: {diff!r}"
        )
    oracle = run_oracle(case)
    expected = normalize_value(workload, oracle.value)
    observed = normalize_value(workload, result_a.value)
    if observed != expected:
        mismatches.append(
            f"G-Miner vs single-thread oracle on {workload}: "
            f"observed {observed!r}, expected {expected!r}"
        )
    if plan_axis:
        mismatches.extend(check_plan_axis(case, result_a.value))
    if native_axis:
        mismatches.extend(check_native_axis(case))
    if native_chaos:
        mismatches.extend(check_native_chaos_axis(case))
    return mismatches


# ----------------------------------------------------------------------
# the sim-vs-native axis
# ----------------------------------------------------------------------


def fault_free_case(case: Dict[str, Any]) -> Dict[str, Any]:
    """The case with its chaos schedule stripped.

    Native execution refuses failure plans (by design), so the
    simulated leg of the sim-vs-native comparison must run fault-free
    too — recovered runs re-execute tasks and over-count work.
    """
    pure = dict(case)
    pure["failure_plan"] = None
    pure["config"] = {
        k: v for k, v in case["config"].items() if k != "checkpoint_interval"
    }
    return pure


def run_native_case(case: Dict[str, Any], workers: int, backend: str):
    """One native-engine run of the case's workload."""
    graph = graph_from_case(case)
    # chunk_size 16 so even the fuzzer's small graphs split into
    # enough chunks that workers=2 genuinely exercises the pool
    config = GMinerConfig(
        execution="native",
        native_workers=workers,
        native_chunk_size=16,
        kernel_backend=backend,
    )
    job = GMinerJob(_build_app(case, graph), graph, config)
    return job.run()


def _native_vs_sim(tag: str, sim, native, workload: Optional[str]) -> List[str]:
    """The equivalence-contract comparison for one sim/native pair.

    ``workload=None`` means a compiled plan (schedule-independent by
    construction); ``"mcf"`` is the one schedule-*dependent* workload —
    its branch-and-bound pruning feeds on the evolving global bound, so
    only the answer and the aggregated bound are required to agree.
    """
    mismatches: List[str] = []
    if workload is not None:
        sim_value = normalize_value(workload, sim.value)
        native_value = normalize_value(workload, native.value)
    else:
        sim_value, native_value = sim.value, native.value
    if sim_value != native_value:
        mismatches.append(
            f"{tag}: sim value {sim_value!r} != native value {native_value!r}"
        )
    if sim.aggregated != native.aggregated:
        mismatches.append(
            f"{tag}: sim aggregated {sim.aggregated!r} != "
            f"native aggregated {native.aggregated!r}"
        )
    if workload == "mcf":
        return mismatches
    if sim.num_results != native.num_results:
        mismatches.append(
            f"{tag}: sim num_results {sim.num_results} != "
            f"native {native.num_results}"
        )
    if sim.stats.get("tasks_created") != native.stats.get("tasks_created"):
        mismatches.append(
            f"{tag}: sim tasks_created {sim.stats.get('tasks_created')!r} != "
            f"native {native.stats.get('tasks_created')!r}"
        )
    # each simulated cache re-pull charges one extra work unit the
    # native engine (full graph access, no cache) can never incur
    if sim.stats.get("re_pulls", 0) == 0 and (
        sim.stats.get("work_units") != native.stats.get("work_units")
    ):
        mismatches.append(
            f"{tag}: sim work_units {sim.stats.get('work_units')!r} != "
            f"native {native.stats.get('work_units')!r}"
        )
    return mismatches


def check_native_axis(case: Dict[str, Any]) -> List[str]:
    """Native vs itself across worker counts *and* backends, then
    native vs the fault-free simulated run, for the legacy workload and
    a compiled tailed-triangle plan."""
    mismatches: List[str] = []
    pure = fault_free_case(case)
    workload = case["workload"]
    backend_a, backend_b = case["backends"]
    native_1 = run_native_case(pure, 1, backend_a)
    native_2 = run_native_case(pure, 2, backend_b)
    fp_1, fp_2 = _fingerprint(native_1), _fingerprint(native_2)
    if fp_1 != fp_2:
        diff = {
            key: (fp_1[key], fp_2[key]) for key in fp_1 if fp_1[key] != fp_2[key]
        }
        mismatches.append(
            f"native axis: workers=1/{backend_a} vs workers=2/{backend_b} "
            f"diverged: {diff!r}"
        )
    try:
        sim = run_distributed(pure, backend_a)
    except InvariantViolation as violation:
        mismatches.append(f"native axis: sim leg invariant violation: {violation}")
        return mismatches
    if sim.status is not JobStatus.OK:
        mismatches.append(
            f"native axis: sim leg did not complete: {sim.status.value}"
        )
        return mismatches
    mismatches.extend(
        _native_vs_sim(f"native axis [{workload}]", sim, native_1, workload)
    )
    query = motif("tailed-triangle")
    graph = graph_from_case(pure)
    # the plan leg runs under the case's cluster shape but default
    # cache knobs: pathologically tight capacities make the simulated
    # cache thrash for minutes on multi-round plans (a simulator
    # performance cliff, not a correctness axis worth fuzzing here)
    sim_config = GMinerConfig(
        cluster=ClusterSpec(
            num_nodes=case["num_nodes"], cores_per_node=case["cores_per_node"]
        ),
        verify=True,
        kernel_backend=backend_a,
    )
    plan_sim = GMinerJob(
        PlanApp(compile_pattern(query)), graph, sim_config
    ).run()
    plan_config = GMinerConfig(
        execution="native",
        native_workers=2,
        native_chunk_size=16,
        kernel_backend=backend_a,
    )
    plan_native = GMinerJob(
        PlanApp(compile_pattern(query)), graph, plan_config
    ).run()
    if plan_sim.status is JobStatus.OK:
        mismatches.extend(
            _native_vs_sim(
                "native axis [plan:tailed-triangle]", plan_sim, plan_native, None
            )
        )
    return mismatches


# ----------------------------------------------------------------------
# the native-chaos axis
# ----------------------------------------------------------------------


def chaos_plan_for_case(case: Dict[str, Any]) -> NativeFaultPlan:
    """A seeded, *guaranteed-survivable* fault schedule for this case.

    Derived deterministically from the case seed so replays inject the
    identical chaos.  Survivability is by construction: crash/hang
    specs target only the two original worker ids (at most two deaths,
    covered by the respawn budget the chaotic run grants), injected
    flaky failures never exceed the retry budget, and the random error
    rate is low enough that the deterministic per-(chunk, attempt)
    draws cannot realistically exhaust it.
    """
    rng = random.Random(case["seed"] * 7_919 + 5)
    plan = NativeFaultPlan(seed=case["seed"])
    if rng.random() < 0.6:
        plan.crash(rng.randrange(2), on_claim=rng.randrange(2))
    if rng.random() < 0.3:
        plan.hang(rng.randrange(2), on_claim=rng.randrange(2))  # until deadline
    elif rng.random() < 0.3:
        plan.hang(rng.randrange(2), on_claim=rng.randrange(2), duration=0.03)
    if rng.random() < 0.6:
        plan.flaky_chunk(rng.randrange(4), failures=rng.randrange(1, 3))
    if rng.random() < 0.3:
        plan.random_chunk_errors(0.15)
    if rng.random() < 0.3:
        plan.slow(rng.randrange(2), delay=0.01)
    if plan.empty:
        plan.crash(0, on_claim=0)
    return plan


def run_native_chaos_case(case: Dict[str, Any], backend: str):
    """One supervised native run under the case's seeded fault plan."""
    graph = graph_from_case(case)
    config = GMinerConfig(
        execution="native",
        native_workers=2,
        native_chunk_size=16,
        kernel_backend=backend,
        # a tight lease so until-terminated hangs resolve in fuzz time,
        # and budgets that provably cover chaos_plan_for_case's worst
        # case (two targeted deaths, <=2 injected failures per chunk)
        native_chunk_deadline=0.5,
        native_max_chunk_retries=10,
        native_max_respawns=2,
    )
    job = GMinerJob(_build_app(case, graph), graph, config, chaos_plan_for_case(case))
    return job.run()


def check_native_chaos_axis(case: Dict[str, Any]) -> List[str]:
    """Native-under-faults vs fault-free native vs the simulator.

    The determinism-under-crashes contract: a survivable fault
    schedule must be *invisible* in the result — full fingerprint
    (value, ``num_results``, every stats entry) identical to the
    fault-free native run — and must never raise or hang.  The
    fault-free native leg is additionally held to the sim equivalence
    contract so the whole triangle closes.
    """
    mismatches: List[str] = []
    pure = fault_free_case(case)
    workload = case["workload"]
    backend_a, _ = case["backends"]
    clean = run_native_case(pure, 2, backend_a)
    try:
        chaotic = run_native_chaos_case(pure, backend_a)
    except NativeChunkError as error:
        return [
            f"native chaos axis: survivable schedule was not survived: {error}"
        ]
    fp_clean, fp_chaotic = _fingerprint(clean), _fingerprint(chaotic)
    if fp_clean != fp_chaotic:
        diff = {
            key: (fp_clean[key], fp_chaotic[key])
            for key in fp_clean
            if fp_clean[key] != fp_chaotic[key]
        }
        mismatches.append(
            f"native chaos axis: chaotic run diverged from fault-free "
            f"native run: {diff!r}"
        )
    if clean.aggregated != chaotic.aggregated:
        mismatches.append(
            f"native chaos axis: aggregated {clean.aggregated!r} != "
            f"{chaotic.aggregated!r} under faults"
        )
    try:
        sim = run_distributed(pure, backend_a)
    except InvariantViolation as violation:
        mismatches.append(
            f"native chaos axis: sim leg invariant violation: {violation}"
        )
        return mismatches
    if sim.status is not JobStatus.OK:
        mismatches.append(
            f"native chaos axis: sim leg did not complete: {sim.status.value}"
        )
        return mismatches
    mismatches.extend(
        _native_vs_sim(f"native chaos axis [{workload}]", sim, clean, workload)
    )
    return mismatches


# ----------------------------------------------------------------------
# the plan-vs-legacy axis
# ----------------------------------------------------------------------


def plan_queries_for_case(case: Dict[str, Any]) -> List[tuple]:
    """The compiled queries a case exercises: the tailed-triangle motif
    always, plus the workload's pattern-vocabulary equivalent when it
    has one.  Returns ``(name, query, compare_with_legacy)`` triples.
    """
    queries = [("tailed-triangle", motif("tailed-triangle"), False)]
    workload = case["workload"]
    if workload == "tc":
        queries.append(("triangle", motif("triangle"), True))
    if workload == "gm":
        queries.append(
            ("gm-pattern", PatternQuery.from_tree(PAPER_PATTERN, "gm"), True)
        )
    return queries


def run_plan_distributed(case: Dict[str, Any], query, backend: str):
    """One compiled-plan G-Miner run under ``backend``."""
    graph = graph_from_case(case)
    config = GMinerConfig(
        cluster=ClusterSpec(
            num_nodes=case["num_nodes"], cores_per_node=case["cores_per_node"]
        ),
        verify=True,
        kernel_backend=backend,
        **case["config"],
    )
    app = PlanApp(compile_pattern(query))
    job = GMinerJob(app, graph, config, plan_from_case(case))
    return job.run()


def check_plan_axis(case: Dict[str, Any], legacy_value: Any) -> List[str]:
    """Compiled plans vs backends vs brute force vs the legacy grower."""
    mismatches: List[str] = []
    backend_a, backend_b = case["backends"]
    graph = graph_from_case(case)
    for name, query, compare_with_legacy in plan_queries_for_case(case):
        try:
            plan_a = run_plan_distributed(case, query, backend_a)
            plan_b = run_plan_distributed(case, query, backend_b)
        except InvariantViolation as violation:
            mismatches.append(
                f"plan axis [{name}]: invariant violation: {violation}"
            )
            continue
        if plan_a.status is not JobStatus.OK:
            mismatches.append(
                f"plan axis [{name}] did not complete: {plan_a.status.value}"
            )
            continue
        fp_a, fp_b = _fingerprint(plan_a), _fingerprint(plan_b)
        if fp_a != fp_b:
            diff = {
                key: (fp_a[key], fp_b[key])
                for key in fp_a
                if fp_a[key] != fp_b[key]
            }
            mismatches.append(
                f"plan axis [{name}]: backends {backend_a} vs {backend_b} "
                f"diverged: {diff!r}"
            )
        # a job with zero task results reports value None (the job-level
        # convention shared with the legacy apps); as a count that is 0
        plan_value = plan_a.value if plan_a.value is not None else 0
        expected = count_embeddings_bruteforce(query, graph)
        if plan_value != expected:
            mismatches.append(
                f"plan axis [{name}]: compiled plan counted "
                f"{plan_value!r}, brute-force oracle says {expected!r}"
            )
        legacy_count = legacy_value if legacy_value is not None else 0
        if compare_with_legacy and plan_value != legacy_count:
            mismatches.append(
                f"plan axis [{name}]: compiled plan counted "
                f"{plan_value!r}, legacy grower counted {legacy_count!r}"
            )
    return mismatches


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------


def _induced_case(case: Dict[str, Any], keep: Sequence[int]) -> Dict[str, Any]:
    """The case restricted to the induced subgraph on ``keep``."""
    kept = set(keep)
    sub = dict(case)
    sub["vertices"] = sorted(kept)
    sub["edges"] = [e for e in case["edges"] if e[0] in kept and e[1] in kept]
    sub["labels"] = {k: v for k, v in case["labels"].items() if int(k) in kept}
    sub["attributes"] = {
        k: v for k, v in case["attributes"].items() if int(k) in kept
    }
    return sub


def shrink_case(case: Dict[str, Any], max_checks: int = 400) -> Dict[str, Any]:
    """Delta-debug a failing case to a (locally) minimal one.

    Removes vertex chunks of halving size while the case still fails,
    then tries dropping the failure plan and resetting config knobs.
    ``max_checks`` bounds the total number of re-executions.
    """
    budget = {"n": max_checks}

    def still_fails(candidate: Dict[str, Any]) -> bool:
        if budget["n"] <= 0:
            return False
        budget["n"] -= 1
        try:
            return bool(check_case(candidate))
        except Exception:
            # a shrunk case that crashes outright is still a failure
            return True

    best = case
    chunk = max(len(best["vertices"]) // 2, 1)
    while chunk >= 1:
        index = 0
        while index < len(best["vertices"]):
            vids = best["vertices"]
            candidate = _induced_case(best, vids[:index] + vids[index + chunk:])
            # an edgeless graph degenerates every workload; stop there
            if candidate["edges"] and still_fails(candidate):
                best = candidate
            else:
                index += chunk
        chunk //= 2
    if best.get("failure_plan") is not None:
        candidate = dict(best)
        candidate["failure_plan"] = None
        candidate["config"] = {
            k: v for k, v in best["config"].items() if k != "checkpoint_interval"
        }
        if still_fails(candidate):
            best = candidate
    for knob in sorted(best["config"]):
        candidate = dict(best)
        candidate["config"] = {
            k: v for k, v in best["config"].items() if k != knob
        }
        if still_fails(candidate):
            best = candidate
    return best


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def save_repro(
    case: Dict[str, Any], mismatches: List[str], out_dir: str
) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"fuzz-repro-{case['seed']}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            {**case, "mismatches": mismatches}, fh, indent=2, sort_keys=True
        )
    return path


def replay(path: str) -> int:
    with open(path, encoding="utf-8") as fh:
        case = json.load(fh)
    if case.get("schema") != SCHEMA:
        print(f"not a {SCHEMA} repro: {path}", file=sys.stderr)
        return 2
    mismatches = check_case(case)
    if mismatches:
        print(f"repro still fails ({len(mismatches)} mismatch(es)):")
        for mismatch in mismatches:
            print(f"  - {mismatch}")
        return 1
    print("repro passes: the underlying bug appears fixed")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.fuzz", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--iterations", type=int, default=25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default="fuzz-repros", help="directory for shrunk repro JSON"
    )
    parser.add_argument(
        "--replay", metavar="REPRO_JSON", help="re-run one persisted repro"
    )
    parser.add_argument(
        "--no-shrink", action="store_true",
        help="report mismatches without delta-debugging them",
    )
    parser.add_argument(
        "--plan-axis", action="store_true",
        help="also differential-test the pattern plan compiler "
             "(plan-vs-legacy, plan-vs-brute-force, plan-vs-backends)",
    )
    parser.add_argument(
        "--native-axis", action="store_true",
        help="also differential-test the native multiprocess engine "
             "(native-vs-native across worker counts and backends, "
             "native-vs-sim per the equivalence contract)",
    )
    parser.add_argument(
        "--native-chaos", action="store_true",
        help="also run the native engine under a seeded survivable "
             "NativeFaultPlan (crashes, hangs, transient chunk errors): "
             "the chaotic run must match the fault-free native run on "
             "the full fingerprint and never raise or hang",
    )
    args = parser.parse_args(argv)
    if args.replay:
        return replay(args.replay)

    failures = 0
    for iteration in range(args.iterations):
        case_seed = args.seed * 1_000_003 + iteration
        case = generate_case(case_seed)
        if args.plan_axis:
            # recorded on the case so shrinking and replay keep the axis
            case["plan_axis"] = True
        if args.native_axis:
            case["native_axis"] = True
        if args.native_chaos:
            # like the other axes: recorded on the case itself so the
            # shrinker's dict copies and --replay keep the chaos armed
            case["native_chaos"] = True
        mismatches = check_case(case)
        tag = (
            f"[{iteration + 1}/{args.iterations}] seed={case_seed} "
            f"{case['workload']} n={len(case['vertices'])}"
        )
        if not mismatches:
            print(f"{tag}: ok")
            continue
        failures += 1
        print(f"{tag}: MISMATCH")
        for mismatch in mismatches:
            print(f"  - {mismatch.splitlines()[0]}")
        if not args.no_shrink:
            case = shrink_case(case)
            mismatches = check_case(case) or mismatches
            print(f"  shrunk to {len(case['vertices'])} vertices")
        path = save_repro(case, mismatches, args.out)
        print(f"  repro written to {path}")
    print(
        f"{args.iterations} case(s), {failures} failure(s)"
        + (f"; repros in {args.out}/" if failures else "")
    )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
