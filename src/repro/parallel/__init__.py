"""Host-level parallel experiment engine.

The simulated cluster inside one job is deterministic and
single-threaded, but the *experiment grid* above it — every
``(system, workload, dataset, config)`` cell of every table and figure
— is embarrassingly parallel.  This package fans those cells out over
a process pool (:class:`ParallelRunner`), with deterministic result
ordering so parallel reports are byte-identical to serial ones, and
memoises the expensive shared builds (generated datasets, partition
assignments) in a content-keyed, disk-persisted :class:`BuildCache`.

See ``python -m repro.bench run <experiment> --workers N``.
"""

from repro.parallel.cache import (
    DEFAULT_CACHE_DIR,
    BuildCache,
    content_key,
    get_build_cache,
    set_build_cache,
    source_fingerprint,
)
from repro.parallel.request import (
    USE_DEFAULT,
    CellOutcome,
    RunRequest,
    execute_request,
    execute_request_timed,
)
from repro.parallel.executor import (
    ParallelRunner,
    current_runner,
    default_workers,
    parallel_context,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "USE_DEFAULT",
    "BuildCache",
    "CellOutcome",
    "ParallelRunner",
    "RunRequest",
    "content_key",
    "current_runner",
    "default_workers",
    "execute_request",
    "execute_request_timed",
    "get_build_cache",
    "parallel_context",
    "set_build_cache",
    "source_fingerprint",
]
