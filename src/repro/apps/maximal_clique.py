"""Maximum clique finding (MCF) on G-Miner.

The paper's heavy non-attributed workload (§8.1), implemented after
[5]/[33]: the task seeded at ``v`` searches all cliques whose minimum
vertex is ``v`` with Tomita-style branch and bound.  A
:class:`~repro.core.aggregator.MaxAggregator` shares the globally-best
clique size across workers; tasks prune against it (and skip entirely
when their candidate set cannot beat it) — the mechanism behind the
superlinear speedup discussed in §3.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro import kernels
from repro.core.aggregator import Aggregator, MaxAggregator
from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.graph import VertexData
from repro.mining.cliques import SharedBound, max_clique_in_candidates


class MCFTask(Task):
    """One compute round after one pull round: branch-and-bound search
    over the seed's higher-ID neighbourhood."""

    def __init__(self, seed: VertexData) -> None:
        super().__init__(seed)
        higher = [u for u in seed.neighbors if u > seed.vid]
        self.pull(higher)

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        global_bound = int(env.aggregated or 0)
        candidates = list(self.candidates)
        self.charge(len(candidates) + 1)
        if 1 + len(candidates) <= global_bound:
            self.finish(None)  # cannot beat the global best: prune whole task
            return
        cand_arr = kernels.as_array(candidates)
        local_adj = {
            vid: kernels.intersect(data.neighbors_array(), cand_arr)
            for vid, data in cand_objs.items()
        }
        local_adj[self.seed.vid] = cand_arr
        bound = SharedBound(global_bound)
        best = max_clique_in_candidates(
            [self.seed.vid], candidates, local_adj, bound, meter=self
        )
        if bound.value > global_bound:
            env.push_to_aggregator(bound.value)
        self.subgraph.add_nodes(best or ())
        self.finish(best)


class MaxCliqueApp(GMinerApp):
    """Maximum clique; the job value is the best clique found."""

    name = "mcf"

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        higher = [u for u in vertex.neighbors if u > vertex.vid]
        if not higher:
            return None
        return MCFTask(vertex)

    def make_aggregator(self) -> Optional[Aggregator]:
        return MaxAggregator()

    def combine_results(self, results) -> Tuple[int, ...]:
        best: Tuple[int, ...] = ()
        for clique in results:
            if clique is not None and len(clique) > len(best):
                best = tuple(clique)
        return best
