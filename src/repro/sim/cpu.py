"""Simulated CPU core pools.

Each node owns a :class:`CorePool` with a fixed number of cores and a
speed in *work units per second*.  Work units are abstract: mining code
measures how much real work it performed (e.g. adjacency-list
intersections) and submits that amount; the pool translates it into
virtual time and executes the completion callback when a core finishes.

The pool maintains a FIFO of pending work so submitting more jobs than
cores naturally queues — this is what produces realistic utilisation
curves when the task pipeline keeps cores fed (Figure 6) versus starves
them at batch barriers (Figure 5).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.metrics import ResourceMeter

#: A lazy work factory: invoked when a core actually starts the item,
#: it performs the real computation and returns ``(work_units,
#: completion_callback)``.  Lazy execution matters for pruning-driven
#: algorithms (MCF): the computation must observe the shared bound as
#: of its *start* time, not its submission time.
WorkFactory = Callable[[], Tuple[float, Callable[[], None]]]


@dataclass
class _WorkItem:
    work_units: float
    on_done: Callable[[], None]


class CorePool:
    """A fixed set of identical cores executing queued work items.

    ``speed`` is work units per second per core.  ``submit`` enqueues a
    work item; it runs as soon as a core is free and calls ``on_done``
    at its virtual completion time.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        cores: int,
        speed: float,
    ) -> None:
        if cores <= 0:
            raise ValueError("core pool needs at least one core")
        if speed <= 0:
            raise ValueError("core speed must be positive")
        self.sim = sim
        self.name = name
        self.cores = cores
        self.speed = speed
        self.meter = ResourceMeter(name=name, capacity=cores)
        self._queue: Deque = deque()  # _WorkItem | WorkFactory
        self._busy = 0
        self._halted = False
        self.completed_items = 0
        self.total_work_units = 0.0

    @property
    def busy_cores(self) -> int:
        return self._busy

    @property
    def idle_cores(self) -> int:
        return self.cores - self._busy

    @property
    def queued(self) -> int:
        return len(self._queue)

    def halt(self) -> None:
        """Stop dispatching work (used by failure injection)."""
        self._halted = True
        self._queue.clear()

    def resume(self) -> None:
        self._halted = False
        self._dispatch()

    def submit(self, work_units: float, on_done: Callable[[], None]) -> None:
        """Queue ``work_units`` of computation; ``on_done`` fires on completion."""
        if work_units < 0:
            raise ValueError("work cannot be negative")
        self._queue.append(_WorkItem(work_units, on_done))
        self._dispatch()

    def submit_lazy(self, factory: WorkFactory, front: bool = False) -> None:
        """Queue work whose real execution is deferred until a core is free.

        ``factory()`` runs at core-start time, does the real
        computation, and returns ``(work_units, on_done)``.  ``front``
        pushes ahead of queued items (a task continuing to its next
        round keeps its core, per the paper's task model).
        """
        if front:
            self._queue.appendleft(factory)
        else:
            self._queue.append(factory)
        self._dispatch()

    def _dispatch(self) -> None:
        while not self._halted and self._busy < self.cores and self._queue:
            entry = self._queue.popleft()
            if isinstance(entry, _WorkItem):
                work_units, on_done = entry.work_units, entry.on_done
            else:
                work_units, on_done = entry()
                if work_units < 0:
                    raise ValueError("work cannot be negative")
            self._busy += 1
            duration = work_units / self.speed
            token = self.meter.begin(self.sim.now)
            self.total_work_units += work_units

            def finish(on_done=on_done, token=token):
                self._busy -= 1
                self.meter.end(self.sim.now, token)
                self.completed_items += 1
                if not self._halted:
                    on_done()
                self._dispatch()

            self.sim.schedule(duration, finish)

    def utilization(self, start: float, end: float) -> float:
        return self.meter.utilization(start, end)
