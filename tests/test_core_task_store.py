"""Unit tests for the disk-backed LSH task store (paper §4.3/§7)."""

import pytest

from repro.core.lsh import MinHashLSH
from repro.core.task import Task, TaskStatus
from repro.core.task_store import TaskStore
from repro.graph.graph import VertexData
from repro.sim.disk import Disk
from repro.sim.engine import Simulator


class StubTask(Task):
    def __init__(self, to_pull, size=100):
        super().__init__(VertexData(vid=0, neighbors=()))
        self.pull(to_pull)
        self._size = size

    def update(self, cand_objs, env):
        self.finish()

    def estimate_size(self):
        return self._size


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def disk(sim):
    return Disk(sim, 0, read_bandwidth=1e9, write_bandwidth=1e9, latency=1e-4)


def make_store(disk, block_tasks=4, lsh=True, **kwargs):
    return TaskStore(
        disk=disk,
        block_tasks=block_tasks,
        lsh=MinHashLSH(4) if lsh else None,
        **kwargs,
    )


class TestBasicQueue:
    def test_insert_pop(self, sim, disk):
        store = make_store(disk)
        t = StubTask([1, 2])
        store.insert_batch([t])
        assert len(store) == 1
        assert t.status is TaskStatus.INACTIVE
        popped = store.pop()
        assert popped is t
        assert len(store) == 0

    def test_pop_empty_returns_none(self, disk):
        assert make_store(disk).pop() is None

    def test_notify_on_insert(self, disk):
        notified = []
        store = make_store(disk, notify=lambda: notified.append(1))
        store.insert_batch([StubTask([1])])
        assert notified

    def test_memory_hooks_for_head_block(self, disk):
        allocs, frees = [], []
        store = TaskStore(
            disk=disk,
            block_tasks=4,
            lsh=None,
            on_alloc=allocs.append,
            on_free=frees.append,
        )
        t = StubTask([1], size=64)
        store.insert_batch([t])
        assert sum(allocs) == 64
        store.pop()
        assert sum(frees) == 64


class TestLSHOrdering:
    def test_similar_pull_sets_adjacent(self, disk):
        """Tasks sharing remote candidates dequeue near each other —
        the cache-locality property of Figure 3."""
        store = make_store(disk, block_tasks=64)
        group_a = [StubTask([1, 2, 3]) for _ in range(3)]
        group_b = [StubTask([100, 200, 300]) for _ in range(3)]
        interleaved = [x for pair in zip(group_a, group_b) for x in pair]
        store.insert_batch(interleaved)
        order = [store.pop().to_pull for _ in range(6)]
        # identical sets must be consecutive
        as_keys = ["a" if s == {1, 2, 3} else "b" for s in order]
        assert as_keys in (["a"] * 3 + ["b"] * 3, ["b"] * 3 + ["a"] * 3)

    def test_without_lsh_order_is_scrambled_but_complete(self, disk):
        store = make_store(disk, lsh=False, block_tasks=64)
        tasks = [StubTask([i]) for i in range(8)]
        store.insert_batch(tasks)
        popped = set()
        while (t := store.pop()) is not None:
            popped.add(t.task_id)
        assert popped == {t.task_id for t in tasks}


class TestDiskBlocks:
    def test_overflow_spills_to_disk(self, sim, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        store.insert_batch([StubTask([i]) for i in range(8)])
        assert store.disk_spills >= 1
        assert disk.bytes_written.total > 0

    def test_pop_across_block_boundary_loads_from_disk(self, sim, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        tasks = [StubTask([i]) for i in range(6)]
        store.insert_batch(tasks)
        popped = []

        def drain():
            while (t := store.pop()) is not None:
                popped.append(t)
            if len(popped) < 6:
                # a block load is in flight; retry when it lands
                assert store.loading or sim.pending()

        store._notify = drain
        drain()
        sim.run()
        assert len(popped) == 6
        assert store.disk_loads >= 1

    def test_byte_bound_splits_fat_blocks(self, sim, disk):
        store = TaskStore(disk, block_tasks=100, lsh=None, block_bytes=250)
        store.insert_batch([StubTask([i], size=100) for i in range(6)])
        # head block must stay under ~250 bytes => blocks of <= 3 tasks
        assert len(store._blocks) >= 2


class TestStealing:
    def _local_rate(self, task):
        return 0.0  # everything is remote: freely migratable

    def test_steal_respects_cost_threshold(self, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        cheap = [StubTask([1]) for _ in range(4)]
        fat = StubTask(list(range(600)))  # c(t) = 1 + 600 > 512
        store.insert_batch(cheap + [fat])
        stolen = store.steal_batch(10, 512.0, 0.9, self._local_rate)
        assert fat not in stolen

    def test_steal_respects_local_rate(self, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        store.insert_batch([StubTask([1]) for _ in range(6)])
        stolen = store.steal_batch(10, 512.0, 0.9, lambda t: 1.0)
        assert stolen == []  # everything too local to migrate

    def test_steal_leaves_head_block(self, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        store.insert_batch([StubTask([i]) for i in range(6)])
        before = len(store)
        stolen = store.steal_batch(100, 1e9, 2.0, self._local_rate)
        # head block (up to 2 tasks) is never stolen
        assert len(stolen) <= before - 1
        assert len(store) + len(stolen) == before

    def test_steal_limit(self, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        store.insert_batch([StubTask([i]) for i in range(10)])
        stolen = store.steal_batch(3, 1e9, 2.0, self._local_rate)
        assert len(stolen) == 3


class TestSpillReloadRoundTrip:
    """Spilling a block to disk and loading it back must be lossless:
    same tasks, same pull sets, same sizes, nothing reordered within a
    block, nothing duplicated."""

    def _drain(self, sim, store, expect):
        popped = []

        def pump():
            while (t := store.pop()) is not None:
                popped.append(t)
            if len(popped) < expect:
                assert store.loading or sim.pending()

        store._notify = pump
        pump()
        sim.run()
        return popped

    def test_round_trip_preserves_task_identity_and_state(self, sim, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        tasks = [StubTask([i, i + 100], size=50 + i) for i in range(8)]
        store.insert_batch(tasks)
        assert store.disk_spills >= 1
        popped = self._drain(sim, store, len(tasks))
        assert len(popped) == len(tasks)
        by_id = {t.task_id: t for t in tasks}
        for task in popped:
            original = by_id.pop(task.task_id)
            assert task is original  # the very same object comes back
            assert task.to_pull == original.to_pull
            assert task.estimate_size() == original.estimate_size()
        assert not by_id  # nothing lost, nothing duplicated

    def test_reload_actually_reads_the_disk(self, sim, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        store.insert_batch([StubTask([i]) for i in range(8)])
        written = disk.bytes_written.total
        assert written > 0
        self._drain(sim, store, 8)
        assert store.disk_loads >= 1
        assert disk.bytes_read.total > 0

    def test_drain_all_recovers_spilled_tasks(self, sim, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        tasks = [StubTask([i]) for i in range(8)]
        store.insert_batch(tasks)
        assert store.disk_spills >= 1
        drained = store.drain_all()
        assert {t.task_id for t in drained} == {t.task_id for t in tasks}
        assert len(store) == 0

    def test_peek_all_sees_spilled_tasks(self, sim, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        tasks = [StubTask([i]) for i in range(8)]
        store.insert_batch(tasks)
        assert {t.task_id for t in store.peek_all()} == {
            t.task_id for t in tasks
        }
        assert len(store) == 8  # non-destructive even for disk blocks

    def test_steal_reaches_spilled_blocks(self, sim, disk):
        store = make_store(disk, block_tasks=2, lsh=False)
        store.insert_batch([StubTask([i]) for i in range(10)])
        assert store.disk_spills >= 1
        stolen = store.steal_batch(100, 1e9, 2.0, lambda t: 0.0)
        # everything but the protected head block is up for migration,
        # including tasks currently resident on disk
        assert len(stolen) >= 6
        assert len(store) + len(stolen) == 10


class TestSnapshotting:
    def test_peek_all_preserves_contents(self, disk):
        store = make_store(disk)
        tasks = [StubTask([i]) for i in range(5)]
        store.insert_batch(tasks)
        assert {t.task_id for t in store.peek_all()} == {t.task_id for t in tasks}
        assert len(store) == 5  # non-destructive

    def test_drain_all_empties(self, disk):
        store = make_store(disk)
        store.insert_batch([StubTask([i]) for i in range(5)])
        drained = store.drain_all()
        assert len(drained) == 5
        assert len(store) == 0
