"""Per-run observability sessions and the multi-run collector.

An :class:`ObsSession` is what a :class:`~repro.core.job.GMinerJob`
attaches when observability is on: one :class:`MetricsRegistry` plus
one :class:`Tracer` bound to the job's virtual clock, with the small
cached-handle helpers the hot paths call (network message accounting,
simulator event counting, kernel batch metering).  Everything is a
plain method call on an already-attached object — when observability
is off the component holds ``None`` and pays one branch, allocating
nothing (the zero-overhead contract, asserted in ``tests/test_obs.py``
via :func:`repro.obs.allocation_counts`).

An :class:`ObsCollector` aggregates the finalized snapshots of many
runs — the ``python -m repro.bench run ... --trace-out/--metrics-out``
path — and knows how to export them.  A collector can be installed
ambiently with :func:`collecting`; jobs check
:func:`current_collector` and auto-attach, so the bench layer needs no
per-cell plumbing.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer

#: Stable schema tags, bumped only on breaking layout changes.
RUN_SCHEMA = "repro.obs.run/1"
METRICS_SCHEMA = "repro.obs.metrics/1"


class ObsSession:
    """Runtime instrumentation for one job run."""

    #: Always-true marker so call sites can use ``obs is not None`` and
    #: tests can tell a session from the disabled path.
    enabled = True

    def __init__(
        self,
        clock: Callable[[], float],
        name: str = "",
        labels: Optional[Dict[str, str]] = None,
        span_capacity: int = 500_000,
    ) -> None:
        self.name = name
        self.labels = dict(labels or {})
        #: Task-id offset subtracted by :meth:`rel_task`.  Task ids are
        #: process-global and never reset, so without this two
        #: same-seed runs in one process would label otherwise
        #: identical spans with shifted ids; the job sets it to
        #: ``repro.core.task.peek_task_id()`` at session creation.
        self.task_base = 0
        self.registry = MetricsRegistry()
        self.tracer = Tracer(clock, capacity=span_capacity)
        self._clock = clock
        # hot-path handle caches (created lazily, once per series)
        self._net_messages: Dict[str, Any] = {}
        self._net_bytes: Dict[str, Any] = {}
        self._kernel_batches: Dict[str, Any] = {}
        self._kernel_items: Dict[str, Any] = {}
        self._sim_events = self.registry.counter("sim.events")

    @property
    def now(self) -> float:
        return self._clock()

    def rel_task(self, task_id: int) -> int:
        """Run-relative task id (negative sentinels pass through)."""
        return task_id - self.task_base if task_id >= 0 else task_id

    # -- cached-handle helpers for the hottest call sites ---------------

    def sim_event(self) -> None:
        """One simulator event processed (called from the run loop)."""
        self._sim_events.inc()

    def net_message(self, kind: str, nbytes: int) -> None:
        """One message offered to the fabric, labelled by payload type."""
        counter = self._net_messages.get(kind)
        if counter is None:
            counter = self._net_messages[kind] = self.registry.counter(
                "net.messages", type=kind
            )
            self._net_bytes[kind] = self.registry.counter("net.bytes", type=kind)
        counter.inc()
        self._net_bytes[kind].inc(nbytes)

    def kernel_batch(self, op: str, items: int) -> None:
        """One vectorised kernel batch of ``items`` scanned elements."""
        counter = self._kernel_batches.get(op)
        if counter is None:
            counter = self._kernel_batches[op] = self.registry.counter(
                "kernels.batches", op=op
            )
            self._kernel_items[op] = self.registry.counter("kernels.items", op=op)
        counter.inc()
        self._kernel_items[op].inc(items)

    # -- finalisation ----------------------------------------------------

    def finalize(self, end: float, meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Close open spans and freeze into a plain-dict snapshot.

        The snapshot is fully deterministic (sorted series, creation-
        ordered spans, no wall-clock) and picklable, so it survives the
        parallel runner's process pool intact.
        """
        self.tracer.close_open_spans(end)
        snapshot: Dict[str, Any] = {
            "schema": RUN_SCHEMA,
            "name": self.name,
            "labels": {k: self.labels[k] for k in sorted(self.labels)},
            "metrics": self.registry.snapshot(),
            "spans": self.tracer.to_dicts(),
            "spans_dropped": self.tracer.dropped,
        }
        if meta:
            snapshot["meta"] = {k: meta[k] for k in sorted(meta)}
        return snapshot


class ObsCollector:
    """Accumulates finalized run snapshots for export.

    One collector per bench invocation; each instrumented job appends
    its snapshot in completion order (deterministic under the serial
    runner, which the CLI enforces when export flags are given).
    """

    def __init__(self) -> None:
        self.runs: List[Dict[str, Any]] = []

    def add_run(self, snapshot: Dict[str, Any]) -> None:
        self.runs.append(snapshot)

    def __len__(self) -> int:
        return len(self.runs)

    def merged_metrics(self) -> Dict[str, Any]:
        """Cross-run merge (counters/histograms sum, gauges max)."""
        return MetricsRegistry.merge_snapshots(
            run["metrics"] for run in self.runs
        )

    # Export conveniences (delegate to repro.obs.exporters; imported
    # lazily to keep this module dependency-light for the hot path).

    def write_chrome_trace(self, path: str) -> str:
        from repro.obs import exporters

        return exporters.write_chrome_trace(path, self.runs)

    def write_metrics_json(self, path: str) -> str:
        from repro.obs import exporters

        return exporters.write_metrics_json(path, self.runs)

    def write_prometheus(self, path: str) -> str:
        from repro.obs import exporters

        return exporters.write_prometheus(path, self.merged_metrics())


# ----------------------------------------------------------------------
# Ambient collector: how the bench CLI turns observability on for every
# job of an experiment without threading a parameter through each cell.
# ----------------------------------------------------------------------

_current_collector: Optional[ObsCollector] = None


def current_collector() -> Optional[ObsCollector]:
    """The ambient collector, or ``None`` when none is installed."""
    return _current_collector


@contextlib.contextmanager
def collecting(collector: ObsCollector) -> Iterator[ObsCollector]:
    """Install ``collector`` ambiently for the duration of the block.

    Process-local: jobs fanned out to a parallel pool do not see it,
    which is why the CLI forces serial execution when exporting.
    """
    global _current_collector
    previous = _current_collector
    _current_collector = collector
    try:
        yield collector
    finally:
        _current_collector = previous
