"""Ablation B — recursive task splitting (the paper's §9 future work).

Expected shape: splitting preserves exact results while creating more,
finer tasks and improving parallelism on fan-out-heavy workloads."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_ablation_splitting(benchmark):
    report = run_experiment(benchmark, experiments.ablation_splitting)
    on, off = report.data["split-on"], report.data["split-off"]
    assert on.value == off.value
    assert on.stats["tasks_created"] > off.stats["tasks_created"]
    assert on.total_seconds <= off.total_seconds * 1.05
