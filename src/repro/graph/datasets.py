"""Dataset registry: scaled stand-ins for the paper's Table 2.

The paper's graphs (Skitter, Orkut, BTC, Friendster, Tencent, DBLP) are
either closed (Tencent) or far beyond single-process Python scale, so
each is replaced by a seeded synthetic graph whose *shape* matches:

* relative size ordering is preserved (skitter < orkut < friendster,
  btc = largest-but-sparse),
* degree skew and clustering match the family (R-MAT for web-like
  Skitter/BTC, preferential attachment with triangle closure for the
  social networks, planted communities + coherent attributes for the
  attributed graphs),
* attributed graphs carry attribute lists in the paper's style.

Every dataset is deterministic given its name.  :func:`dataset_table`
renders the registry in the format of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.graph.attributes import AttributeSpace
from repro.graph.generators import (
    planted_partition_graph,
    preferential_attachment_graph,
    random_attributes,
    random_labels,
    rmat_graph,
)
from repro.graph.graph import Graph


@dataclass(frozen=True)
class DatasetInfo:
    """Registry entry: how to build a dataset and what it stands in for."""

    name: str
    stands_in_for: str
    attributed: bool
    builder: Callable[[], "BuiltDataset"]
    description: str = ""


@dataclass
class BuiltDataset:
    """A materialised dataset."""

    name: str
    graph: Graph
    community_map: Optional[Dict[int, int]] = None
    attribute_space: Optional[AttributeSpace] = None


def _build_skitter() -> BuiltDataset:
    # Skitter: internet topology — sparse, hub-heavy.  R-MAT captures it.
    graph = rmat_graph(scale=10, edge_factor=7, seed=101, max_degree=64)
    return BuiltDataset(name="skitter-s", graph=graph)


def _build_orkut() -> BuiltDataset:
    # Orkut: dense social network, avg degree ~76 in the paper.  A
    # triangle-closing preferential-attachment graph at reduced scale.
    graph = preferential_attachment_graph(
        n=2000, m=25, triangle_prob=0.6, seed=202, max_degree=120
    )
    return BuiltDataset(name="orkut-s", graph=graph)


def _build_btc() -> BuiltDataset:
    # BTC: the paper's biggest-|V| graph but very sparse (avg deg 4.7).
    graph = rmat_graph(scale=13, edge_factor=3, seed=303, max_degree=96)
    return BuiltDataset(name="btc-s", graph=graph)


def _build_friendster() -> BuiltDataset:
    # Friendster: the paper's biggest-|E| graph, dense social network.
    graph = preferential_attachment_graph(
        n=3000, m=24, triangle_prob=0.5, seed=404, max_degree=140
    )
    return BuiltDataset(name="friendster-s", graph=graph)


def _build_tencent() -> BuiltDataset:
    # Tencent: attributed social graph (interest tags).  Planted
    # communities with coherent high-dimensional attributes.
    space = AttributeSpace(dimensions=10, values_per_dimension=40)
    graph, communities = planted_partition_graph(
        num_communities=30, community_size=40, p_in=0.30, p_out=0.012, seed=505
    )
    random_attributes(graph, space=space, seed=506, community_map=communities, coherence=0.85)
    return BuiltDataset(
        name="tencent-s", graph=graph, community_map=communities, attribute_space=space
    )


def _build_dblp() -> BuiltDataset:
    # DBLP: co-authorship with venue attributes — smaller, tighter
    # communities, low-dimensional attribute space.
    space = AttributeSpace(dimensions=4, values_per_dimension=20)
    graph, communities = planted_partition_graph(
        num_communities=40, community_size=25, p_in=0.35, p_out=0.008, seed=606
    )
    random_attributes(graph, space=space, seed=607, community_map=communities, coherence=0.9)
    return BuiltDataset(
        name="dblp-s", graph=graph, community_map=communities, attribute_space=space
    )


DATASETS: Dict[str, DatasetInfo] = {
    "skitter-s": DatasetInfo(
        name="skitter-s",
        stands_in_for="Skitter (1.7M vertices / 11.1M edges)",
        attributed=False,
        builder=_build_skitter,
        description="internet-topology shape: sparse, extreme hubs",
    ),
    "orkut-s": DatasetInfo(
        name="orkut-s",
        stands_in_for="Orkut (3.1M vertices / 117.2M edges)",
        attributed=False,
        builder=_build_orkut,
        description="dense social network, triangle-rich",
    ),
    "btc-s": DatasetInfo(
        name="btc-s",
        stands_in_for="BTC (164.7M vertices / 772.8M edges)",
        attributed=False,
        builder=_build_btc,
        description="semantic-web shape: huge and sparse",
    ),
    "friendster-s": DatasetInfo(
        name="friendster-s",
        stands_in_for="Friendster (65.6M vertices / 1.81B edges)",
        attributed=False,
        builder=_build_friendster,
        description="largest-|E| social network",
    ),
    "tencent-s": DatasetInfo(
        name="tencent-s",
        stands_in_for="Tencent (1.9M vertices / 50.1M edges, 122896 attrs)",
        attributed=True,
        builder=_build_tencent,
        description="attributed social graph with planted communities",
    ),
    "dblp-s": DatasetInfo(
        name="dblp-s",
        stands_in_for="DBLP (1.8M vertices / 8.4M edges, 1640 attrs)",
        attributed=True,
        builder=_build_dblp,
        description="co-authorship graph with venue attributes",
    ),
}

_CACHE: Dict[str, BuiltDataset] = {}


#: Label alphabet used for scaled graph-matching runs.  The paper uses
#: {a..g}; our graphs are ~10³× smaller in |V| but keep realistic
#: degrees, so with 7 labels the match count (which grows ~degree^depth
#: per seed) would be disproportionately large.  16 labels restore the
#: paper's ratio of matches to graph size.  Documented in DESIGN.md.
SCALED_LABEL_ALPHABET = tuple("abcdefghijklmnop")


def _builder_params(name: str) -> Dict[str, str]:
    """Build-cache key components for a dataset: its name plus a
    fingerprint of the builder's source, so editing a generator (or its
    seeds) invalidates persisted entries."""
    from repro.parallel.cache import source_fingerprint

    return {"name": name, "builder": source_fingerprint(DATASETS[name].builder)}


def _build_base(name: str) -> BuiltDataset:
    """Run a registry builder, through the active build cache if any."""
    from repro.parallel.cache import get_build_cache

    info = DATASETS[name]
    cache = get_build_cache()
    if cache is None:
        return info.builder()
    return cache.lookup("dataset", _builder_params(name), info.builder)


def load_dataset(
    name: str,
    labeled: bool = False,
    attributed: bool = False,
    label_seed: int = 7,
    attribute_seed: int = 7,
) -> BuiltDataset:
    """Materialise a registered dataset (cached; graphs are reused).

    ``labeled=True`` assigns uniform random labels (scaled alphabet,
    see :data:`SCALED_LABEL_ALPHABET`) as the paper does for graph
    matching on non-attributed graphs (§8.2).  ``attributed=True``
    assigns synthetic 5-dimension attribute lists as in footnote 7
    (for CD/GC on non-attributed graphs).  Both return copies so the
    cached base graph is never mutated.

    Builds go through the active :class:`~repro.parallel.BuildCache`
    when one is installed (see ``--workers``/``--no-cache`` on the
    bench CLI), keyed on the builder source and decoration seeds so
    repeated invocations skip graph generation.
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASETS)}")
    if name not in _CACHE:
        _CACHE[name] = _build_base(name)
    base = _CACHE[name]
    if not labeled and not attributed:
        return base

    def decorate() -> BuiltDataset:
        graph = base.graph.subgraph(base.graph.vertices())  # deep-enough copy
        if labeled and not graph.is_labeled:
            random_labels(graph, alphabet=SCALED_LABEL_ALPHABET, seed=label_seed)
        if attributed and not graph.is_attributed:
            random_attributes(graph, seed=attribute_seed)
        return BuiltDataset(
            name=base.name,
            graph=graph,
            community_map=base.community_map,
            attribute_space=base.attribute_space
            or (AttributeSpace() if attributed else None),
        )

    from repro.parallel.cache import get_build_cache

    cache = get_build_cache()
    if cache is None:
        return decorate()
    params = dict(
        _builder_params(name),
        labeled=labeled,
        attributed=attributed,
        label_seed=label_seed,
        attribute_seed=attribute_seed,
    )
    return cache.lookup("dataset-decorated", params, decorate)


def clear_dataset_cache() -> None:
    """Drop memoised datasets (tests that need fresh builds)."""
    _CACHE.clear()


def dataset_table() -> str:
    """Render the registry in the shape of the paper's Table 2."""
    header = f"{'Dataset':<14}{'|V|':>9}{'|E|':>10}{'Max.Deg':>9}{'Avg.Deg':>9}{'|Attr|':>8}"
    rows = [header]
    for name in DATASETS:
        built = load_dataset(name)
        g = built.graph
        attr = g.attribute_dimensions() if g.is_attributed else 0
        rows.append(
            f"{name:<14}{g.num_vertices:>9}{g.num_edges:>10}"
            f"{g.max_degree():>9}{g.avg_degree():>9.3f}"
            f"{attr if attr else '-':>8}"
        )
    return "\n".join(rows)
