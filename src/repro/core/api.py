"""The user-facing programming API (paper §5.2, Listing 1).

To write a G-Miner program, implement a :class:`Task` subclass (the
mining logic, one ``update`` per round) and a :class:`GMinerApp`
(playing Listing 1's ``Worker`` role: parsing vertices, selecting
seeds via ``init``, combining output), optionally with an
:class:`~repro.core.aggregator.Aggregator` for global state.

See :mod:`repro.apps` for the five paper applications implemented on
this API, and ``examples/`` for runnable programs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.core.aggregator import Aggregator
from repro.core.task import Task
from repro.graph.graph import VertexData
from repro.graph.io import parse_vertex_line


class GMinerApp:
    """Base class for G-Miner applications (Listing 1's ``Worker``).

    Subclasses implement :meth:`make_task` (the paper's ``init``):
    given one vertex of the local partition, return a seed task or
    ``None`` when the vertex seeds nothing.
    """

    #: Short name used in logs and benchmark tables.
    name: str = "app"

    def vtx_parser(self, line: str) -> VertexData:
        """Parse one input line into a vertex (Listing 1's ``vtxParser``)."""
        return parse_vertex_line(line)

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        """Seed selection + task generation (Listing 1's ``init``)."""
        raise NotImplementedError

    def make_aggregator(self) -> Optional[Aggregator]:
        """Optional global aggregator (e.g. MCF's max bound)."""
        return None

    def combine_results(self, results: Iterable[Any]) -> Any:
        """Fold per-task results into the job output (``output``).

        ``results`` iterates over the non-``None`` results of every
        dead task, already deduplicated by task identity.  The default
        collects them into a sorted list when orderable, else a list.
        """
        collected = [r for r in results if r is not None]
        try:
            return sorted(collected)
        except TypeError:
            return collected

    def seed_cost(self, vertex: VertexData) -> float:
        """Work units the task generator spends examining one vertex."""
        return 2.0
