"""Golden mining results on the registered datasets.

These pin the exact outputs of every workload on the (seeded,
deterministic) dataset registry.  Any change to a generator, a kernel,
or the pipeline that alters a mining *result* — as opposed to its
performance — trips one of these immediately, and the values are the
ones EXPERIMENTS.md quotes.

To refresh after an intentional result change::

    PYTHONPATH=src python tests/regen_golden.py
"""

import pytest

from repro.bench.runner import prepare_dataset, run
from repro.mining.cost import WorkMeter
from repro.mining.graphlets import graphlet_count_sequential
from repro.sim.cluster import ClusterSpec
from tests.regen_golden import group_digest

pytestmark = pytest.mark.golden

SPEC = ClusterSpec(num_nodes=4, cores_per_node=4)

#: dataset -> (triangles, max clique size, Figure-1-pattern matches)
GOLDEN_NON_ATTRIBUTED = {
    "skitter-s": (5378, 7, 1570),
    "orkut-s": (86835, 12, 47935),
    "btc-s": (9017, 5, 3992),
    "friendster-s": (98668, 13, 92289),
}

#: dataset -> number of communities (native attributes, default params)
GOLDEN_COMMUNITIES = {
    "dblp-s": 60,
    "tencent-s": 70,
}


@pytest.mark.parametrize("dataset", sorted(GOLDEN_NON_ATTRIBUTED))
def test_triangle_counts(dataset):
    expected, _, _ = GOLDEN_NON_ATTRIBUTED[dataset]
    result = run(workload="tc", dataset=dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert result.value == expected


@pytest.mark.parametrize("dataset", sorted(GOLDEN_NON_ATTRIBUTED))
def test_max_clique_sizes(dataset):
    _, expected, _ = GOLDEN_NON_ATTRIBUTED[dataset]
    result = run(workload="mcf", dataset=dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert len(result.value) == expected
    assert result.aggregated == expected


@pytest.mark.parametrize("dataset", sorted(GOLDEN_NON_ATTRIBUTED))
def test_pattern_match_counts(dataset):
    _, _, expected = GOLDEN_NON_ATTRIBUTED[dataset]
    result = run(workload="gm", dataset=dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert result.value == expected


#: workload/dataset -> digest of the exact community/cluster membership
#: (canonicalised by ``regen_golden.group_digest``).  Unlike the count
#: above, these trip on any change to *which vertices* end up grouped
#: together, not just how many groups exist.
GOLDEN_GROUP_DIGESTS = {
    "cd/dblp-s": "fb2daacc036ef107",
    "cd/tencent-s": "4a43e03aece82584",
    "gc/dblp-s": "d9d3a1ff604d94db",
    "gc/tencent-s": "d475dff4bdad0b39",
}


@pytest.mark.parametrize("dataset", sorted(GOLDEN_COMMUNITIES))
def test_community_counts(dataset):
    result = run(workload="cd", dataset=dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert len(result.value) == GOLDEN_COMMUNITIES[dataset]


@pytest.mark.parametrize("key", sorted(GOLDEN_GROUP_DIGESTS))
def test_group_memberships_exact(key):
    workload, dataset = key.split("/")
    result = run(workload=workload, dataset=dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert group_digest(result.value) == GOLDEN_GROUP_DIGESTS[key]


#: workload/dataset -> exact work units of the single-thread baseline.
#: These pin the *cost model*, not just the results: simulated seconds
#: are work units divided by core speed, so any kernel change that
#: alters a total silently shifts every reported time.  The values were
#: captured from the per-probe-charging implementation; the vectorised
#: kernels must reproduce them exactly (the work-unit-invariance
#: contract in DESIGN.md).
WORK_UNIT_PINS = {
    "tc/skitter-s": 110575.0,
    "tc/orkut-s": 2398340.0,
    "tc/btc-s": 532306.0,
    "tc/friendster-s": 3352784.0,
    "mcf/skitter-s": 26708.0,
    "mcf/btc-s": 199366.0,
    "gm/skitter-s": 25471.0,
    "gm/btc-s": 87578.0,
    "cd/dblp-s": 3837723.0,
    "cd/tencent-s": 15308973.0,
    "gc/dblp-s": 1311696.0,
}


@pytest.mark.parametrize("key", sorted(WORK_UNIT_PINS))
def test_work_unit_pins(key):
    workload, dataset = key.split("/")
    result = run(system="single-thread", workload=workload, dataset=dataset)
    assert result.stats["work_units"] == WORK_UNIT_PINS[key]


def test_graphlet_work_unit_pin():
    built = prepare_dataset("skitter-s", "gl")
    adjacency = {
        v: tuple(built.graph.neighbors(v)) for v in built.graph.vertices()
    }
    meter = WorkMeter()
    histogram = graphlet_count_sequential(3, adjacency, meter)
    assert meter.units == 8412916.0
    assert histogram == {"path3": 117329, "triangle": 5378}
