"""Graph substrate: structures, I/O, generators and dataset registry.

Provides the data the mining systems operate on.  The paper's datasets
(Table 2) are closed or cluster-scale; :mod:`repro.graph.datasets`
registers seeded synthetic stand-ins whose *relative* sizes, degree
skew and attribute structure mirror the originals.
"""

from repro.graph.graph import Graph, VertexData
from repro.graph.attributes import AttributeSpace, jaccard_similarity, weighted_similarity
from repro.graph.io import load_adjacency_text, dump_adjacency_text, parse_vertex_line
from repro.graph.generators import (
    preferential_attachment_graph,
    rmat_graph,
    planted_partition_graph,
    random_labels,
    random_attributes,
)
from repro.graph.datasets import DATASETS, DatasetInfo, load_dataset, dataset_table
from repro.graph.algorithms import (
    bfs_levels,
    connected_components_hashmin,
    degree_histogram,
    triangle_count_exact,
)

__all__ = [
    "Graph",
    "VertexData",
    "AttributeSpace",
    "jaccard_similarity",
    "weighted_similarity",
    "load_adjacency_text",
    "dump_adjacency_text",
    "parse_vertex_line",
    "preferential_attachment_graph",
    "rmat_graph",
    "planted_partition_graph",
    "random_labels",
    "random_attributes",
    "DATASETS",
    "DatasetInfo",
    "load_dataset",
    "dataset_table",
    "bfs_levels",
    "connected_components_hashmin",
    "degree_histogram",
    "triangle_count_exact",
]
