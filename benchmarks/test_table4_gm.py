"""Table 4 — graph matching: G-Miner vs the G-thinker-like system.

Expected shape: identical match counts; G-Miner faster, with higher
CPU utilisation and less network traffic."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_table4_gm(benchmark):
    report = run_experiment(benchmark, experiments.table4_gm)
    for dataset, d in report.data.items():
        assert d["gminer"].ok and d["gthinker"].ok, dataset
        assert d["gminer"].value == d["gthinker"].value, dataset
        assert d["gminer"].cpu_utilization > d["gthinker"].cpu_utilization
        assert d["gminer"].network_bytes < d["gthinker"].network_bytes
    faster = sum(
        1 for d in report.data.values()
        if d["gminer"].total_seconds < d["gthinker"].total_seconds
    )
    assert faster >= 3
