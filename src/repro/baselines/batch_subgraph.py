"""G-thinker-like batch subgraph-centric system (paper §2, §8.2).

Runs the *same* application task objects as G-Miner, but under the
batch processing framework the paper criticises: computation and
communication alternate in globally-barriered phases.

* **Compute phase** — every READY task runs on the worker's cores;
  tasks whose next round needs no remote data continue within the
  phase; tasks needing pulls park until the next comm phase.
* **Comm phase** — all parked pulls are exchanged at once; every
  worker waits at the barrier until the whole cluster's transfers
  complete.

Consequences measured in the paper and reproduced here: CPU sits idle
during comm phases (Figure 5's saw-tooth), every task lives in memory
for the whole job (no disk-backed store — higher memory, Table 4), the
cache is plain FIFO without LSH-ordered locality, and there is no task
stealing.  The aggregator still shares MCF's clique bound (workers see
their local best immediately and the global best at barriers), which
preserves G-thinker's famous superlinear pruning (§3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.baselines.common import make_result
from repro.core.aggregator import AggregatorState
from repro.core.api import GMinerApp
from repro.core.job import JobResult, JobStatus, _merged_meter
from repro.core.rcv_cache import CachePolicy, RCVCache
from repro.core.task import Task, TaskEnv, TaskStatus
from repro.graph.graph import Graph, VertexData
from repro.partitioning import HashPartitioner
from repro.sim.cluster import Cluster, ClusterSpec, build_cluster
from repro.sim.engine import Simulator
from repro.sim.errors import SimulatedOOMError
from repro.sim.metrics import UtilizationTimeline

#: Barrier overhead per phase (global synchronisation cost, seconds).
PHASE_BARRIER_SECONDS = 0.004
#: G-thinker keeps a larger in-memory vertex cache (no disk pipeline to
#: lean on); sized relative to G-Miner's default.
CACHE_CAPACITY_BYTES = 16_000_000


@dataclass
class _BatchWorker:
    """Per-worker state of the batch system."""

    worker_id: int
    vertex_table: Dict[int, VertexData]
    cache: RCVCache
    ready: List[Task] = field(default_factory=list)
    parked: List[Task] = field(default_factory=list)  # waiting for comm phase
    results: Dict[int, Any] = field(default_factory=dict)
    agg: Optional[AggregatorState] = None
    outstanding: int = 0  # task rounds in flight this compute phase


class BatchSubgraphSystem:
    """Barriered batch execution of G-Miner task applications."""

    name = "gthinker"

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        time_limit: Optional[float] = None,
    ) -> None:
        self.spec = spec or ClusterSpec()
        self.time_limit = time_limit
        self.cluster: Optional[Cluster] = None
        self.phases = 0

    # ------------------------------------------------------------------

    def run_app(self, app: GMinerApp, graph: Graph) -> JobResult:
        spec = self.spec
        sim = Simulator()
        cluster = build_cluster(spec, sim)
        self.cluster = cluster
        owner = HashPartitioner().partition(graph, spec.num_nodes).owner_of
        aggregator = app.make_aggregator()

        workers: List[_BatchWorker] = []
        for w in range(spec.num_nodes):
            node = cluster.node(w)
            cache = RCVCache(
                capacity_bytes=CACHE_CAPACITY_BYTES,
                policy=CachePolicy.FIFO,
                on_alloc=lambda n, node=node: node.allocate(n, "batch cache"),
                on_free=lambda n, node=node: node.free(n),
            )
            workers.append(
                _BatchWorker(
                    worker_id=w,
                    vertex_table={},
                    cache=cache,
                    agg=AggregatorState(aggregator) if aggregator else None,
                )
            )
        for v in graph.vertices():
            data = graph.vertex_data(v)
            w = owner(v)
            workers[w].vertex_table[v] = data

        status = JobStatus.OK
        live = {"n": 0}
        try:
            for bw in workers:
                node = cluster.node(bw.worker_id)
                node.allocate(
                    sum(d.estimate_size() for d in bw.vertex_table.values()),
                    "vertex table",
                )
                for vid in sorted(bw.vertex_table):
                    task = app.make_task(bw.vertex_table[vid])
                    if task is None:
                        continue
                    node.allocate(task.estimate_size(), "batch task")
                    live["n"] += 1
                    remote = [
                        v for v in task.to_pull if v not in bw.vertex_table
                    ]
                    task.to_pull = set(remote)
                    if remote:
                        task.status = TaskStatus.INACTIVE
                        bw.parked.append(task)
                    else:
                        task.status = TaskStatus.READY
                        bw.ready.append(task)
            self._run_phases(cluster, workers, owner, aggregator, live)
            sim.run(until=self.time_limit)
            if live["n"] > 0:
                status = JobStatus.TIMEOUT
        except SimulatedOOMError:
            status = JobStatus.OOM

        finish = sim.now
        results: Dict[int, Any] = {}
        for bw in workers:
            results.update(bw.results)
        value = app.combine_results(results.values()) if results else None
        meters = {
            "cpu": _merged_meter([n.cores.meter for n in cluster.nodes], "cpu"),
            "network": _merged_meter(
                [cluster.network.node_meter(n.node_id) for n in cluster.nodes],
                "network",
            ),
            "disk": _merged_meter([n.disk.meter for n in cluster.nodes], "disk"),
        }
        return make_result(
            status=status,
            app_name=app.name,
            value=value,
            total_seconds=finish,
            cpu_utilization=cluster.cpu_utilization(0.0, finish) if finish > 0 else 0.0,
            peak_memory_bytes=cluster.peak_memory_bytes(),
            network_bytes=cluster.network.bytes_counter.total,
            stats={
                "phases": float(self.phases),
                "cache_hits": float(sum(bw.cache.hits for bw in workers)),
                "cache_misses": float(sum(bw.cache.misses for bw in workers)),
            },
            timeline=UtilizationTimeline(meters=meters),
            mining_window=(0.0, finish),
        )

    # ------------------------------------------------------------------

    def _run_phases(self, cluster, workers, owner, aggregator, live) -> None:
        """Drive alternating compute/comm phases until no tasks remain."""
        sim = cluster.sim
        system = self

        def sync_aggregator():
            if aggregator is None:
                return
            partials = [bw.agg.local_partial for bw in workers]
            merged = aggregator.merge_all(partials)
            for bw in workers:
                bw.agg.receive_global(merged)

        def compute_phase():
            system.phases += 1
            barrier = {"n": len(workers)}

            def arrive():
                barrier["n"] -= 1
                if barrier["n"] == 0:
                    sync_aggregator()
                    sim.schedule(PHASE_BARRIER_SECONDS, comm_phase)

            for bw in workers:
                _worker_compute(cluster, bw, owner, live, arrive)

        def comm_phase():
            if live["n"] == 0:
                return  # job complete: no more events scheduled
            system.phases += 1
            barrier = {"n": len(workers)}

            def arrive():
                barrier["n"] -= 1
                if barrier["n"] == 0:
                    sync_aggregator()
                    sim.schedule(PHASE_BARRIER_SECONDS, compute_phase)

            for bw in workers:
                _worker_comm(cluster, bw, workers, owner, arrive)

        compute_phase()


def _worker_compute(cluster, bw: _BatchWorker, owner, live, arrive) -> None:
    """Run all of one worker's ready tasks; tasks continue in-phase when
    their next round needs no pull."""
    node = cluster.node(bw.worker_id)
    tasks, bw.ready = bw.ready, []
    bw.outstanding = 0

    def finish_round(task: Task) -> None:
        if task.finished:
            if task.result is not None:
                bw.results[task.task_id] = task.result
            node.free(getattr(task, "_accounted_size", task.estimate_size()))
            live["n"] -= 1
            return
        remote = [v for v in task.to_pull if v not in bw.vertex_table]
        task.to_pull = set(remote)
        if not remote:
            submit(task)  # continue immediately within the phase
        else:
            task.status = TaskStatus.INACTIVE
            bw.parked.append(task)

    def submit(task: Task) -> None:
        bw.outstanding += 1

        def factory():
            cand_objs: Dict[int, VertexData] = {}
            missing: List[int] = []
            for vid in task.candidates:
                data = bw.vertex_table.get(vid) or bw.cache.peek(vid)
                if data is None:
                    missing.append(vid)
                else:
                    cand_objs[vid] = data
            if missing:
                # evicted since the comm phase: park for a re-pull
                def requeue():
                    task.to_pull = set(missing)
                    task.status = TaskStatus.INACTIVE
                    bw.parked.append(task)
                    done()

                return (1.0, requeue)
            env = TaskEnv(
                worker_id=bw.worker_id,
                aggregated=bw.agg.best_known if bw.agg else None,
                push=bw.agg.offer if bw.agg else None,
            )
            work = task.run_round(cand_objs, env)

            def on_done():
                old = getattr(task, "_accounted_size", 0)
                new = task.estimate_size()
                if new > old:
                    node.allocate(new - old, "batch task growth")
                else:
                    node.free(old - new)
                setattr(task, "_accounted_size", new)
                finish_round(task)
                done()

            return (work, on_done)

        node.cores.submit_lazy(factory)

    def done() -> None:
        bw.outstanding -= 1
        if bw.outstanding == 0:
            arrive()

    if not tasks:
        arrive()
        return
    for task in tasks:
        setattr(task, "_accounted_size", task.estimate_size())
        submit(task)


def _worker_comm(cluster, bw: _BatchWorker, workers, owner, arrive) -> None:
    """Batch-exchange every parked task's pulls, then mark tasks ready."""
    tasks, bw.parked = bw.parked, []
    needed: Set[int] = set()
    for task in tasks:
        for vid in task.to_pull:
            if bw.cache.lookup(vid) is None:
                needed.add(vid)
    by_owner: Dict[int, List[int]] = {}
    for vid in sorted(needed):
        by_owner.setdefault(owner(vid), []).append(vid)

    pending = {"n": len(by_owner)}

    def complete_if_done():
        if pending["n"] == 0:
            for task in tasks:
                task.status = TaskStatus.READY
                bw.ready.append(task)
            arrive()

    if not by_owner:
        complete_if_done()
        return

    for peer, vids in sorted(by_owner.items()):
        request_bytes = 16 + 8 * len(vids)
        response_payload = [
            workers[peer].vertex_table[v]
            for v in vids
            if v in workers[peer].vertex_table
        ]
        response_bytes = 16 + sum(d.estimate_size() for d in response_payload)

        def deliver(payload=response_payload):
            for data in payload:
                bw.cache.insert(data, refs=0)
            pending["n"] -= 1
            complete_if_done()

        def respond(peer=peer, payload=response_payload, nbytes=response_bytes):
            cluster.network.send(
                peer, bw.worker_id, nbytes, payload, on_delivered=lambda m: deliver()
            )

        cluster.network.send(bw.worker_id, peer, request_bytes, None,
                             on_delivered=lambda m, respond=respond: respond())
