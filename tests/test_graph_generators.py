"""Unit tests for the synthetic graph generators."""

import pytest

from repro.graph.attributes import AttributeSpace
from repro.graph.generators import (
    planted_partition_graph,
    preferential_attachment_graph,
    random_attributes,
    random_labels,
    rmat_graph,
)
from repro.graph.algorithms import triangle_count_exact


class TestPreferentialAttachment:
    def test_deterministic(self):
        a = preferential_attachment_graph(50, 3, seed=1)
        b = preferential_attachment_graph(50, 3, seed=1)
        assert {v: a.neighbors(v) for v in a.vertices()} == {
            v: b.neighbors(v) for v in b.vertices()
        }

    def test_seed_changes_graph(self):
        a = preferential_attachment_graph(50, 3, seed=1)
        b = preferential_attachment_graph(50, 3, seed=2)
        assert {v: a.neighbors(v) for v in a.vertices()} != {
            v: b.neighbors(v) for v in b.vertices()
        }

    def test_vertex_count(self):
        g = preferential_attachment_graph(100, 4, seed=0)
        assert g.num_vertices == 100

    def test_average_degree_near_2m(self):
        g = preferential_attachment_graph(300, 5, seed=0)
        assert g.avg_degree() == pytest.approx(10, rel=0.25)

    def test_triangle_closure_increases_clustering(self):
        lo = preferential_attachment_graph(300, 5, triangle_prob=0.0, seed=7)
        hi = preferential_attachment_graph(300, 5, triangle_prob=0.9, seed=7)
        assert triangle_count_exact(hi) > triangle_count_exact(lo)

    def test_max_degree_cap_respected(self):
        g = preferential_attachment_graph(400, 6, seed=3, max_degree=25)
        assert g.max_degree() <= 25

    def test_degree_skew_exists(self):
        g = preferential_attachment_graph(500, 4, seed=0)
        assert g.max_degree() > 3 * g.avg_degree()

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            preferential_attachment_graph(0, 1)
        with pytest.raises(ValueError):
            preferential_attachment_graph(10, 0)


class TestRMAT:
    def test_deterministic(self):
        a = rmat_graph(scale=8, edge_factor=4, seed=5)
        b = rmat_graph(scale=8, edge_factor=4, seed=5)
        assert a.num_edges == b.num_edges

    def test_hub_skew(self):
        g = rmat_graph(scale=9, edge_factor=8, seed=1)
        assert g.max_degree() > 5 * g.avg_degree()

    def test_degree_cap(self):
        g = rmat_graph(scale=9, edge_factor=8, seed=1, max_degree=20)
        assert g.max_degree() <= 20

    def test_no_self_loops(self):
        g = rmat_graph(scale=6, edge_factor=4, seed=2)
        for v in g.vertices():
            assert v not in g.neighbors(v)

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            rmat_graph(scale=0)
        with pytest.raises(ValueError):
            rmat_graph(scale=4, a=0.5, b=0.4, c=0.3)


class TestPlantedPartition:
    def test_membership_map_complete(self):
        g, members = planted_partition_graph(4, 10, seed=0)
        assert g.num_vertices == 40
        assert set(members) == set(range(40))
        assert set(members.values()) == {0, 1, 2, 3}

    def test_communities_denser_inside(self):
        g, members = planted_partition_graph(4, 20, p_in=0.5, p_out=0.01, seed=1)
        inside = outside = 0
        for v in g.vertices():
            for u in g.neighbors(v):
                if u > v:
                    if members[u] == members[v]:
                        inside += 1
                    else:
                        outside += 1
        assert inside > outside

    def test_deterministic(self):
        g1, _ = planted_partition_graph(3, 10, seed=9)
        g2, _ = planted_partition_graph(3, 10, seed=9)
        assert g1.num_edges == g2.num_edges


class TestDecorators:
    def test_random_labels_cover_alphabet(self, small_social_graph):
        random_labels(small_social_graph, alphabet=("a", "b"), seed=0)
        seen = {small_social_graph.label(v) for v in small_social_graph.vertices()}
        assert seen == {"a", "b"}

    def test_random_labels_deterministic(self, small_social_graph):
        random_labels(small_social_graph, seed=4)
        first = {v: small_social_graph.label(v) for v in small_social_graph.vertices()}
        random_labels(small_social_graph, seed=4)
        second = {v: small_social_graph.label(v) for v in small_social_graph.vertices()}
        assert first == second

    def test_random_attributes_one_per_dimension(self, small_social_graph):
        space = AttributeSpace(dimensions=3, values_per_dimension=5)
        random_attributes(small_social_graph, space=space, seed=0)
        for v in small_social_graph.vertices():
            attrs = small_social_graph.attributes(v)
            assert len(attrs) == 3
            dims = sorted(space.decode(a)[0] for a in attrs)
            assert dims == [0, 1, 2]

    def test_community_coherent_attributes(self):
        g, members = planted_partition_graph(2, 20, seed=3)
        space = AttributeSpace()
        random_attributes(g, space=space, seed=3, community_map=members, coherence=1.0)
        # full coherence: every member of a community has identical attrs
        by_comm = {}
        for v in g.vertices():
            by_comm.setdefault(members[v], set()).add(g.attributes(v))
        for attr_sets in by_comm.values():
            assert len(attr_sets) == 1
