"""The native execution engine: run G-Miner jobs for real.

``run_native(app, graph, config)`` executes the same tasks the
simulator models — the six legacy workloads and any compiled
:class:`~repro.plans.compiler.ExecutionPlan` — across a multiprocess
pool and returns an ordinary :class:`~repro.core.job.JobResult`:

* the seed-vertex space is cut into chunks (``native_chunk_size``)
  assigned round-robin to per-worker queues;
* idle workers *steal* from the tail of a seeded-random victim's
  queue, so a straggler chunk never serialises the pool;
* the graph (and app) is pickled **once** and shipped to each worker
  at spawn, with the pickled payload and the chunk layout memoised in
  the ambient :class:`~repro.parallel.cache.BuildCache` so repeated
  native runs skip serialisation entirely;
* per-chunk outcomes are merged **by chunk id** — never by completion
  order — so the value, ``num_results`` and every stats entry are
  bit-identical at any worker count and under any steal schedule.

Total work units are accounted exactly as the simulator does (seed
scan + per-round task charges); wall-clock time and schedule-dependent
diagnostics (steal counts, pool size) live in ``result.native``, kept
out of ``result.stats`` so stats stay byte-comparable across runs.

Native mode refuses failure plans: the fault machinery (link faults,
reboots, checkpoint recovery) lives in the simulated cluster and
silently ignoring a chaos schedule would make a "fault tolerance"
experiment vacuously pass.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import random
import time
import traceback
from contextlib import nullcontext
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro import kernels
from repro.core.api import GMinerApp
from repro.core.config import GMinerConfig
from repro.core.job import JobResult, JobStatus
from repro.graph.graph import Graph
from repro.native.runtime import ChunkOutcome, execute_chunk, make_data_source
from repro.parallel.cache import get_build_cache

#: Fixed steal seed: victim selection is deterministic per (seed,
#: worker), making reruns behave alike — though results never depend
#: on the steal schedule in the first place.
STEAL_SEED = 0xC0FFEE


def default_native_workers() -> int:
    """Default pool size: every core the host has."""
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# cached build artifacts
# ----------------------------------------------------------------------


def graph_payload(graph: Graph) -> bytes:
    """The pickled graph, memoised in the active build cache.

    Serialisation is the dominant setup cost of a pooled native run
    (the graph ships once per worker); keying the bytes on the graph
    fingerprint makes the second native run of the same graph a cache
    hit.
    """
    build = lambda: pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
    cache = get_build_cache()
    if cache is None:
        return build()
    return cache.lookup("native-graph", {"graph": graph.fingerprint()}, build)


def seed_chunks(graph: Graph, chunk_size: int) -> List[List[int]]:
    """Seed vertices cut into ascending-id chunks (cached like the
    partition assignment: a pure function of graph and chunk size)."""
    def build() -> List[List[int]]:
        vids = sorted(graph.vertices())
        return [vids[i : i + chunk_size] for i in range(0, len(vids), chunk_size)]

    cache = get_build_cache()
    if cache is None:
        return build()
    return cache.lookup(
        "native-chunks",
        {"graph": graph.fingerprint(), "chunk_size": chunk_size},
        build,
    )


# ----------------------------------------------------------------------
# the pool worker
# ----------------------------------------------------------------------


def _claim(
    worker_id: int,
    num_workers: int,
    queues: Sequence[Sequence[int]],
    counts,
    rng: random.Random,
) -> Tuple[Optional[int], bool]:
    """Pop the next chunk id: own queue head first, else steal.

    Stealing takes from the *tail* of a victim's queue (the classic
    discipline: the owner drains its head, thieves bite the far end)
    with the victim order drawn from the seeded per-worker RNG.
    ``counts`` holds ``(head, tail)`` pairs per worker under one lock.
    """
    with counts.get_lock():
        head, tail = counts[2 * worker_id], counts[2 * worker_id + 1]
        if head < tail:
            counts[2 * worker_id] = head + 1
            return queues[worker_id][head], False
        victims = [w for w in range(num_workers) if w != worker_id]
        rng.shuffle(victims)
        for victim in victims:
            vhead, vtail = counts[2 * victim], counts[2 * victim + 1]
            if vhead < vtail:
                counts[2 * victim + 1] = vtail - 1
                return queues[victim][vtail - 1], True
    return None, False


def _worker_main(
    worker_id: int,
    num_workers: int,
    app_bytes: bytes,
    graph_bytes: bytes,
    backend: Optional[str],
    chunks: List[List[int]],
    queues: List[List[int]],
    counts,
    out_queue,
) -> None:
    """Pool-worker loop: unpickle once, then claim/steal until dry."""
    try:
        app = pickle.loads(app_bytes)
        graph = pickle.loads(graph_bytes)
        data_of = make_data_source(graph)
        rng = random.Random(STEAL_SEED * 2654435761 + worker_id)
        context = kernels.use_backend(backend) if backend else nullcontext()
        with context:
            while True:
                chunk_id, stolen = _claim(
                    worker_id, num_workers, queues, counts, rng
                )
                if chunk_id is None:
                    break
                outcome = execute_chunk(
                    app, graph, chunk_id, chunks[chunk_id], data_of
                )
                out_queue.put(("chunk", outcome, stolen))
        out_queue.put(("done", worker_id, None))
    except BaseException:  # ship the traceback; never hang the parent
        out_queue.put(("error", worker_id, traceback.format_exc()))


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork when available (cheap, no re-import); spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _run_pooled(
    app: GMinerApp,
    graph: Graph,
    chunks: List[List[int]],
    backend: Optional[str],
    num_workers: int,
) -> Tuple[List[ChunkOutcome], int]:
    """Fan the chunks out over ``num_workers`` processes."""
    ctx = _pool_context()
    queues: List[List[int]] = [[] for _ in range(num_workers)]
    for chunk_id in range(len(chunks)):
        queues[chunk_id % num_workers].append(chunk_id)
    counts = ctx.Array(
        "l", [x for queue in queues for x in (0, len(queue))], lock=True
    )
    out_queue = ctx.SimpleQueue()
    app_bytes = pickle.dumps(app, protocol=pickle.HIGHEST_PROTOCOL)
    graph_bytes = graph_payload(graph)
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(
                worker_id,
                num_workers,
                app_bytes,
                graph_bytes,
                backend,
                chunks,
                queues,
                counts,
                out_queue,
            ),
            daemon=True,
        )
        for worker_id in range(num_workers)
    ]
    for proc in procs:
        proc.start()
    outcomes: List[Optional[ChunkOutcome]] = [None] * len(chunks)
    steals = 0
    remaining = len(chunks)
    live = num_workers
    failure: Optional[str] = None
    while (remaining > 0 or live > 0) and failure is None:
        kind, payload, extra = out_queue.get()
        if kind == "chunk":
            outcomes[payload.chunk_id] = payload
            steals += int(extra)
            remaining -= 1
        elif kind == "done":
            live -= 1
        else:  # "error"
            failure = f"native worker {payload} died:\n{extra}"
    if failure is not None:
        for proc in procs:
            proc.terminate()
    for proc in procs:
        proc.join()
    if failure is not None:
        raise RuntimeError(failure)
    return outcomes, steals  # type: ignore[return-value]


def run_native(
    app: GMinerApp,
    graph: Graph,
    config: Optional[GMinerConfig] = None,
    failure_plan: Any = None,
    workers: Optional[int] = None,
) -> JobResult:
    """Execute ``app`` on ``graph`` for real; returns a JobResult.

    ``workers`` overrides ``config.native_workers`` (``None`` → every
    host core).  The returned result mirrors the simulated one where
    the quantity exists natively — ``value``, ``aggregated``,
    ``num_results``, ``stats["work_units"]``/``["tasks_created"]``/
    ``["rounds_executed"]`` — and records wall-clock time plus
    schedule-dependent diagnostics under ``result.native``.  Simulated
    clock/network/memory fields stay at zero: native runs have no
    simulated timeline.
    """
    config = config or GMinerConfig()
    if failure_plan is not None:
        raise ValueError(
            "native execution cannot run a failure_plan: fault injection "
            "(link faults, reboots, checkpoint recovery) lives in the "
            "simulated cluster — use execution='sim' for chaos runs "
            "instead of letting native mode silently ignore the schedule"
        )
    num_workers = workers or config.native_workers or default_native_workers()
    backend = config.kernel_backend
    started = time.perf_counter()
    chunks = seed_chunks(graph, config.native_chunk_size)
    num_workers = max(1, min(num_workers, len(chunks) or 1))
    steals = 0
    if num_workers == 1:
        context = kernels.use_backend(backend) if backend else nullcontext()
        data_of = make_data_source(graph)
        with context:
            outcomes = [
                execute_chunk(app, graph, chunk_id, chunk, data_of)
                for chunk_id, chunk in enumerate(chunks)
            ]
    else:
        outcomes, steals = _run_pooled(app, graph, chunks, backend, num_workers)
    wall_seconds = time.perf_counter() - started

    # deterministic reduction: chunk id (ascending seed id) order, never
    # completion order — the engine's bit-identity contract
    results: List[Any] = []
    offers: List[Any] = []
    work_units = 0.0
    rounds = 0
    tasks_created = 0
    for outcome in outcomes:
        results.extend(outcome.results)
        offers.extend(outcome.offers)
        work_units += outcome.work_units
        rounds += outcome.rounds
        tasks_created += outcome.tasks_created

    value = app.combine_results(results) if results else None
    aggregated = None
    aggregator = app.make_aggregator()
    if aggregator is not None:
        aggregated = aggregator.merge_all(offers) if offers else aggregator.initial()

    stats: Dict[str, float] = {
        "work_units": work_units,
        "tasks_created": tasks_created,
        "rounds_executed": rounds,
        "native_chunks": len(chunks),
    }
    result = JobResult(
        status=JobStatus.OK,
        app_name=app.name,
        value=value,
        aggregated=aggregated,
        num_results=len(results),
        stats=stats,
    )
    result.native = {
        "execution": "native",
        "workers": num_workers,
        "chunk_size": config.native_chunk_size,
        "steals": steals,
        "wall_seconds": wall_seconds,
        "backend": backend or kernels.get_backend(),
    }
    return result
