"""Failure injection for fault-tolerance experiments.

The paper's recovery story (§7): when a slave dies, the master re-runs
the dead worker's tasks from the previous checkpoint while live workers
keep going, and task stealing re-spreads the recovered load.  A
:class:`FailurePlan` schedules node kills (and optional recoveries) at
chosen simulated times so those paths can be exercised and benchmarked.

Beyond binary node death, a plan can degrade individual links: seeded
message loss, duplication, reordering, straggler (slow-link)
multipliers and partition windows, all declared up front and replayed
deterministically from ``plan.seed`` (see
:class:`repro.sim.network.LinkFaultModel`).  Chaos schedules are data,
not code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.cluster import Cluster
from repro.sim.network import LinkFaultModel, LinkFaultSpec


@dataclass(frozen=True)
class FailureEvent:
    """Kill ``node_id`` at ``at_time``; recover after ``recovery_delay``
    seconds unless it is ``None`` (permanent failure)."""

    node_id: int
    at_time: float
    recovery_delay: Optional[float] = None


@dataclass
class FailurePlan:
    """An ordered collection of node failures and link faults.

    ``seed`` drives every probabilistic link fault; two runs armed with
    equal plans produce identical degraded timelines.  The builder
    methods all return ``self`` so schedules chain fluently::

        plan = (
            FailurePlan(seed=7)
            .kill(2, at_time=0.3, recovery_delay=0.05)
            .lossy(0.1, start=0.1, end=0.6)
            .partition(src=0, dst=1, start=0.2, end=0.35)
        )
    """

    events: List[FailureEvent] = field(default_factory=list)
    link_faults: List[LinkFaultSpec] = field(default_factory=list)
    seed: int = 0

    # -- node failures -------------------------------------------------

    def kill(self, node_id: int, at_time: float, recovery_delay: Optional[float] = None):
        self.events.append(FailureEvent(node_id, at_time, recovery_delay))
        return self

    # -- link faults ---------------------------------------------------

    def lossy(self, rate: float, src=None, dst=None, start=0.0, end=math.inf):
        """Drop each matching message with probability ``rate``."""
        self.link_faults.append(
            LinkFaultSpec(src=src, dst=dst, start=start, end=end, loss=rate)
        )
        return self

    def duplicating(self, rate: float, src=None, dst=None, start=0.0, end=math.inf):
        """Deliver a second copy of each matching message with
        probability ``rate`` (exercises receiver-side dedup)."""
        self.link_faults.append(
            LinkFaultSpec(src=src, dst=dst, start=start, end=end, duplicate=rate)
        )
        return self

    def reordering(
        self, rate: float, delay: float = 0.005, src=None, dst=None,
        start=0.0, end=math.inf,
    ):
        """Hold each matching message back by ``delay`` with probability
        ``rate`` so later sends overtake it."""
        self.link_faults.append(
            LinkFaultSpec(
                src=src, dst=dst, start=start, end=end,
                reorder=rate, reorder_delay=delay,
            )
        )
        return self

    def slow_link(self, factor: float, src=None, dst=None, start=0.0, end=math.inf):
        """Multiply matching messages' latency by ``factor`` (straggler)."""
        self.link_faults.append(
            LinkFaultSpec(src=src, dst=dst, start=start, end=end, slow_factor=factor)
        )
        return self

    def partition(self, src=None, dst=None, *, start: float, end: float):
        """Drop *all* matching traffic during ``[start, end)``.

        Note the drop is directional: partitioning ``src → dst`` does
        not silence ``dst → src``; declare both for a symmetric cut.
        """
        self.link_faults.append(
            LinkFaultSpec(src=src, dst=dst, start=start, end=end, partition=True)
        )
        return self

    # -- validation / compilation --------------------------------------

    def validate(self, num_nodes: Optional[int] = None) -> None:
        """Fail fast on malformed schedules; raise ``ValueError``.

        Rejects negative/NaN times, kills of a node that is already
        dead at that instant (a duplicate kill can never trigger — it
        is a schedule bug, not a chaos input), and — when ``num_nodes``
        is known — events naming unknown node ids.
        """
        for event in self.events:
            if math.isnan(event.at_time) or event.at_time < 0:
                raise ValueError(
                    f"failure at_time must be a non-negative simulated time, "
                    f"got {event.at_time!r} for node {event.node_id}"
                )
            if event.recovery_delay is not None and (
                math.isnan(event.recovery_delay) or event.recovery_delay <= 0
            ):
                raise ValueError(
                    f"recovery_delay must be a positive time or None "
                    f"(permanent), got {event.recovery_delay!r} for node "
                    f"{event.node_id}"
                )
            if num_nodes is not None and not 0 <= event.node_id < num_nodes:
                raise ValueError(
                    f"failure plan names unknown node id {event.node_id}; "
                    f"the cluster has nodes [0, {num_nodes})"
                )
        # duplicate-kill check: walk each node's kills in time order and
        # reject any kill landing inside an earlier kill's dead window
        by_node = {}
        for event in sorted(self.events, key=lambda e: e.at_time):
            previous = by_node.get(event.node_id)
            if previous is not None:
                dead_until = (
                    math.inf
                    if previous.recovery_delay is None
                    else previous.at_time + previous.recovery_delay
                )
                if event.at_time < dead_until:
                    raise ValueError(
                        f"duplicate kill of node {event.node_id} at "
                        f"t={event.at_time}: it is already dead from the "
                        f"kill at t={previous.at_time} "
                        + (
                            "(permanent failure)"
                            if previous.recovery_delay is None
                            else f"until t={dead_until}"
                        )
                    )
            by_node[event.node_id] = event
        for spec in self.link_faults:
            spec.validate(num_nodes=num_nodes)

    def build_link_fault_model(self) -> Optional[LinkFaultModel]:
        """Compile the declared link faults, or ``None`` if there are
        none (so fault-free fabrics carry zero fault-layer state)."""
        if not self.link_faults:
            return None
        return LinkFaultModel(self.link_faults, seed=self.seed)

    def __iter__(self):
        return iter(sorted(self.events, key=lambda e: e.at_time))


class FailureInjector:
    """Arms a :class:`FailurePlan` against a built cluster.

    The injector is the *physical* layer: it halts nodes, silences their
    links and later brings them back.  How the rest of the system finds
    out is the protocol's problem — by default the master's heartbeat
    monitor — though the ``on_fail``/``on_recover`` hooks still fire at
    the physical instant for bookkeeping (and as the test-only oracle
    detection path).
    """

    def __init__(
        self,
        cluster: Cluster,
        plan: FailurePlan,
        on_fail: Optional[Callable[[int], None]] = None,
        on_recover: Optional[Callable[[int], None]] = None,
        controller=None,
    ) -> None:
        self.cluster = cluster
        self.plan = plan
        self.on_fail = on_fail
        self.on_recover = on_recover
        self.controller = controller
        self.failures_triggered: List[FailureEvent] = []

    def arm(self) -> None:
        """Validate the plan, then schedule every failure event."""
        self.plan.validate(num_nodes=len(self.cluster.nodes))
        for event in self.plan:
            self.cluster.sim.schedule_at(
                event.at_time, lambda e=event: self._trigger(e)
            )

    def _trigger(self, event: FailureEvent) -> None:
        if self.controller is not None and self.controller.finished:
            return  # the job already completed; a late kill is pure churn
        node = self.cluster.node(event.node_id)
        if not node.alive:
            return
        node.fail()
        self.cluster.network.set_node_down(event.node_id, True)
        self.failures_triggered.append(event)
        if self.on_fail is not None:
            self.on_fail(event.node_id)
        if event.recovery_delay is not None:
            self.cluster.sim.schedule(
                event.recovery_delay, lambda: self._recover(event.node_id)
            )

    def _recover(self, node_id: int) -> None:
        if self.controller is not None and self.controller.finished:
            return  # the job already completed; reviving is pointless churn
        node = self.cluster.node(node_id)
        node.recover()
        self.cluster.network.set_node_down(node_id, False)
        if self.on_recover is not None:
            self.on_recover(node_id)
