"""Determinism: identical configuration must give bit-identical runs.

The whole reproduction strategy rests on the simulator being
deterministic — seeded datasets, FIFO tie-breaking in the event heap,
no wall-clock anywhere.  These tests pin that property at every level.
"""

import pytest

from repro.apps import GraphMatchingApp, MaxCliqueApp, TriangleCountingApp
from repro.bench.runner import run
from repro.core import GMinerConfig, GMinerJob
from repro.graph.datasets import load_dataset
from repro.sim.cluster import ClusterSpec

SPEC = ClusterSpec(num_nodes=4, cores_per_node=2)


def fingerprint(result):
    return (
        result.status,
        result.value if not isinstance(result.value, list) else tuple(result.value),
        round(result.total_seconds, 12),
        round(result.mining_seconds, 12),
        result.peak_memory_bytes,
        result.network_bytes,
        tuple(sorted(result.stats.items())),
    )


class TestJobDeterminism:
    @pytest.mark.parametrize("app_cls", [TriangleCountingApp, MaxCliqueApp])
    def test_identical_runs(self, small_social_graph, app_cls):
        config = GMinerConfig(cluster=SPEC)
        a = GMinerJob(app_cls(), small_social_graph, config).run()
        b = GMinerJob(app_cls(), small_social_graph, config).run()
        assert fingerprint(a) == fingerprint(b)

    def test_gm_with_all_features(self, small_labeled_graph):
        config = GMinerConfig(
            cluster=SPEC,
            enable_splitting=True,
            split_candidate_threshold=16,
            checkpoint_interval=0.05,
            enable_tracing=True,
        )
        a = GMinerJob(GraphMatchingApp(), small_labeled_graph, config).run()
        b = GMinerJob(GraphMatchingApp(), small_labeled_graph, config).run()
        assert fingerprint(a) == fingerprint(b)
        assert len(a.trace) == len(b.trace)

    def test_datasets_are_stable(self):
        """The registry's graphs never change under the same seeds —
        every number in EXPERIMENTS.md depends on this."""
        g = load_dataset("orkut-s").graph
        assert (g.num_vertices, g.num_edges, g.max_degree()) == (2000, 49402, 120)
        g = load_dataset("skitter-s").graph
        assert (g.num_vertices, g.num_edges) == (750, 4072)

    def test_baselines_deterministic(self, small_social_graph):
        for system in ("giraph", "gthinker"):
            a = run(system=system, workload="tc", dataset="skitter-s", spec=SPEC)
            b = run(system=system, workload="tc", dataset="skitter-s", spec=SPEC)
            assert fingerprint(a) == fingerprint(b), system

    def test_runner_is_deterministic_across_overrides(self):
        a = run(workload="mcf", dataset="skitter-s", spec=SPEC, enable_lsh=False)
        b = run(workload="mcf", dataset="skitter-s", spec=SPEC, enable_lsh=False)
        assert fingerprint(a) == fingerprint(b)


class TestConfigIndependence:
    """Changing performance knobs must never change mining *results*."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {"partitioner": "hash"},
            {"enable_lsh": False},
            {"enable_stealing": False},
            {"cache_capacity_bytes": 4096},
            {"store_block_tasks": 2},
            {"max_inflight_tasks": 1},
            {"cpq_per_core": 5},
            {"task_buffer_batch": 1},
            {"processes_per_node": 2},
            {"agg_interval": 0.001},
        ],
    )
    def test_mcf_value_invariant(self, small_social_graph, overrides):
        base = GMinerJob(
            MaxCliqueApp(), small_social_graph, GMinerConfig(cluster=SPEC)
        ).run()
        varied = GMinerJob(
            MaxCliqueApp(),
            small_social_graph,
            GMinerConfig(cluster=SPEC).replace(**overrides),
        ).run()
        assert len(varied.value) == len(base.value), overrides
