"""Numpy kernel backend: vectorised sorted-set operations.

Handles are 1-D ``int64`` ndarrays, sorted and duplicate-free.  The
binary operations use ``searchsorted`` — one vectorised binary search
of the smaller operand into the larger — which is simultaneously the
merge *and* the galloping strategy: O(small · log large) with all the
per-element work in C.  ``slice_gt`` is a zero-copy view.

This module must import cleanly without numpy (``AVAILABLE`` guards
it); the dispatch layer never routes calls here when numpy is absent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

try:
    import numpy as _np

    AVAILABLE = True
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None
    AVAILABLE = False

_EMPTY = _np.empty(0, dtype=_np.int64) if AVAILABLE else None


def as_array(seq: Iterable[int]):
    if isinstance(seq, _np.ndarray):
        return seq
    arr = _np.asarray(
        seq if isinstance(seq, (tuple, list)) else tuple(seq), dtype=_np.int64
    )
    if arr.size > 1 and not (_np.diff(arr) > 0).all():
        arr = _np.unique(arr)
    return arr


def tolist(arr) -> List[int]:
    return arr.tolist()


def unique_sorted(seq: Iterable[int]):
    return as_array(seq)


def _member_mask(a, b):
    """Boolean mask over ``a`` marking elements present in ``b``."""
    idx = _np.searchsorted(b, a)
    idx[idx == b.size] = 0
    return b[idx] == a if b.size else _np.zeros(a.size, dtype=bool)


def intersect(a, b):
    a, b = (a, b) if a.size <= b.size else (b, a)
    if a.size == 0:
        return _EMPTY
    return a[_member_mask(a, b)]


def intersect_count(a, b) -> int:
    a, b = (a, b) if a.size <= b.size else (b, a)
    if a.size == 0:
        return 0
    return int(_np.count_nonzero(_member_mask(a, b)))


def difference(a, b):
    if a.size == 0 or b.size == 0:
        return a
    return a[~_member_mask(a, b)]


def union(a, b):
    if a.size == 0:
        return b
    if b.size == 0:
        return a
    return _np.union1d(a, b)


def contains(hay, needles: Sequence[int]) -> List[bool]:
    n = _np.asarray(needles, dtype=_np.int64)
    if hay.size == 0:
        return [False] * n.size
    idx = _np.searchsorted(hay, n)
    idx[idx == hay.size] = 0
    return (hay[idx] == n).tolist()


def slice_gt(arr, x: int):
    return arr[_np.searchsorted(arr, x, side="right"):]


def intersect_count_many(
    arrays: Sequence, thresholds: Sequence[int], target
) -> Tuple[int, int]:
    """One concatenated membership pass instead of a call per array —
    the per-seed batching that makes small-neighbourhood graphs worth
    vectorising at all."""
    if not arrays:
        return 0, 0
    arrays = [
        a if isinstance(a, _np.ndarray) else as_array(a) for a in arrays
    ]
    concat = _np.concatenate(arrays) if len(arrays) > 1 else arrays[0]
    scanned = int(concat.size)
    if scanned == 0 or target.size == 0:
        return 0, scanned
    per_element_threshold = _np.repeat(
        _np.asarray(thresholds, dtype=_np.int64), [a.size for a in arrays]
    )
    low, high = int(concat[0] if concat.size == 1 else concat.min()), int(target[-1])
    if 0 <= low and high < max(1 << 16, 8 * (scanned + int(target.size))):
        # dense-id fast path: O(ids + elements) boolean table beats the
        # O(elements · log target) binary searches by a wide margin
        table = _np.zeros(high + 1, dtype=bool)
        table[target] = True
        in_range = concat <= high
        hits = in_range.copy()
        hits[in_range] = table[concat[in_range]]
        hits &= concat > per_element_threshold
    else:
        idx = _np.searchsorted(target, concat)
        idx[idx == target.size] = 0
        hits = (target[idx] == concat) & (concat > per_element_threshold)
    return int(_np.count_nonzero(hits)), scanned
