"""Kernel-layer microbench smoke: regenerates BENCH_kernels.json.

Unlike the figure/table benchmarks this measures real wall-clock, so
the assertions are deliberately loose: the strict claims (identical
results, identical work units) are raised inside
:func:`benchmarks.kernels_bench.bench_kernels` itself, and the ≥3×
numpy-vs-seed speedup target is asserted only when numpy is present
(wall-clock speedups are environment-dependent; the reference backend
carries no such target).
"""

from benchmarks.kernels_bench import RESULTS_PATH, bench_kernels, save_report


def test_kernels_microbench(benchmark):
    report = benchmark.pedantic(bench_kernels, rounds=1, iterations=1)
    path = save_report(report)
    assert report["triangles"] > 0
    assert report["graph"]["edges"] >= 45_000
    assert "reference" in report["backends"]
    numpy_stats = report["backends"].get("numpy")
    if numpy_stats is not None:
        assert numpy_stats["speedup_vs_seed"] >= 3.0, (
            f"numpy backend speedup {numpy_stats['speedup_vs_seed']:.2f}x "
            "below the 3x target"
        )
    assert path.endswith("BENCH_kernels.json")
