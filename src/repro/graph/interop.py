"""Interoperability with NetworkX.

Downstream users usually already hold graphs as ``networkx`` objects;
these converters move them in and out of :class:`repro.graph.Graph`
(labels ↔ the ``"label"`` node attribute, attribute lists ↔ ``"attrs"``).
NetworkX is an optional dependency: importing this module without it
raises ``ImportError`` with a clear message, and the rest of the
library never needs it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.graph.graph import Graph

try:  # pragma: no cover - exercised via the import error test
    import networkx as _nx
except ImportError:  # pragma: no cover
    _nx = None


def _require_networkx():
    if _nx is None:
        raise ImportError(
            "networkx is required for repro.graph.interop; install it or "
            "use repro.graph.io / repro.graph.generators instead"
        )
    return _nx


def from_networkx(nx_graph: Any) -> Graph:
    """Convert a networkx (di)graph to a :class:`Graph`.

    Direction is dropped (G-Miner's discussion focuses on undirected
    graphs); node ids must be integers.  A node's ``"label"`` attribute
    becomes the mining label; ``"attrs"`` (an iterable of ints) becomes
    the attribute list.
    """
    _require_networkx()
    for node in nx_graph.nodes:
        if not isinstance(node, int):
            raise ValueError(
                f"vertex ids must be integers (got {node!r}); "
                "relabel with networkx.convert_node_labels_to_integers"
            )
    graph = Graph.from_edges(nx_graph.edges(), vertices=nx_graph.nodes())
    for node, data in nx_graph.nodes(data=True):
        label = data.get("label")
        if label is not None:
            graph.set_label(node, str(label))
        attrs = data.get("attrs")
        if attrs is not None:
            graph.set_attributes(node, [int(a) for a in attrs])
    return graph


def to_networkx(graph: Graph) -> Any:
    """Convert a :class:`Graph` to an undirected networkx graph."""
    nx = _require_networkx()
    out = nx.Graph()
    for vid in graph.vertices():
        node_attrs = {}
        label = graph.label(vid)
        if label is not None:
            node_attrs["label"] = label
        attrs = graph.attributes(vid)
        if attrs:
            node_attrs["attrs"] = list(attrs)
        out.add_node(vid, **node_attrs)
    for vid in graph.vertices():
        for u in graph.neighbors(vid):
            if u > vid:
                out.add_edge(vid, u)
    return out
