"""Unit tests for stand-alone graph utilities."""

import pytest

from repro.graph.algorithms import (
    bfs_levels,
    connected_components_hashmin,
    degree_histogram,
    graph_density,
    is_clique,
    k_hop_neighborhood,
    triangle_count_exact,
)
from repro.graph.graph import Graph


class TestBFS:
    def test_levels(self, tiny_graph):
        levels = bfs_levels(tiny_graph, 0)
        assert levels[0] == 0
        assert levels[1] == 1
        assert levels[3] == 2
        assert levels[5] == 4

    def test_depth_bound(self, tiny_graph):
        levels = bfs_levels(tiny_graph, 0, max_depth=1)
        assert set(levels) == {0, 1, 2}

    def test_disconnected_unreached(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        assert 2 not in bfs_levels(g, 0)


class TestHashMin:
    def test_single_component(self, tiny_graph):
        cc = connected_components_hashmin(tiny_graph)
        assert set(cc.values()) == {0}

    def test_two_components(self):
        g = Graph.from_edges([(0, 1), (5, 6)])
        cc = connected_components_hashmin(g)
        assert cc[0] == cc[1] == 0
        assert cc[5] == cc[6] == 5

    def test_restricted_universe(self, tiny_graph):
        # restricting to {4, 5} disconnects them from the triangles
        cc = connected_components_hashmin(tiny_graph, vertices=[4, 5])
        assert cc[4] == cc[5] == 4

    def test_labels_are_component_minimum(self):
        g = Graph.from_edges([(9, 3), (3, 7), (2, 8)])
        cc = connected_components_hashmin(g)
        assert cc[9] == 3 and cc[7] == 3
        assert cc[8] == 2


class TestTriangles:
    def test_tiny_graph_count(self, tiny_graph):
        assert triangle_count_exact(tiny_graph) == 2

    def test_complete_graph(self):
        k5 = Graph.from_edges([(i, j) for i in range(5) for j in range(i + 1, 5)])
        assert triangle_count_exact(k5) == 10

    def test_triangle_free(self):
        path = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        assert triangle_count_exact(path) == 0


class TestCliqueAndDensity:
    def test_is_clique(self, tiny_graph):
        assert is_clique(tiny_graph, [0, 1, 2])
        assert is_clique(tiny_graph, [1, 2, 3])
        assert not is_clique(tiny_graph, [0, 1, 3])
        assert is_clique(tiny_graph, [4])

    def test_density_whole_graph(self):
        k4 = Graph.from_edges([(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert graph_density(k4) == pytest.approx(1.0)

    def test_density_induced(self, tiny_graph):
        assert graph_density(tiny_graph, [0, 1, 2]) == pytest.approx(1.0)
        assert graph_density(tiny_graph, [0, 4, 5]) == pytest.approx(1 / 3)

    def test_density_trivial(self, tiny_graph):
        assert graph_density(tiny_graph, [0]) == 0.0


class TestMisc:
    def test_degree_histogram(self, tiny_graph):
        hist = degree_histogram(tiny_graph)
        assert sum(hist.values()) == tiny_graph.num_vertices
        assert hist[1] == 1  # vertex 5

    def test_k_hop_neighborhood(self, tiny_graph):
        assert k_hop_neighborhood(tiny_graph, 0, 1) == {0, 1, 2}
        assert k_hop_neighborhood(tiny_graph, 0, 3) == {0, 1, 2, 3, 4}
