"""Message vocabulary of the G-Miner protocol.

Everything workers and the master exchange: vertex pulls (§4.3),
aggregator sync and progress reports (§5.1), the task-stealing
REQ/MIGRATE/No_Task protocol (§6.2), checkpoint commands and failure
notices (§7).  Every message knows its serialised size so the network
model can charge it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.core.task import Task
from repro.graph.graph import VertexData

_HEADER = 16  # framing bytes per message


@dataclass
class PullRequest:
    """Candidate retriever → remote worker: fetch these vertices."""

    requester: int
    vids: Tuple[int, ...]

    def size_bytes(self) -> int:
        return _HEADER + 8 * len(self.vids)


@dataclass
class PullResponse:
    """Remote worker → requester: the pulled vertex data."""

    vertices: Tuple[VertexData, ...]

    def size_bytes(self) -> int:
        return _HEADER + sum(v.estimate_size() for v in self.vertices)


@dataclass
class AggReport:
    """Worker → master: local aggregator partial."""

    worker: int
    partial: Any

    def size_bytes(self) -> int:
        return _HEADER + 16


@dataclass
class AggBroadcast:
    """Master → workers: the merged global aggregate."""

    value: Any

    def size_bytes(self) -> int:
        return _HEADER + 16


@dataclass
class ProgressReport:
    """Worker → master: pipeline occupancy for the progress table."""

    worker: int
    store_size: int
    cmq_size: int
    cpq_size: int
    busy_cores: int
    buffer_size: int
    idle: bool

    def size_bytes(self) -> int:
        return _HEADER + 48


@dataclass
class StealRequest:
    """Idle worker → master: REQ for more tasks (§6.2)."""

    worker: int

    def size_bytes(self) -> int:
        return _HEADER + 8


@dataclass
class MigrateCommand:
    """Master → loaded worker: ship up to ``count`` tasks to ``dest``."""

    dest: int
    count: int

    def size_bytes(self) -> int:
        return _HEADER + 16


@dataclass
class TaskMigration:
    """Loaded worker → idle worker: the migrated tasks themselves."""

    source: int
    tasks: List[Task] = field(default_factory=list)

    def size_bytes(self) -> int:
        return _HEADER + sum(int(t.estimate_size()) for t in self.tasks)


@dataclass
class NoTask:
    """Victim (via master) → requester: nothing worth migrating."""

    source: int

    def size_bytes(self) -> int:
        return _HEADER


@dataclass
class CheckpointCommand:
    """Master → workers: snapshot your state to HDFS now (§7)."""

    epoch: int

    def size_bytes(self) -> int:
        return _HEADER + 8


@dataclass
class WorkerDown:
    """Master → workers: this worker is unreachable; park its pulls."""

    worker: int

    def size_bytes(self) -> int:
        return _HEADER + 8


@dataclass
class WorkerUp:
    """Master → workers: recovered; re-issue parked pulls."""

    worker: int

    def size_bytes(self) -> int:
        return _HEADER + 8
