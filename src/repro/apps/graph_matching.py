"""Graph matching (GM) on G-Miner.

Implements the paper's running example (Figure 1, Listing 2): a task
seeds at every vertex whose label matches the pattern root; round ``r``
matches the pattern's level-``r`` nodes against the pulled candidates,
growing the set of partial embeddings, until the full pattern depth is
reached and the match count is reported.

GM's memory weight comes from the partial-embedding sets the tasks
carry (the paper's "complex workload"), which the task accounts via
``context_size``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.graph import VertexData
from repro.mining.matching import (
    PartialEmbedding,
    estimate_partials_size,
    frontier_vertices,
    match_level,
)
from repro.mining.patterns import PAPER_PATTERN, TreePattern


class GMTask(Task):
    """Multi-round task: one pattern level matched per round."""

    def __init__(self, seed: VertexData, pattern: TreePattern) -> None:
        super().__init__(seed)
        self.pattern = pattern
        self.partials: List[PartialEmbedding] = [((seed.vid,),)]
        # vertex data this task has observed: the matcher draws labels
        # and adjacency from here (the paper's growing subG state)
        self.known: Dict[int, VertexData] = {seed.vid: seed}
        # round 1 matches level 1 among the root's neighbours
        self.pull(seed.neighbors)

    def split(self) -> Optional[List[Task]]:
        """Recursive task splitting (the paper's §9 extension).

        A task whose partial-embedding set has fanned out splits into
        two children, each carrying half the partials and continuing
        from the same round.  Counts stay exact because embeddings
        partition cleanly.
        """
        if len(self.partials) < 2 or self.round >= self.pattern.depth:
            return None
        mid = len(self.partials) // 2
        children = []
        for chunk in (self.partials[:mid], self.partials[mid:]):
            child = GMTask.__new__(GMTask)
            Task.__init__(child, self.seed)
            child.pattern = self.pattern
            child.partials = list(chunk)
            child.known = dict(self.known)
            child.round = self.round
            frontier = frontier_vertices(chunk, self.pattern, self.round + 1)
            needed: Set[int] = set()
            for vid in frontier:
                needed.update(child.known[vid].neighbors)
            child.pull(needed - set(child.known))
            children.append(child)
        return children

    def context_size(self) -> int:
        known_bytes = sum(
            16 + 8 * len(d.neighbors) for d in self.known.values()
        )
        return estimate_partials_size(self.partials) + known_bytes

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        self.known.update(cand_objs)
        labels = {vid: data.label for vid, data in self.known.items()}
        adjacency = {vid: data.neighbors for vid, data in self.known.items()}
        level_nodes = self.pattern.level_nodes(self.round)
        self.partials = match_level(
            self.partials, level_nodes, labels, adjacency, meter=self
        )
        if not self.partials:
            self.finish(None)
            return
        for partial in self.partials:
            self.subgraph.add_nodes(partial[-1])
        if self.round == self.pattern.depth:
            self.finish(len(self.partials))
            return
        frontier = frontier_vertices(self.partials, self.pattern, self.round + 1)
        needed: Set[int] = set()
        for vid in frontier:
            needed.update(self.known[vid].neighbors)
        self.pull(needed - set(self.known))


class GraphMatchingApp(GMinerApp):
    """Count embeddings of a tree pattern; job value is the total."""

    name = "gm"

    def __init__(self, pattern: TreePattern = PAPER_PATTERN) -> None:
        pattern.validate()
        self.pattern = pattern

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        if vertex.label != self.pattern.root_label:
            return None
        return GMTask(vertex, self.pattern)

    def combine_results(self, results) -> int:
        return sum(r for r in results if r is not None)
