#!/usr/bin/env python
"""Compiling a custom motif: from pattern vocabulary to a mining job.

No hand-written application exists for the "tailed triangle" (a
triangle with a pendant vertex), and none is needed: describe it as a
tree skeleton plus one extra edge, let the compiler derive the
symmetry-broken execution plan, and run it on the same task pipeline
as every built-in workload.  The count is cross-checked against the
brute-force oracle.

Run:  python examples/custom_motif.py
"""

import repro
from repro.core import GMinerConfig
from repro.graph.generators import preferential_attachment_graph
from repro.mining import make_pattern
from repro.plans import (
    PatternQuery,
    compile_pattern,
    count_embeddings_bruteforce,
    motif,
)
from repro.sim.cluster import ClusterSpec


def main() -> None:
    graph = preferential_attachment_graph(
        n=400, m=6, triangle_prob=0.6, seed=11, max_degree=50
    )
    print(f"input graph: {graph}")

    # 1. The pattern, as a query: a wildcard tree skeleton — root with
    #    two children, one grandchild — plus one extra edge closing the
    #    triangle between the root's children.  symmetry="auto" counts
    #    each tailed triangle exactly once (the named motif
    #    motif("tailed-triangle") is this same query).
    skeleton = make_pattern("*", [("*", 0), ("*", 0)], [("*", 0)])
    query = PatternQuery(
        pattern=skeleton, edges=((1, 2),), symmetry="auto",
        name="tailed-triangle",
    )

    # 2. Compile it.  The compiler enumerates the pattern's
    #    automorphisms, breaks them with order constraints, and derives
    #    a connected, degree-greedy extension order; the final step is
    #    fused into a count (no last-level pull).
    plan = compile_pattern(query)
    print("\ncompiled plan:")
    print(plan.describe())

    # 3. Run it — same call as any built-in workload.
    config = GMinerConfig(cluster=ClusterSpec(num_nodes=4, cores_per_node=4))
    result = repro.mine(graph, pattern=plan, config=config)
    print(f"status          : {result.status.value}")
    print(f"tailed triangles: {result.value}")
    print(f"simulated time  : {result.total_seconds:.3f}s")
    print(f"network traffic : {result.network_bytes / 1e6:.2f} MB")

    # 4. Verify against the plan-free brute-force oracle.
    expected = count_embeddings_bruteforce(query, graph)
    assert (result.value or 0) == expected, (result.value, expected)
    print(f"oracle agrees   : {expected}")

    # The same motif is registered by name, and labelled or
    # attribute-constrained variants are one keyword away:
    named = repro.mine(graph, pattern="tailed-triangle", config=config)
    assert named.value == result.value
    print(f"named motif     : {sorted(repro.plans.MOTIFS)}")


if __name__ == "__main__":
    main()
