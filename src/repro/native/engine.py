"""The native execution engine: run G-Miner jobs for real.

``run_native(app, graph, config)`` executes the same tasks the
simulator models — the six legacy workloads and any compiled
:class:`~repro.plans.compiler.ExecutionPlan` — across a multiprocess
pool and returns an ordinary :class:`~repro.core.job.JobResult`:

* the seed-vertex space is cut into chunks (``native_chunk_size``)
  assigned round-robin to per-worker queues;
* idle workers *steal* from the tail of a seeded-random victim's
  queue, so a straggler chunk never serialises the pool;
* the graph (and app) is pickled **once** and shipped to each worker
  at spawn, with the pickled payload and the chunk layout memoised in
  the ambient :class:`~repro.parallel.cache.BuildCache` so repeated
  native runs skip serialisation entirely;
* per-chunk outcomes are merged **by chunk id** — never by completion
  order — so the value, ``num_results`` and every stats entry are
  bit-identical at any worker count and under any steal schedule;
* the pool runs under the :mod:`~repro.native.supervisor`: worker
  deaths, hangs (chunk-lease deadlines) and transient chunk errors are
  retried/respawned within bounded budgets, poison chunks surface a
  structured :class:`~repro.native.supervisor.NativeChunkError`, and —
  because chunk outcomes are pure — results under every *survivable*
  fault schedule are bit-identical to the fault-free run.

Total work units are accounted exactly as the simulator does (seed
scan + per-round task charges); wall-clock time and schedule-dependent
diagnostics (steal counts, pool size, crash/retry/respawn tallies)
live in ``result.native``, kept out of ``result.stats`` so stats stay
byte-comparable across runs.

Fault injection: a :class:`~repro.native.chaos.NativeFaultPlan` is the
native analogue of the simulator's ``FailurePlan`` — seeded crashes
(``os._exit``), hangs, stragglers and transient chunk errors injected
into the *actual worker processes*.  Simulated failure plans (link
faults, reboots, checkpoint recovery) are still refused: that
machinery models the paper's cluster and silently ignoring it would
make a "fault tolerance" experiment vacuously pass.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from contextlib import nullcontext
from typing import Any, Dict, List, Optional

from repro import kernels
from repro.core.api import GMinerApp
from repro.core.config import GMinerConfig
from repro.core.job import JobResult, JobStatus
from repro.graph.graph import Graph
from repro.native.chaos import NativeFaultPlan
from repro.native.runtime import execute_chunk, make_data_source
from repro.native.supervisor import (
    DEFAULT_CHUNK_DEADLINE,
    DEFAULT_MAX_CHUNK_RETRIES,
    DEFAULT_MAX_RESPAWNS,
    STEAL_SEED,
    Supervisor,
)
from repro.obs import MASTER_TID, ObsSession, current_collector
from repro.parallel.cache import get_build_cache

__all__ = [
    "STEAL_SEED",
    "default_native_workers",
    "graph_payload",
    "run_native",
    "seed_chunks",
]


def default_native_workers() -> int:
    """Default pool size: every core the host has."""
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# cached build artifacts
# ----------------------------------------------------------------------


def graph_payload(graph: Graph) -> bytes:
    """The pickled graph, memoised in the active build cache.

    Serialisation is the dominant setup cost of a pooled native run
    (the graph ships once per worker); keying the bytes on the graph
    fingerprint makes the second native run of the same graph a cache
    hit.
    """
    build = lambda: pickle.dumps(graph, protocol=pickle.HIGHEST_PROTOCOL)
    cache = get_build_cache()
    if cache is None:
        return build()
    return cache.lookup("native-graph", {"graph": graph.fingerprint()}, build)


def seed_chunks(graph: Graph, chunk_size: int) -> List[List[int]]:
    """Seed vertices cut into ascending-id chunks (cached like the
    partition assignment: a pure function of graph and chunk size)."""
    def build() -> List[List[int]]:
        vids = sorted(graph.vertices())
        return [vids[i : i + chunk_size] for i in range(0, len(vids), chunk_size)]

    cache = get_build_cache()
    if cache is None:
        return build()
    return cache.lookup(
        "native-chunks",
        {"graph": graph.fingerprint(), "chunk_size": chunk_size},
        build,
    )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork when available (cheap, no re-import); spawn elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


_ZERO_DIAG = {
    "steals": 0,
    "crashes": 0,
    "hangs": 0,
    "retries": 0,
    "respawns": 0,
    "chunk_errors": 0,
    "leases_expired": 0,
    "fallback_chunks": 0,
}


def run_native(
    app: GMinerApp,
    graph: Graph,
    config: Optional[GMinerConfig] = None,
    failure_plan: Any = None,
    workers: Optional[int] = None,
) -> JobResult:
    """Execute ``app`` on ``graph`` for real; returns a JobResult.

    ``workers`` overrides ``config.native_workers`` (``None`` → every
    host core).  ``failure_plan`` accepts a
    :class:`~repro.native.chaos.NativeFaultPlan` (real process-level
    chaos, supervised and retried); simulated ``FailurePlan`` objects
    are refused.  The returned result mirrors the simulated one where
    the quantity exists natively — ``value``, ``aggregated``,
    ``num_results``, ``stats["work_units"]``/``["tasks_created"]``/
    ``["rounds_executed"]`` — and records wall-clock time plus
    schedule-dependent diagnostics (including the supervisor's
    crash/retry/respawn tallies) under ``result.native``.  Simulated
    clock/network/memory fields stay at zero: native runs have no
    simulated timeline.
    """
    config = config or GMinerConfig()
    fault_plan: Optional[NativeFaultPlan] = None
    if failure_plan is not None:
        if isinstance(failure_plan, NativeFaultPlan):
            failure_plan.validate()
            fault_plan = failure_plan
        else:
            raise ValueError(
                "native execution cannot run a simulated failure_plan: "
                "link faults, reboots and checkpoint recovery live in the "
                "simulated cluster — use execution='sim' for those chaos "
                "runs, or a repro.native.NativeFaultPlan to inject real "
                "process-level faults (crashes, hangs, transient chunk "
                "errors) into the native pool"
            )
    num_workers = workers or config.native_workers or default_native_workers()
    backend = config.kernel_backend
    chunk_deadline = (
        config.native_chunk_deadline
        if config.native_chunk_deadline is not None
        else DEFAULT_CHUNK_DEADLINE
    )
    max_chunk_retries = (
        config.native_max_chunk_retries
        if config.native_max_chunk_retries is not None
        else DEFAULT_MAX_CHUNK_RETRIES
    )
    max_respawns = (
        config.native_max_respawns
        if config.native_max_respawns is not None
        else DEFAULT_MAX_RESPAWNS
    )

    collector = current_collector()
    obs: Optional[ObsSession] = None
    origin = time.perf_counter()
    if config.enable_obs or collector is not None:
        obs = ObsSession(
            clock=lambda: time.perf_counter() - origin,
            name=app.name,
            span_capacity=config.obs_span_capacity,
        )

    started = time.perf_counter()
    chunks = seed_chunks(graph, config.native_chunk_size)
    num_workers = max(1, min(num_workers, len(chunks) or 1))
    diag: Dict[str, int] = dict(_ZERO_DIAG)
    if obs is not None:
        run_span = obs.tracer.begin(
            "native.run", cat="native", tid=MASTER_TID, workers=num_workers
        )
    if (num_workers == 1 and fault_plan is None) or not chunks:
        # fault-free single-process fast path: no pool, no supervision
        # overhead — and the degenerate zero-chunk graph short-circuits
        # here too (nothing to supervise)
        context = kernels.use_backend(backend) if backend else nullcontext()
        data_of = make_data_source(graph)
        with context:
            outcome_list = [
                execute_chunk(app, graph, chunk_id, chunk, data_of)
                for chunk_id, chunk in enumerate(chunks)
            ]
    else:
        ctx = _pool_context()
        supervisor = Supervisor(
            ctx=ctx,
            app=app,
            graph=graph,
            app_bytes=pickle.dumps(app, protocol=pickle.HIGHEST_PROTOCOL),
            graph_bytes=graph_payload(graph),
            backend=backend,
            chunks=chunks,
            num_workers=num_workers,
            fault_plan=fault_plan,
            chunk_deadline=chunk_deadline,
            max_chunk_retries=max_chunk_retries,
            max_respawns=max_respawns,
            obs=obs,
        )
        if obs is not None:
            supervise_span = obs.tracer.begin(
                "native.supervise", cat="native", tid=MASTER_TID
            )
        try:
            outcomes, diag = supervisor.run()
        finally:
            if obs is not None:
                obs.tracer.finish(supervise_span)
        outcome_list = [outcomes[chunk_id] for chunk_id in range(len(chunks))]
    wall_seconds = time.perf_counter() - started

    # deterministic reduction: chunk id (ascending seed id) order, never
    # completion order — the engine's bit-identity contract
    results: List[Any] = []
    offers: List[Any] = []
    work_units = 0.0
    rounds = 0
    tasks_created = 0
    for outcome in outcome_list:
        results.extend(outcome.results)
        offers.extend(outcome.offers)
        work_units += outcome.work_units
        rounds += outcome.rounds
        tasks_created += outcome.tasks_created

    value = app.combine_results(results) if results else None
    aggregated = None
    aggregator = app.make_aggregator()
    if aggregator is not None:
        aggregated = aggregator.merge_all(offers) if offers else aggregator.initial()

    stats: Dict[str, float] = {
        "work_units": work_units,
        "tasks_created": tasks_created,
        "rounds_executed": rounds,
        "native_chunks": len(chunks),
    }
    result = JobResult(
        status=JobStatus.OK,
        app_name=app.name,
        value=value,
        aggregated=aggregated,
        num_results=len(results),
        stats=stats,
    )
    result.native = {
        "execution": "native",
        "workers": num_workers,
        "chunk_size": config.native_chunk_size,
        "wall_seconds": wall_seconds,
        "backend": backend or kernels.get_backend(),
        **diag,
    }
    if obs is not None:
        obs.tracer.finish(run_span)
        gauge = obs.registry.gauge
        gauge("native.wall_seconds").set(wall_seconds)
        gauge("native.workers").set(float(num_workers))
        gauge("job.tasks_created").set(float(tasks_created))
        gauge("job.work_units").set(float(work_units))
        result.obs = obs.finalize(
            end=time.perf_counter() - origin,
            meta={"app": app.name, "status": "ok", "execution": "native"},
        )
        if collector is not None:
            collector.add_run(result.obs)
    return result
