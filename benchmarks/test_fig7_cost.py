"""Figure 7 — the COST metric [19]: cores needed for G-Miner on one
node to beat an optimised single thread.

Expected shape: COST of 2-4 cores (paper: 2-3) on at least three of
the four workload/dataset cases."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_fig7_cost(benchmark):
    report = run_experiment(benchmark, experiments.fig7_cost)
    cost = report.data["cost"]
    low = [k for k, v in cost.items() if v is not None and v <= 4]
    assert len(low) >= 3
    # adding cores never makes a case slower by more than noise
    for name, times in report.data["series"].items():
        assert times[-1] <= times[0] * 1.05
