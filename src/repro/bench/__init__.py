"""Benchmark harness: regenerate every table and figure of the paper.

:mod:`repro.bench.runner` runs any workload on any system (G-Miner or
a baseline) with the scaled experiment defaults; :mod:`repro.bench.report`
renders rows the way the paper's tables do ("x" for OOM, "-" for over
the time limit); :mod:`repro.bench.experiments` defines one function
per table/figure, each returning an :class:`ExperimentReport` that the
``benchmarks/`` suite executes and EXPERIMENTS.md records.
"""

from repro.bench.runner import (
    EXPERIMENT_SPEC,
    DEFAULT_TIME_LIMIT,
    build_app,
    prepare_dataset,
    run_gminer,
    run_system,
)
from repro.bench.report import ExperimentReport, format_cell, render_table
from repro.bench import experiments

__all__ = [
    "EXPERIMENT_SPEC",
    "DEFAULT_TIME_LIMIT",
    "build_app",
    "prepare_dataset",
    "run_gminer",
    "run_system",
    "ExperimentReport",
    "format_cell",
    "render_table",
    "experiments",
]
