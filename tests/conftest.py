"""Shared fixtures and builders for the test suite.

Small deterministic graphs and cluster specs keep the tests fast; the
scaled datasets (`*-s`) are reserved for the integration tests that
compare distributed results against sequential oracles.

``make_clustered_graph`` / ``make_cluster_config`` are the one true
source of the standard pipeline-test graph and job config — the worker,
chaos, integration, verify and metamorphic suites all build on them
instead of repeating the construction.
"""

from __future__ import annotations

import pytest

from repro.core import GMinerConfig, GMinerJob, JobStatus
from repro.graph.generators import preferential_attachment_graph, random_labels
from repro.graph.graph import Graph
from repro.sim.cluster import ClusterSpec
from repro.sim.engine import Simulator


def make_clustered_graph(
    labeled: bool = False,
    n: int = 120,
    m: int = 6,
    triangle_prob: float = 0.6,
    seed: int = 42,
    max_degree: int = 30,
) -> Graph:
    """The standard seeded clustered graph for pipeline tests."""
    graph = preferential_attachment_graph(
        n=n, m=m, triangle_prob=triangle_prob, seed=seed, max_degree=max_degree
    )
    if labeled:
        random_labels(graph, alphabet=tuple("abcde"), seed=3)
    return graph


def make_cluster_config(
    num_nodes: int = 4, cores_per_node: int = 2, **overrides
) -> GMinerConfig:
    """The standard small-cluster job config, with knob overrides."""
    return GMinerConfig(
        cluster=ClusterSpec(num_nodes=num_nodes, cores_per_node=cores_per_node)
    ).replace(**overrides)


def run_job(app, graph, spec, *, expect_ok: bool = True, **overrides):
    """Run one job on ``spec`` and return ``(job, result)``."""
    config = GMinerConfig(cluster=spec).replace(**overrides)
    job = GMinerJob(app, graph, config)
    result = job.run()
    if expect_ok:
        assert result.status is JobStatus.OK
    return job, result


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tiny_graph():
    """A 6-vertex graph with two triangles sharing an edge plus a tail.

    Edges: triangle (0,1,2), triangle (1,2,3), path 3-4-5.
    """
    return Graph.from_edges(
        [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4), (4, 5)]
    )


@pytest.fixture
def small_social_graph():
    """A seeded 120-vertex clustered graph for pipeline tests."""
    return make_clustered_graph()


@pytest.fixture
def small_labeled_graph():
    return make_clustered_graph(labeled=True)


@pytest.fixture
def small_spec():
    """A small cluster for fast end-to-end job tests."""
    return ClusterSpec(num_nodes=4, cores_per_node=2)


def adjacency_of(graph: Graph):
    return {v: graph.neighbors(v) for v in graph.vertices()}


def labels_of(graph: Graph):
    return {v: graph.label(v) for v in graph.vertices()}


def attributes_of(graph: Graph):
    return {v: graph.attributes(v) for v in graph.vertices()}
