"""Unit tests for the degraded-mode protocol (paper §7).

Heartbeat suspect→confirm detection latency, RPC retry/backoff
determinism, duplicate-response suppression, the master's hardened
message dispatch, and the seeded link-fault model.
"""

from __future__ import annotations

import math

import pytest

from repro.apps import TriangleCountingApp
from repro.core import GMinerConfig, GMinerJob, JobStatus
from repro.core.master import Master
from repro.core.messages import Heartbeat, ProgressReport, StealRequest
from repro.core.tracing import TaskEvent
from repro.graph.algorithms import triangle_count_exact
from repro.sim.cluster import ClusterSpec, build_cluster
from repro.sim.failures import FailurePlan
from repro.sim.network import LinkFaultModel, LinkFaultSpec


def chaos_config(**overrides):
    defaults = dict(
        cluster=ClusterSpec(num_nodes=4, cores_per_node=2),
        checkpoint_interval=0.02,
        time_limit=120.0,
    )
    defaults.update(overrides)
    return GMinerConfig(**defaults)


class TestHeartbeatDetection:
    def test_detection_latency_bounds(self, small_social_graph):
        """Silence is confirmed within [2*suspect, 2*suspect + 2 ticks]
        of the kill, preceded by a suspected phase after one timeout."""
        config = chaos_config(enable_tracing=True)
        kill_at = 0.02
        plan = FailurePlan().kill(node_id=1, at_time=kill_at, recovery_delay=0.5)
        result = GMinerJob(
            TriangleCountingApp(), small_social_graph, config, failure_plan=plan
        ).run()
        assert result.status is JobStatus.OK
        assert result.value == triangle_count_exact(small_social_graph)

        suspected = [
            r for r in result.trace
            if r.event is TaskEvent.WORKER_SUSPECTED and r.worker == 1
        ]
        confirmed = [
            r for r in result.trace
            if r.event is TaskEvent.WORKER_CONFIRMED_DOWN and r.worker == 1
        ]
        assert suspected and confirmed
        tick = config.heartbeat_interval
        assert kill_at + config.suspect_timeout <= suspected[0].time
        assert suspected[0].time <= kill_at + config.suspect_timeout + 2 * tick
        assert kill_at + 2 * config.suspect_timeout <= confirmed[0].time
        assert confirmed[0].time <= kill_at + 2 * config.suspect_timeout + 2 * tick
        assert suspected[0].time < confirmed[0].time

    def test_fast_reboot_detected_via_incarnation(self, small_social_graph):
        """A worker that reboots inside the silence window is still
        detected (the incarnation bump), so peers re-spread its state."""
        config = chaos_config()
        # recovery well inside the confirm window (2 * 0.08 = 0.16)
        plan = FailurePlan().kill(node_id=1, at_time=0.02, recovery_delay=0.05)
        job = GMinerJob(
            TriangleCountingApp(), small_social_graph, config, failure_plan=plan
        )
        result = job.run()
        assert result.status is JobStatus.OK
        assert result.value == triangle_count_exact(small_social_graph)
        assert result.stats["failures_detected"] == 1
        assert result.stats["readmissions"] == 1
        assert job.master.incarnations[1] == 1

    def test_oracle_mode_still_available(self, small_social_graph):
        """failure_detection='oracle' keeps the legacy direct wiring."""
        config = chaos_config(failure_detection="oracle")
        plan = FailurePlan().kill(node_id=2, at_time=0.02, recovery_delay=0.05)
        result = GMinerJob(
            TriangleCountingApp(), small_social_graph, config, failure_plan=plan
        ).run()
        assert result.status is JobStatus.OK
        assert result.value == triangle_count_exact(small_social_graph)
        # no heartbeat monitor ran, so nothing was "detected"
        assert result.stats["failures_detected"] == 0
        assert result.stats["heartbeats_sent"] > 0  # workers still beat

    def test_heartbeats_absent_without_failure_plan(self, small_social_graph):
        result = GMinerJob(
            TriangleCountingApp(), small_social_graph, chaos_config()
        ).run()
        assert result.stats["heartbeats_sent"] == 0
        assert result.stats["failures_detected"] == 0


class TestRpcRetry:
    def plan(self):
        # a healed symmetric partition between workers 0 and 1 forces
        # pull RPCs across it to time out and retry
        return (
            FailurePlan(seed=3)
            .partition(src=0, dst=1, start=0.012, end=0.05)
            .partition(src=1, dst=0, start=0.012, end=0.05)
        )

    def test_retries_recover_lost_pulls(self, small_social_graph):
        config = chaos_config()
        result = GMinerJob(
            TriangleCountingApp(), small_social_graph, config,
            failure_plan=self.plan(),
        ).run()
        assert result.status is JobStatus.OK
        assert result.value == triangle_count_exact(small_social_graph)
        assert result.stats["rpc_retries"] > 0

    def test_retry_schedule_is_deterministic(self, small_social_graph):
        config = chaos_config()
        runs = [
            GMinerJob(
                TriangleCountingApp(), small_social_graph, config,
                failure_plan=self.plan(),
            ).run()
            for _ in range(2)
        ]
        assert runs[0].stats["rpc_retries"] == runs[1].stats["rpc_retries"]
        assert runs[0].total_seconds == runs[1].total_seconds
        assert runs[0].network_bytes == runs[1].network_bytes

    def test_duplicate_responses_suppressed(self, small_social_graph):
        config = chaos_config()
        plan = FailurePlan(seed=11).duplicating(0.5)
        result = GMinerJob(
            TriangleCountingApp(), small_social_graph, config, failure_plan=plan
        ).run()
        assert result.status is JobStatus.OK
        assert result.value == triangle_count_exact(small_social_graph)
        assert result.stats["net_fault_duplicated"] > 0
        # at least one duplicated copy must have hit the dedup path
        assert (
            result.stats["duplicate_responses_dropped"]
            + result.stats["duplicate_migrations_dropped"]
            + result.stats["stale_responses_dropped"]
        ) > 0


class _StubController:
    finished = False


def make_master(num_workers: int = 2):
    spec = ClusterSpec(num_nodes=num_workers, cores_per_node=1)
    cluster = build_cluster(spec, extra_network_endpoints=1)
    config = GMinerConfig(cluster=spec)
    master = Master(
        cluster=cluster,
        config=config,
        num_workers=num_workers,
        endpoint=num_workers,
        aggregator=None,
        controller=_StubController(),
    )
    return cluster, master


class TestMasterHardening:
    def test_stale_messages_from_down_workers_dropped(self):
        cluster, master = make_master()
        master.down_workers.add(1)
        report = ProgressReport(
            worker=1, store_size=3, cmq_size=0, cpq_size=0,
            busy_cores=0, buffer_size=0, idle=False,
        )
        cluster.network.send(1, master.endpoint, report.size_bytes(), report)
        cluster.sim.run()
        assert master.stale_messages_dropped == 1
        assert 1 not in master.progress_table

    def test_unknown_payload_raises_before_finish(self):
        cluster, master = make_master()
        cluster.network.send(0, master.endpoint, 16, object())
        with pytest.raises(TypeError):
            cluster.sim.run()

    def test_unknown_payload_counted_after_finish(self):
        cluster, master = make_master()
        master.controller.finished = True
        cluster.network.send(0, master.endpoint, 16, object())
        cluster.sim.run()
        assert master.unknown_messages_dropped == 1

    def test_heartbeat_from_down_worker_readmits(self):
        cluster, master = make_master()
        master.monitoring = True  # as start_failure_monitor() would set
        master.down_workers.add(1)
        beat = Heartbeat(worker=1, incarnation=1)
        cluster.network.send(1, master.endpoint, beat.size_bytes(), beat)
        cluster.sim.run()
        assert 1 not in master.down_workers
        assert master.readmissions == 1

    def test_steal_request_refreshes_liveness(self):
        cluster, master = make_master()
        request = StealRequest(worker=0)
        cluster.sim.schedule(1.0, lambda: cluster.network.send(
            0, master.endpoint, request.size_bytes(), request
        ))
        cluster.sim.run()
        # delivered after 1.0 + serialisation + latency; any worker
        # message counts as a liveness signal, not just heartbeats
        assert master.last_heard[0] >= 1.0


class TestLinkFaultModel:
    def test_same_seed_same_verdicts(self):
        specs = [LinkFaultSpec(loss=0.3, duplicate=0.2, reorder=0.2)]
        a = LinkFaultModel(specs, seed=9)
        b = LinkFaultModel(specs, seed=9)
        verdicts_a = [
            (v.drop, v.duplicates, v.extra_delay, v.slow_factor)
            for v in (a.judge(0, 1, t * 0.01) for t in range(200))
        ]
        verdicts_b = [
            (v.drop, v.duplicates, v.extra_delay, v.slow_factor)
            for v in (b.judge(0, 1, t * 0.01) for t in range(200))
        ]
        assert verdicts_a == verdicts_b
        assert any(v[0] for v in verdicts_a)  # some drops happened
        assert any(v[1] for v in verdicts_a)  # some duplicates happened

    def test_partition_is_absolute_and_burns_no_randomness(self):
        spec = LinkFaultSpec(src=0, dst=1, start=0.0, end=1.0, partition=True)
        model = LinkFaultModel([spec], seed=0)
        for t in (0.0, 0.5, 0.999):
            assert model.judge(0, 1, t).drop
        assert not model.judge(0, 1, 1.0).drop  # window is half-open
        assert not model.judge(1, 0, 0.5).drop  # directional
        assert model.stats()["net_fault_partition_dropped"] == 3

    def test_slow_link_scales_latency(self):
        spec = LinkFaultSpec(src=2, slow_factor=3.0)
        model = LinkFaultModel([spec], seed=0)
        assert model.judge(2, 0, 0.1).slow_factor == 3.0
        assert model.judge(0, 2, 0.1).slow_factor == 1.0

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            LinkFaultSpec(loss=1.5).validate()
        with pytest.raises(ValueError):
            LinkFaultSpec(slow_factor=0.5).validate()
        with pytest.raises(ValueError):
            LinkFaultSpec(start=0.5, end=0.2).validate()
        with pytest.raises(ValueError):
            LinkFaultSpec(start=math.nan).validate()
        with pytest.raises(ValueError):
            LinkFaultSpec(src=7).validate(num_nodes=4)
        LinkFaultSpec(loss=0.5).validate(num_nodes=4)  # sane spec passes
