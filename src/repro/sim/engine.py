"""Deterministic discrete-event simulation engine.

A :class:`Simulator` owns a virtual clock and a heap of pending events.
Components schedule callbacks at future virtual times; the simulator
pops them in ``(time, sequence)`` order, which makes every run fully
deterministic — two events at the same instant fire in the order they
were scheduled.

The engine is intentionally minimal: no processes, no coroutines, just
timestamped callbacks.  Higher-level resources (cores, NICs, disks) are
built on top in their own modules.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A single scheduled callback.

    Events order by ``(time, seq)``; ``seq`` is a monotonically
    increasing tie-breaker so simultaneous events run FIFO.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class Simulator:
    """Event loop with a virtual clock.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("fires at t=1.5"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._stopped = False
        self.events_processed = 0
        #: Optional :class:`repro.obs.ObsSession`.  When set, every
        #: processed event also ticks the session's ``sim.events``
        #: counter; when ``None`` (the default) the run loop pays one
        #: branch and nothing else.
        self.obs = None
        #: Optional :class:`repro.verify.InvariantMonitor`.  When set,
        #: every popped event is checked for clock monotonicity before
        #: the clock advances; ``None`` (the default) costs one branch.
        self.verify = None

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at t={time} before current time t={self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def stop(self) -> None:
        """Stop the run loop after the current event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the heap drains, ``until`` is reached,
        or ``max_events`` have been processed.

        Returns the virtual time at which the loop stopped.  When
        ``until`` is given and events remain beyond it, the clock is
        advanced exactly to ``until``; if the heap drains first, the
        clock stays at the last event's time (so callers can read the
        true completion time).
        """
        self._stopped = False
        processed = 0
        while self._heap and not self._stopped:
            event = self._heap[0]
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if self.verify is not None:
                self.verify.on_sim_event(self._now, event.time)
            self._now = event.time
            event.callback()
            processed += 1
            self.events_processed += 1
            if self.obs is not None:
                self.obs.sim_event()
            if max_events is not None and processed >= max_events:
                break
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)
