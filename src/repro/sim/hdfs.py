"""Simulated HDFS.

G-Miner uses HDFS as its persistent store: workers load graph
partitions from it at startup, dump results to it at the end, and the
fault-tolerance machinery writes periodic snapshots to it (§7).  We
model it as a replicated in-memory key→bytes store whose reads and
writes pay the local disk cost plus, for remote replicas, network cost.

Contents survive node failures (that is the point of HDFS), which is
what makes checkpoint-based recovery possible in the fault-tolerance
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.sim.engine import Simulator


@dataclass
class _StoredObject:
    size_bytes: int
    payload: Any


class SimulatedHDFS:
    """Replicated persistent store with an I/O cost model.

    Cost model: a write of ``n`` bytes takes ``n / write_bandwidth``
    seconds times the replication factor (pipelined replication keeps
    this roughly linear); a read streams at ``read_bandwidth``.  All
    requests also pay a fixed ``latency``.
    """

    def __init__(
        self,
        sim: Simulator,
        replication: int = 3,
        read_bandwidth: float = 4e6,
        write_bandwidth: float = 2e6,
        latency: float = 2e-3,
    ) -> None:
        if replication < 1:
            raise ValueError("replication factor must be >= 1")
        self.sim = sim
        self.replication = replication
        self.read_bandwidth = read_bandwidth
        self.write_bandwidth = write_bandwidth
        self.latency = latency
        self._objects: Dict[str, _StoredObject] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    def exists(self, path: str) -> bool:
        return path in self._objects

    def size(self, path: str) -> int:
        return self._objects[path].size_bytes

    def paths(self):
        return sorted(self._objects)

    def write(
        self,
        path: str,
        payload: Any,
        size_bytes: int,
        on_done: Optional[Callable[[], None]] = None,
    ) -> float:
        """Store ``payload`` under ``path``; returns the virtual duration.

        When ``on_done`` is given it is scheduled at completion time;
        synchronous callers may instead use the returned duration.
        """
        if size_bytes < 0:
            raise ValueError("size cannot be negative")
        self._objects[path] = _StoredObject(size_bytes=size_bytes, payload=payload)
        self.bytes_written += size_bytes * self.replication
        duration = self.latency + size_bytes * self.replication / self.write_bandwidth
        if on_done is not None:
            self.sim.schedule(duration, on_done)
        return duration

    def read(
        self,
        path: str,
        on_done: Optional[Callable[[Any], None]] = None,
    ) -> float:
        """Read ``path``; returns the virtual duration.

        ``on_done`` receives the stored payload at completion time.
        """
        obj = self._objects.get(path)
        if obj is None:
            raise FileNotFoundError(f"no such HDFS path: {path}")
        self.bytes_read += obj.size_bytes
        duration = self.latency + obj.size_bytes / self.read_bandwidth
        if on_done is not None:
            self.sim.schedule(duration, lambda: on_done(obj.payload))
        return duration

    def read_now(self, path: str) -> Any:
        """Fetch a payload without charging time (test/setup helper)."""
        obj = self._objects.get(path)
        if obj is None:
            raise FileNotFoundError(f"no such HDFS path: {path}")
        return obj.payload

    def delete(self, path: str) -> None:
        self._objects.pop(path, None)
