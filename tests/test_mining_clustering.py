"""Unit tests for the focused-clustering (FocusCO-style) kernel."""

import pytest

from repro.graph.attributes import infer_attribute_weights
from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.mining.clustering import (
    DONE,
    NEED,
    FocusedClusterGrower,
    FocusParams,
    extract_focused_cluster,
    focused_clustering_sequential,
)
from repro.mining.cost import WorkMeter
from tests.conftest import adjacency_of, attributes_of


@pytest.fixture
def focus_graph():
    """Two 5-cliques with distinct attributes, joined by a bridge."""
    edges = []
    for base in (0, 5):
        vs = range(base, base + 5)
        edges += [(i, j) for i in vs for j in vs if i < j]
    edges.append((4, 5))
    g = Graph.from_edges(edges)
    for v in range(5):
        g.set_attributes(v, [1, 2])
    for v in range(5, 10):
        g.set_attributes(v, [8, 9])
    return g


PARAMS = FocusParams(min_edge_weight=0.3, min_size=3, max_size=10)


class TestExtract:
    def test_cluster_follows_focus_attributes(self, focus_graph):
        weights = infer_attribute_weights([[1, 2], [1, 2]])
        adj = adjacency_of(focus_graph)
        attrs = attributes_of(focus_graph)
        cluster = extract_focused_cluster(0, PARAMS, attrs, adj, weights, WorkMeter())
        assert cluster == (0, 1, 2, 3, 4)

    def test_unfocused_region_yields_nothing(self, focus_graph):
        """Seeds in the region whose attributes carry no focus weight
        produce no cluster — FocusCO only surfaces what matches the
        exemplars."""
        weights = infer_attribute_weights([[1, 2], [1, 2]])
        adj = adjacency_of(focus_graph)
        attrs = attributes_of(focus_graph)
        assert (
            extract_focused_cluster(5, PARAMS, attrs, adj, weights, WorkMeter())
            is None
        )

    def test_min_vid_reporting(self, focus_graph):
        weights = infer_attribute_weights([[1, 2], [1, 2]])
        adj = adjacency_of(focus_graph)
        attrs = attributes_of(focus_graph)
        assert (
            extract_focused_cluster(2, PARAMS, attrs, adj, weights, WorkMeter())
            is None
        )

    def test_empty_weights_find_nothing(self, focus_graph):
        adj = adjacency_of(focus_graph)
        attrs = attributes_of(focus_graph)
        assert (
            extract_focused_cluster(0, PARAMS, attrs, adj, {}, WorkMeter()) is None
        )


class TestStepperProtocol:
    def test_need_lists_frontier(self, focus_graph):
        weights = infer_attribute_weights([[1, 2]])
        adj = adjacency_of(focus_graph)
        attrs = attributes_of(focus_graph)
        grower = FocusedClusterGrower(0, adj[0], attrs[0], PARAMS, weights)
        status, payload = grower.advance({}, WorkMeter())
        assert status == NEED
        assert set(payload) == set(adj[0])

    def test_convergence_matches_wrapper(self, focus_graph):
        weights = infer_attribute_weights([[1, 2]])
        adj = adjacency_of(focus_graph)
        attrs = attributes_of(focus_graph)
        expected = extract_focused_cluster(
            0, PARAMS, attrs, adj, weights, WorkMeter()
        )
        grower = FocusedClusterGrower(0, adj[0], attrs[0], PARAMS, weights)
        supplied = {v: (adj[v], attrs[v]) for v in adj}
        status, payload = grower.advance(supplied, WorkMeter())
        assert (status, payload) == (DONE, expected)

    def test_member_data_tracks_members(self, focus_graph):
        weights = infer_attribute_weights([[1, 2]])
        adj = adjacency_of(focus_graph)
        attrs = attributes_of(focus_graph)
        grower = FocusedClusterGrower(0, adj[0], attrs[0], PARAMS, weights)
        supplied = {v: (adj[v], attrs[v]) for v in adj}
        grower.advance(supplied, WorkMeter())
        assert set(grower.member_data) == grower.members

    def test_iteration_cap_terminates(self, focus_graph):
        weights = infer_attribute_weights([[1, 2]])
        adj = adjacency_of(focus_graph)
        attrs = attributes_of(focus_graph)
        params = FocusParams(max_iterations=1, min_size=1)
        grower = FocusedClusterGrower(0, adj[0], attrs[0], params, weights)
        supplied = {v: (adj[v], attrs[v]) for v in adj}
        status, _ = grower.advance(supplied, WorkMeter())
        assert status == DONE
        assert grower.iterations == 1


class TestSequential:
    def test_planted_dataset_recovers_focus_community(self):
        built = load_dataset("dblp-s")
        g = built.graph
        adj = adjacency_of(g)
        attrs = attributes_of(g)
        target = min(built.community_map.values())
        exemplars = sorted(
            v for v, c in built.community_map.items() if c == target
        )[:5]
        clusters = focused_clustering_sequential(
            exemplars, FocusParams(), attrs, adj, WorkMeter()
        )
        assert clusters
        # the exemplar community itself should be among the clusters
        exemplar_set = set(
            v for v, c in built.community_map.items() if c == target
        )
        overlaps = [len(set(c) & exemplar_set) / len(c) for c in clusters]
        assert max(overlaps) > 0.7

    def test_no_duplicate_clusters(self):
        built = load_dataset("dblp-s")
        g = built.graph
        exemplars = sorted(g.vertices())[:5]
        clusters = focused_clustering_sequential(
            exemplars,
            FocusParams(),
            attributes_of(g),
            adjacency_of(g),
            WorkMeter(),
        )
        assert len(clusters) == len(set(clusters))
