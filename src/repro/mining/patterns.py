"""Query patterns for graph matching.

The paper's GM application matches a rooted, level-labelled tree
pattern against the data graph (Figure 1): the seed matches the root's
label, each round matches the next level's labels among the candidates,
and the candidates for round ``r+1`` are the data-graph neighbours of
the vertices matched to the level-``r`` pattern nodes that have
children.

A :class:`TreePattern` stores, per level, the list of pattern nodes as
``(label, parent_index_in_previous_level)`` pairs.  Embeddings must map
pattern nodes to *distinct* data vertices whose labels match and whose
parent edges exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class PatternValidationError(ValueError):
    """A pattern failed validation, with structured error records.

    ``errors`` is a tuple of ``(code, message)`` pairs, one per problem
    found — validation collects *every* defect in one pass instead of
    stopping at the first.  Codes:

    * ``empty-label`` — the root or a node label is not a non-empty
      string;
    * ``empty-level`` — a level declares zero nodes;
    * ``unreachable-level`` — a level follows an empty one, so none of
      its nodes can have a parent;
    * ``bad-parent`` — a node's parent index does not point at a node
      in the previous level.

    Subclasses ``ValueError`` so pre-existing ``except ValueError`` /
    ``pytest.raises(ValueError)`` call sites keep working.
    """

    def __init__(self, errors: Sequence[Tuple[str, str]]) -> None:
        self.errors: Tuple[Tuple[str, str], ...] = tuple(errors)
        detail = "; ".join(f"[{code}] {message}" for code, message in self.errors)
        super().__init__(f"invalid pattern: {detail}")

    @property
    def codes(self) -> Tuple[str, ...]:
        return tuple(code for code, _ in self.errors)


@dataclass(frozen=True)
class PatternNode:
    """One pattern vertex: its label and its parent's index one level up."""

    label: str
    parent: int = 0


@dataclass(frozen=True)
class TreePattern:
    """A rooted tree pattern described level by level.

    ``levels[0]`` is implicit: the root, with ``root_label``.
    ``levels[r]`` lists the nodes at depth ``r+1``; each node's
    ``parent`` indexes into the previous level (with the root being the
    sole index-0 node of level 0).
    """

    root_label: str
    levels: Tuple[Tuple[PatternNode, ...], ...] = ()

    @property
    def depth(self) -> int:
        """Number of expansion rounds needed (= number of child levels)."""
        return len(self.levels)

    @property
    def num_nodes(self) -> int:
        return 1 + sum(len(level) for level in self.levels)

    def level_nodes(self, round_index: int) -> Tuple[PatternNode, ...]:
        """Pattern nodes to match in round ``round_index`` (1-based)."""
        if not 1 <= round_index <= self.depth:
            raise IndexError(f"round {round_index} out of range 1..{self.depth}")
        return self.levels[round_index - 1]

    def validate(self) -> None:
        """Check structural well-formedness; raise
        :class:`PatternValidationError` listing *all* problems at once.

        Duplicate sibling ``(label, parent)`` pairs are deliberately
        legal: they denote symmetric pattern nodes, and the matcher
        counts their permutations as distinct embeddings (the
        sibling-permutation semantics the GM tests pin).
        """
        errors: List[Tuple[str, str]] = []
        if not isinstance(self.root_label, str) or not self.root_label:
            errors.append(
                ("empty-label", f"root label must be a non-empty string, "
                                f"got {self.root_label!r}")
            )
        prev_size = 1
        empty_at: int = 0  # depth of the first empty level, 0 = none yet
        for depth, level in enumerate(self.levels, start=1):
            if empty_at:
                errors.append(
                    ("unreachable-level",
                     f"level {depth} is unreachable: level {empty_at} "
                     f"has zero nodes")
                )
                continue
            if not level:
                errors.append(
                    ("empty-level", f"level {depth} has zero nodes")
                )
                empty_at = depth
                continue
            for position, node in enumerate(level):
                if not isinstance(node.label, str) or not node.label:
                    errors.append(
                        ("empty-label",
                         f"level {depth} node {position} label must be a "
                         f"non-empty string, got {node.label!r}")
                    )
                if not (
                    isinstance(node.parent, int)
                    and 0 <= node.parent < prev_size
                ):
                    errors.append(
                        ("bad-parent",
                         f"level {depth} node {position} parent index "
                         f"{node.parent!r} is not in 0..{prev_size - 1}")
                    )
            prev_size = len(level)
        if errors:
            raise PatternValidationError(errors)


def make_pattern(root_label: str, *levels: Sequence[Tuple[str, int]]) -> TreePattern:
    """Convenience constructor: ``make_pattern('a', [('b',0),('c',0)], ...)``."""
    built = tuple(
        tuple(PatternNode(label=lbl, parent=parent) for lbl, parent in level)
        for level in levels
    )
    pattern = TreePattern(root_label=root_label, levels=built)
    pattern.validate()
    return pattern


#: The query pattern of the paper's Figure 1 and Table 4: root labelled
#: 'a' with children 'b' and 'c'; the 'c' node has children 'd' and 'e'.
PAPER_PATTERN = make_pattern(
    "a",
    [("b", 0), ("c", 0)],
    [("d", 1), ("e", 1)],
)
