"""Triangle counting kernel (the paper's TC application).

Uses the standard ordered-intersection decomposition: the task seeded
at vertex ``v`` counts triangles ``v < u < w`` where ``u, w ∈ Γ(v)``
and ``(u, w) ∈ E``.  Summing over all seeds counts every triangle
exactly once, so per-seed results are independent — the property that
lets TC run as one G-Miner task per vertex.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Set, Tuple

from repro.mining.cost import WorkMeter


def triangles_for_seed(
    seed: int,
    seed_neighbors: Sequence[int],
    neighbor_adjacency: Mapping[int, Iterable[int]],
    meter: WorkMeter,
) -> int:
    """Count triangles whose minimum vertex is ``seed``.

    ``neighbor_adjacency`` must provide ``Γ(u)`` for every neighbor
    ``u > seed`` (the task pulls these as its candidates).  One work
    unit is charged per membership probe.
    """
    higher = [u for u in seed_neighbors if u > seed]
    higher_set: Set[int] = set(higher)
    count = 0
    for u in higher:
        gamma_u = neighbor_adjacency[u]
        for w in gamma_u:
            meter.charge()
            if w > u and w in higher_set:
                count += 1
    return count


def triangle_count_sequential(
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
) -> int:
    """Whole-graph triangle count (single-thread baseline kernel)."""
    total = 0
    for v in sorted(adjacency):
        total += triangles_for_seed(v, adjacency[v], adjacency, meter)
    return total


def local_adjacency(
    vertex_ids: Iterable[int],
    adjacency: Mapping[int, Sequence[int]],
) -> Dict[int, Tuple[int, ...]]:
    """Materialise the sub-mapping ``{v: Γ(v)}`` for the given vertices."""
    return {v: tuple(adjacency[v]) for v in vertex_ids}
