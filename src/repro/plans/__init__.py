"""Pattern plans: compile any motif into a G-Miner execution plan.

The package behind :func:`repro.mine`:

* :mod:`repro.plans.query` — the query vocabulary
  (:class:`PatternQuery`: extra edges, order constraints, attribute
  predicates, wildcard labels) and the named-motif registry;
* :mod:`repro.plans.compiler` — automorphism-based symmetry breaking,
  extension-order derivation, per-level intersection steps
  (:func:`compile_pattern` → :class:`ExecutionPlan`);
* :mod:`repro.plans.executor` — the generic plan-driven grower
  (:class:`PlanApp` / :class:`PlanTask`) on the task machinery, plus
  :func:`count_plan_sequential`;
* :mod:`repro.plans.oracle` — brute-force ground truth for
  differential checks;
* :mod:`repro.plans.builtins` — the six paper workloads as built-in
  plans (bound to the legacy growers, hence bit-identical);
* :mod:`repro.plans.api` — the :func:`mine` facade.
"""

from repro.plans.query import (
    MOTIFS,
    PatternQuery,
    WILDCARD,
    flatten_pattern,
    motif,
)
from repro.plans.compiler import (
    CompiledStep,
    ExecutionPlan,
    automorphisms,
    break_symmetry,
    compile_pattern,
)
from repro.plans.executor import (
    PlanApp,
    PlanTask,
    count_plan_sequential,
)
from repro.plans.oracle import count_embeddings_bruteforce
from repro.plans.builtins import BUILTIN_PLANS, BuiltinPlan, builtin_plan
from repro.plans.api import mine, resolve_pattern

__all__ = [
    "BUILTIN_PLANS",
    "BuiltinPlan",
    "CompiledStep",
    "ExecutionPlan",
    "MOTIFS",
    "PatternQuery",
    "PlanApp",
    "PlanTask",
    "WILDCARD",
    "automorphisms",
    "break_symmetry",
    "builtin_plan",
    "compile_pattern",
    "count_embeddings_bruteforce",
    "count_plan_sequential",
    "flatten_pattern",
    "mine",
    "motif",
    "resolve_pattern",
]
