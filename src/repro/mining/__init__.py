"""Pure graph-mining kernels.

System-independent algorithm cores shared by the G-Miner applications
(:mod:`repro.apps`), the baseline systems (:mod:`repro.baselines`) and
the test suite's ground-truth oracles.  Each kernel operates on plain
adjacency mappings assembled by its caller and charges its work to a
:class:`~repro.mining.cost.WorkMeter`, which is how real computation is
translated into simulated time.
"""

from repro.mining.cost import WorkMeter, Budget, BudgetExceeded
from repro.mining.graphlets import (
    classify_graphlet,
    graphlet_count_sequential,
    graphlets_for_seed,
    merge_histograms,
)
from repro.mining.triangles import (
    triangles_for_seed,
    triangle_count_sequential,
)
from repro.mining.cliques import (
    SharedBound,
    max_clique_in_candidates,
    max_clique_sequential,
    maximal_cliques,
)
from repro.mining.patterns import (
    PAPER_PATTERN,
    PatternValidationError,
    TreePattern,
    make_pattern,
)
from repro.mining.matching import (
    count_embeddings_from_seed,
    match_level,
    graph_matching_sequential,
)
from repro.mining.community import (
    CommunityParams,
    CommunityGrower,
    grow_community,
    community_detection_sequential,
)
from repro.mining.clustering import (
    FocusParams,
    FocusedClusterGrower,
    extract_focused_cluster,
    focused_clustering_sequential,
)

__all__ = [
    "WorkMeter",
    "Budget",
    "BudgetExceeded",
    "triangles_for_seed",
    "triangle_count_sequential",
    "classify_graphlet",
    "graphlet_count_sequential",
    "graphlets_for_seed",
    "merge_histograms",
    "SharedBound",
    "max_clique_in_candidates",
    "max_clique_sequential",
    "maximal_cliques",
    "TreePattern",
    "PatternValidationError",
    "make_pattern",
    "PAPER_PATTERN",
    "count_embeddings_from_seed",
    "match_level",
    "graph_matching_sequential",
    "CommunityParams",
    "CommunityGrower",
    "grow_community",
    "community_detection_sequential",
    "FocusParams",
    "FocusedClusterGrower",
    "extract_focused_cluster",
    "focused_clustering_sequential",
]
