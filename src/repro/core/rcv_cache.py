"""The Reference-Counting Vertex (RCV) Cache (paper §4.3 and §7).

Caches remote vertices pulled over the network.  Each entry carries a
reference count: the number of READY/ACTIVE tasks currently referring
to it.  Eviction is *lazy*: a count reaching zero moves the entry to a
reclaim tail rather than deleting it — a subsequent task (adjacent in
the LSH-ordered queue) will often re-reference it.  Only when the cache
is full are zero-referenced entries replaced, oldest first.  If the
cache is full and nothing has a zero count, the candidate retriever
must sleep until some task completes a round (handled by the caller).

``lru`` and ``fifo`` policies are provided for the cache ablation: they
ignore reference counts when evicting, so an entry a ready task depends
on can vanish and must be re-pulled — the failure mode §7 motivates RCV
against.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.graph import VertexData


class CachePolicy(enum.Enum):
    RCV = "rcv"
    LRU = "lru"
    FIFO = "fifo"


@dataclass
class _Entry:
    data: VertexData
    refs: int
    size: int
    seq: int  # insertion order (FIFO / zero-ref reclaim order)


class RCVCache:
    """Byte-bounded vertex cache with pluggable policy."""

    def __init__(
        self,
        capacity_bytes: int,
        policy: CachePolicy = CachePolicy.RCV,
        on_alloc: Optional[Callable[[int], None]] = None,
        on_free: Optional[Callable[[int], None]] = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError("capacity cannot be negative")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._used = 0
        self._seq = 0
        self._on_alloc = on_alloc
        self._on_free = on_free
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.rejected_inserts = 0

    # -- queries --------------------------------------------------------

    def __contains__(self, vid: int) -> bool:
        return vid in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def lookup(self, vid: int) -> Optional[VertexData]:
        """Probe the cache, counting hit/miss and touching LRU order."""
        entry = self._entries.get(vid)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        if self.policy is CachePolicy.LRU:
            self._entries.move_to_end(vid)
        return entry.data

    def peek(self, vid: int) -> Optional[VertexData]:
        """Probe without statistics (used when gathering for execution)."""
        entry = self._entries.get(vid)
        return entry.data if entry else None

    def refs(self, vid: int) -> int:
        entry = self._entries.get(vid)
        return entry.refs if entry else 0

    # -- reference counting ------------------------------------------------

    def addref(self, vid: int) -> None:
        """A READY/ACTIVE task now refers to ``vid``."""
        entry = self._entries.get(vid)
        if entry is None:
            raise KeyError(f"addref on uncached vertex {vid}")
        entry.refs += 1

    def release(self, vid: int) -> None:
        """A referring task completed its round (lazy model: no delete)."""
        entry = self._entries.get(vid)
        if entry is None:
            return  # already evicted under lru/fifo ablation policies
        if entry.refs > 0:
            entry.refs -= 1

    # -- insertion & eviction -------------------------------------------------

    def insert(self, data: VertexData, refs: int = 1) -> bool:
        """Insert a pulled vertex with an initial reference count.

        Returns False when space cannot be reclaimed (every resident
        entry is referenced under the RCV policy) — the caller (the
        candidate retriever) should go to sleep and retry after some
        task finishes a round.
        """
        vid = data.vid
        if vid in self._entries:
            self._entries[vid].refs += refs
            return True
        size = data.estimate_size()
        if size > self.capacity_bytes:
            self.rejected_inserts += 1
            return False
        if not self._make_room(size):
            self.rejected_inserts += 1
            return False
        self._seq += 1
        self._entries[vid] = _Entry(data=data, refs=refs, size=size, seq=self._seq)
        self._used += size
        if self._on_alloc is not None:
            self._on_alloc(size)
        return True

    def _make_room(self, needed: int) -> bool:
        while self._used + needed > self.capacity_bytes:
            victim = self._pick_victim()
            if victim is None:
                return False
            self._evict(victim)
        return True

    def _pick_victim(self) -> Optional[int]:
        if not self._entries:
            return None
        if self.policy is CachePolicy.RCV:
            # oldest zero-referenced entry; None if all are referenced
            best: Optional[Tuple[int, int]] = None
            for vid, entry in self._entries.items():
                if entry.refs == 0 and (best is None or entry.seq < best[0]):
                    best = (entry.seq, vid)
            return best[1] if best else None
        # LRU: head of the OrderedDict; FIFO: smallest seq = head too
        return next(iter(self._entries))

    def _evict(self, vid: int) -> None:
        entry = self._entries.pop(vid)
        self._used -= entry.size
        self.evictions += 1
        if self._on_free is not None:
            self._on_free(entry.size)

    def drop_all(self) -> None:
        """Clear the cache (worker failure)."""
        for vid in list(self._entries):
            self._evict(vid)
        self.hits = self.misses = 0
