"""Simulated network fabric.

Models a switched Gigabit-Ethernet-style cluster network: every message
pays a fixed latency plus a serialisation delay at the sender's NIC
(``size / bandwidth``).  Each node's NIC transmits one message at a
time, so bursts queue — this is what makes batch-style systems (whose
communication all lands at a barrier) show long network-bound stalls,
while G-Miner's pipeline spreads pulls across the whole run.

Messages destined for the local node are delivered immediately with no
cost, matching the paper's local/remote candidate distinction.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.metrics import ByteCounter, ResourceMeter


@dataclass
class Message:
    src: int
    dst: int
    size_bytes: int
    payload: Any


@dataclass(frozen=True)
class LinkFaultSpec:
    """One declarative fault on a (set of) link(s), active in a window.

    ``src``/``dst`` of ``None`` match any endpoint, so a single spec can
    degrade a whole node's links or the entire fabric.  Windows are
    half-open ``[start, end)``; ``end=inf`` means "for the rest of the
    run".  ``partition=True`` drops *everything* on matching links for
    the window — the classic partition experiment — independent of the
    probabilistic knobs.
    """

    src: Optional[int] = None
    dst: Optional[int] = None
    start: float = 0.0
    end: float = math.inf
    loss: float = 0.0  # P(drop) per message
    duplicate: float = 0.0  # P(second copy delivered)
    reorder: float = 0.0  # P(extra delay, letting later sends overtake)
    reorder_delay: float = 0.005  # the extra delay when reordered
    slow_factor: float = 1.0  # latency multiplier >= 1 (straggler link)
    partition: bool = False

    def matches(self, src: int, dst: int, now: float) -> bool:
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return self.start <= now < self.end

    def validate(self, num_nodes: Optional[int] = None) -> None:
        """Fail fast on nonsense specs; raise ``ValueError`` with a hint."""
        for name in ("start", "end"):
            value = getattr(self, name)
            if math.isnan(value) or value < 0:
                raise ValueError(
                    f"link fault {name} must be a non-negative time, got {value!r}"
                )
        if self.end <= self.start:
            raise ValueError(
                f"link fault window is empty: start={self.start} >= end={self.end}"
            )
        for name in ("loss", "duplicate", "reorder"):
            p = getattr(self, name)
            if math.isnan(p) or not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"link fault {name} must be a probability in [0, 1], got {p!r}"
                )
        if math.isnan(self.reorder_delay) or self.reorder_delay < 0:
            raise ValueError(
                f"reorder_delay must be non-negative, got {self.reorder_delay!r}"
            )
        if math.isnan(self.slow_factor) or self.slow_factor < 1.0:
            raise ValueError(
                f"slow_factor must be >= 1 (a latency multiplier), got "
                f"{self.slow_factor!r}"
            )
        if num_nodes is not None:
            for name in ("src", "dst"):
                endpoint = getattr(self, name)
                if endpoint is not None and not 0 <= endpoint < num_nodes:
                    raise ValueError(
                        f"link fault {name}={endpoint} is not a node id in "
                        f"[0, {num_nodes})"
                    )


@dataclass
class _LinkVerdict:
    """What the fault model decided for one message."""

    drop: bool = False
    partitioned: bool = False
    duplicates: int = 0
    extra_delay: float = 0.0
    slow_factor: float = 1.0


class LinkFaultModel:
    """Seeded, deterministic message-level fault injection.

    Every decision comes from one ``random.Random(seed)`` stream, drawn
    in message-send order — which the simulator makes deterministic —
    so identical seeds yield identical degraded timelines.  Fault-free
    runs never construct this object, keeping them byte-identical to a
    build without the fault layer.
    """

    def __init__(self, specs: List[LinkFaultSpec], seed: int = 0) -> None:
        self.specs = list(specs)
        self.seed = seed
        self._rng = random.Random(seed)
        self.dropped = 0
        self.partition_dropped = 0
        self.duplicated = 0
        self.delayed = 0

    def judge(self, src: int, dst: int, now: float) -> _LinkVerdict:
        """Decide the fate of one ``src → dst`` message sent at ``now``."""
        verdict = _LinkVerdict()
        for spec in self.specs:
            if not spec.matches(src, dst, now):
                continue
            if spec.partition:
                verdict.drop = True
                verdict.partitioned = True
                # no RNG draw: partitions are absolute, and skipping the
                # draw keeps the stream identical however long they last
                continue
            if spec.loss and self._rng.random() < spec.loss:
                verdict.drop = True
            if spec.duplicate and self._rng.random() < spec.duplicate:
                verdict.duplicates += 1
            if spec.reorder and self._rng.random() < spec.reorder:
                verdict.extra_delay += spec.reorder_delay
            if spec.slow_factor > verdict.slow_factor:
                verdict.slow_factor = spec.slow_factor
        if verdict.drop:
            if verdict.partitioned:
                self.partition_dropped += 1
            else:
                self.dropped += 1
        else:
            self.duplicated += verdict.duplicates
            if verdict.extra_delay > 0.0:
                self.delayed += 1
        return verdict

    def stats(self) -> Dict[str, int]:
        return {
            "net_fault_dropped": self.dropped,
            "net_fault_partition_dropped": self.partition_dropped,
            "net_fault_duplicated": self.duplicated,
            "net_fault_delayed": self.delayed,
        }


class _Nic:
    """One node's transmit queue: serialises outgoing messages."""

    def __init__(self, sim: Simulator, node_id: int, bandwidth: float) -> None:
        self.sim = sim
        self.node_id = node_id
        self.bandwidth = bandwidth
        self.meter = ResourceMeter(name=f"nic-{node_id}", capacity=1)
        self._queue: Deque = deque()
        self._sending = False

    def enqueue(self, size_bytes: int, on_sent: Callable[[], None]) -> None:
        self._queue.append((size_bytes, on_sent))
        self._pump()

    def _pump(self) -> None:
        if self._sending or not self._queue:
            return
        size_bytes, on_sent = self._queue.popleft()
        self._sending = True
        duration = size_bytes / self.bandwidth
        token = self.meter.begin(self.sim.now)

        def finish():
            self._sending = False
            self.meter.end(self.sim.now, token)
            on_sent()
            self._pump()

        self.sim.schedule(duration, finish)


class Network:
    """Cluster-wide message fabric with per-node NIC serialisation.

    Parameters
    ----------
    latency:
        One-way propagation + switching delay in seconds.
    bandwidth:
        Per-NIC bandwidth in bytes/second (default ~1 GbE).
    """

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        latency: float = 1e-4,
        bandwidth: float = 125e6,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self._nics: Dict[int, _Nic] = {
            node_id: _Nic(sim, node_id, bandwidth) for node_id in range(num_nodes)
        }
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._down: set = set()
        self.bytes_counter = ByteCounter(name="network")
        self.messages_sent = 0
        self.faults: Optional[LinkFaultModel] = None
        #: Optional :class:`repro.obs.ObsSession`.  When set, every
        #: offered message is counted per payload type
        #: (``net.messages{type=...}`` / ``net.bytes{type=...}``);
        #: ``None`` (the default) costs one branch per send.
        self.obs = None
        #: Optional :class:`repro.verify.InvariantMonitor`.  When set,
        #: every message's fate (offered / dropped-with-reason /
        #: delivered) is double-entry accounted so barrier checks can
        #: assert conservation; ``None`` costs one branch per send.
        self.verify = None

    def install_faults(self, model: LinkFaultModel) -> None:
        """Degrade the fabric: every remote send consults ``model``."""
        self.faults = model

    def register_handler(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Install the receive callback for ``node_id``."""
        self._handlers[node_id] = handler

    def set_node_down(self, node_id: int, down: bool = True) -> None:
        """Mark a node unreachable (failure injection drops its traffic)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def node_meter(self, node_id: int) -> ResourceMeter:
        return self._nics[node_id].meter

    def aggregate_utilization(self, start: float, end: float) -> float:
        """Mean NIC utilisation across the cluster over a window."""
        if not self._nics:
            return 0.0
        total = sum(nic.meter.utilization(start, end) for nic in self._nics.values())
        return total / len(self._nics)

    def send(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        payload: Any,
        on_delivered: Optional[Callable[[Message], None]] = None,
    ) -> None:
        """Transmit ``payload`` from ``src`` to ``dst``.

        Delivery invokes ``dst``'s registered handler (and optionally
        ``on_delivered``).  Local messages bypass the NIC entirely.
        """
        if size_bytes < 0:
            raise ValueError("message size cannot be negative")
        message = Message(src=src, dst=dst, size_bytes=size_bytes, payload=payload)
        if self.verify is not None:
            self.verify.on_net_offered(src, dst, payload)
        if src in self._down or dst in self._down:
            if self.verify is not None:
                self.verify.on_net_dropped("endpoint_down", src, dst)
            return  # dropped: sender or receiver is dead
        self.messages_sent += 1
        if self.obs is not None:
            self.obs.net_message(type(payload).__name__, size_bytes)
        if src == dst:
            # local delivery is a memory copy: exempt from link faults
            if self.verify is not None:
                self.verify.on_net_accepted(1)
            self._deliver(message, on_delivered)
            return
        latency = self.latency
        duplicates = 0
        if self.faults is not None:
            verdict = self.faults.judge(src, dst, self.sim.now)
            if verdict.drop:
                if self.verify is not None:
                    self.verify.on_net_dropped("link_fault", src, dst)
                return
            latency = latency * verdict.slow_factor + verdict.extra_delay
            duplicates = verdict.duplicates
        if self.verify is not None:
            self.verify.on_net_accepted(1 + duplicates)
        self.bytes_counter.add(size_bytes)

        def after_serialise():
            self.sim.schedule(latency, lambda: self._deliver(message, on_delivered))
            for copy_index in range(duplicates):
                # a duplicate arrives strictly after the original so the
                # receiver's dedup layer (not delivery order luck) is
                # what keeps the protocol idempotent
                self.bytes_counter.add(message.size_bytes)
                self.sim.schedule(
                    latency * (2 + copy_index),
                    lambda: self._deliver(message, on_delivered),
                )

        self._nics[src].enqueue(size_bytes, after_serialise)

    def _deliver(self, message: Message, on_delivered) -> None:
        if self.verify is not None:
            # settle before the handler runs so message accounting stays
            # balanced even if the handler raises (e.g. a simulated OOM)
            self.verify.on_net_settled(message, message.dst not in self._down)
        if message.dst in self._down:
            return
        handler = self._handlers.get(message.dst)
        if handler is not None:
            handler(message)
        if on_delivered is not None:
            on_delivered(message)
