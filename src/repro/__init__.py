"""G-Miner: an efficient task-oriented graph mining system (EuroSys
2018) — a complete Python reproduction.

Public API at a glance::

    import repro
    from repro.graph.datasets import load_dataset

    graph = load_dataset("orkut-s").graph
    result = repro.mine(graph, workload="tc")          # built-in plan
    result = repro.mine(graph, pattern="tailed-triangle")  # any motif

:func:`repro.mine` is the single mining entrypoint: workload names
resolve to the six built-in plans (the paper's applications, executed
by their legacy growers), and any other pattern — a named motif, a
:class:`~repro.mining.patterns.TreePattern` or a
:class:`~repro.plans.PatternQuery` — is compiled by
:mod:`repro.plans` into a symmetry-broken execution plan run by the
generic grower.  The lower-level job API (``GMinerJob(app, graph,
config).run()``) stays public for custom applications.

Sub-packages: :mod:`repro.sim` (simulated cluster), :mod:`repro.graph`
(graphs, datasets), :mod:`repro.partitioning`, :mod:`repro.mining`
(pure kernels), :mod:`repro.plans` (the pattern compiler behind
:func:`repro.mine`), :mod:`repro.core` (the system), :mod:`repro.apps`
(the paper's applications), :mod:`repro.baselines` (comparison
systems) and :mod:`repro.bench` (the table/figure harness).
"""

from repro.core import (
    Aggregator,
    GMinerApp,
    GMinerConfig,
    GMinerJob,
    JobResult,
    JobStatus,
    Subgraph,
    Task,
    TaskEnv,
    TaskStatus,
)
from repro.graph.graph import Graph, VertexData
from repro.sim.cluster import ClusterSpec
from repro.plans import ExecutionPlan, PatternQuery, compile_pattern, mine

__version__ = "1.0.0"

__all__ = [
    "Aggregator",
    "ClusterSpec",
    "ExecutionPlan",
    "GMinerApp",
    "GMinerConfig",
    "GMinerJob",
    "Graph",
    "JobResult",
    "JobStatus",
    "PatternQuery",
    "Subgraph",
    "Task",
    "TaskEnv",
    "TaskStatus",
    "VertexData",
    "__version__",
    "compile_pattern",
    "mine",
]
