"""Unit tests for the size-k graphlet kernels and the GL application."""

import pytest

from repro.apps import GraphletCountingApp
from repro.core import GMinerConfig, GMinerJob, JobStatus
from repro.graph.algorithms import triangle_count_exact
from repro.graph.graph import Graph
from repro.mining.cost import WorkMeter
from repro.mining.graphlets import (
    classify_graphlet,
    graphlet_count_sequential,
    graphlets_for_seed,
    merge_histograms,
)
from tests.conftest import adjacency_of


class TestClassify:
    @pytest.fixture
    def shapes(self):
        return {
            "triangle": Graph.from_edges([(0, 1), (1, 2), (0, 2)]),
            "path3": Graph.from_edges([(0, 1), (1, 2)]),
            "clique4": Graph.from_edges(
                [(i, j) for i in range(4) for j in range(i + 1, 4)]
            ),
            "cycle4": Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]),
            "star4": Graph.from_edges([(0, 1), (0, 2), (0, 3)]),
            "path4": Graph.from_edges([(0, 1), (1, 2), (2, 3)]),
            "diamond": Graph.from_edges(
                [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]
            ),
            "tailed-triangle": Graph.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)]),
        }

    def test_all_shapes_recognised(self, shapes):
        for name, graph in shapes.items():
            adj = adjacency_of(graph)
            assert classify_graphlet(sorted(adj), adj, WorkMeter()) == name

    def test_large_k_classified_by_edges(self):
        g = Graph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4)])
        adj = adjacency_of(g)
        assert classify_graphlet([0, 1, 2, 3, 4], adj, WorkMeter()) == "k5-e4"

    def test_disconnected_3set_rejected(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        with pytest.raises(ValueError):
            classify_graphlet([0, 1, 2], adjacency_of(g), WorkMeter())


class TestEnumeration:
    def test_triangle_graphlets_match_exact_count(self, small_social_graph):
        adj = adjacency_of(small_social_graph)
        histogram = graphlet_count_sequential(3, adj, WorkMeter())
        assert histogram["triangle"] == triangle_count_exact(small_social_graph)

    def test_k4_on_clique(self):
        k5 = Graph.from_edges([(i, j) for i in range(5) for j in range(i + 1, 5)])
        histogram = graphlet_count_sequential(4, adjacency_of(k5), WorkMeter())
        assert histogram == {"clique4": 5}  # C(5,4)

    def test_k3_on_path(self):
        path = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
        histogram = graphlet_count_sequential(3, adjacency_of(path), WorkMeter())
        assert histogram == {"path3": 2}

    def test_per_seed_counts_each_set_once(self, tiny_graph):
        adj = adjacency_of(tiny_graph)
        total = merge_histograms(
            graphlets_for_seed(v, 3, adj, WorkMeter()) for v in adj
        )
        expected = graphlet_count_sequential(3, adj, WorkMeter())
        assert total == expected

    def test_no_classification_mode(self, tiny_graph):
        adj = adjacency_of(tiny_graph)
        plain = graphlet_count_sequential(3, adj, WorkMeter(), classify=False)
        classified = graphlet_count_sequential(3, adj, WorkMeter())
        assert plain == {"total": sum(classified.values())}

    def test_k_below_two_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            graphlets_for_seed(0, 1, adjacency_of(tiny_graph), WorkMeter())


class TestAgainstBruteForce:
    @staticmethod
    def brute_force_count(adj, k):
        from itertools import combinations

        total = 0
        for combo in combinations(sorted(adj), k):
            cs = set(combo)
            seen = {combo[0]}
            stack = [combo[0]]
            while stack:
                v = stack.pop()
                for u in adj[v]:
                    if u in cs and u not in seen:
                        seen.add(u)
                        stack.append(u)
            if len(seen) == k:
                total += 1
        return total

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_esu_enumerates_every_connected_set_once(self, k):
        from repro.graph.generators import preferential_attachment_graph

        g = preferential_attachment_graph(25, 3, seed=9)
        adj = adjacency_of(g)
        esu = sum(graphlet_count_sequential(k, adj, WorkMeter()).values())
        assert esu == self.brute_force_count(adj, k)


class TestGLApp:
    def test_k3_job_matches_sequential(self, small_social_graph, small_spec):
        expected = graphlet_count_sequential(
            3, adjacency_of(small_social_graph), WorkMeter()
        )
        config = GMinerConfig(cluster=small_spec)
        result = GMinerJob(
            GraphletCountingApp(k=3), small_social_graph, config
        ).run()
        assert result.status is JobStatus.OK
        assert result.value == expected

    def test_k4_job_on_small_graph(self, tiny_graph, small_spec):
        expected = graphlet_count_sequential(
            4, adjacency_of(tiny_graph), WorkMeter()
        )
        config = GMinerConfig(cluster=small_spec)
        result = GMinerJob(GraphletCountingApp(k=4), tiny_graph, config).run()
        assert result.value == expected

    def test_bad_k_rejected(self):
        with pytest.raises(ValueError):
            GraphletCountingApp(k=1)
