"""Tests for NetworkX interop and JSON export."""

import json

import pytest

networkx = pytest.importorskip("networkx")

from repro.apps import MaxCliqueApp, TriangleCountingApp
from repro.bench.export import (
    experiment_report_to_dict,
    job_result_to_dict,
    save_json,
)
from repro.bench.report import ExperimentReport
from repro.core import GMinerConfig, GMinerJob
from repro.graph.algorithms import triangle_count_exact
from repro.graph.interop import from_networkx, to_networkx


class TestNetworkXInterop:
    def test_round_trip_structure(self, small_social_graph):
        nx_graph = to_networkx(small_social_graph)
        back = from_networkx(nx_graph)
        assert back.num_vertices == small_social_graph.num_vertices
        assert back.num_edges == small_social_graph.num_edges
        for v in small_social_graph.vertices():
            assert back.neighbors(v) == small_social_graph.neighbors(v)

    def test_labels_and_attrs_carried(self, tiny_graph):
        tiny_graph.set_label(0, "a")
        tiny_graph.set_attributes(1, [5, 6])
        nx_graph = to_networkx(tiny_graph)
        assert nx_graph.nodes[0]["label"] == "a"
        assert nx_graph.nodes[1]["attrs"] == [5, 6]
        back = from_networkx(nx_graph)
        assert back.label(0) == "a"
        assert back.attributes(1) == (5, 6)

    def test_non_integer_nodes_rejected(self):
        g = networkx.Graph()
        g.add_edge("a", "b")
        with pytest.raises(ValueError):
            from_networkx(g)

    def test_mining_on_imported_graph(self, small_spec):
        nx_graph = networkx.karate_club_graph()
        graph = from_networkx(nx_graph)
        result = GMinerJob(
            TriangleCountingApp(), graph, GMinerConfig(cluster=small_spec)
        ).run()
        assert result.value == triangle_count_exact(graph)
        # independent oracle: networkx's triangle counter (per-vertex,
        # each triangle counted three times)
        assert result.value == sum(networkx.triangles(nx_graph).values()) // 3


class TestJSONExport:
    @pytest.fixture
    def result(self, small_social_graph, small_spec):
        config = GMinerConfig(cluster=small_spec, enable_tracing=True)
        return GMinerJob(MaxCliqueApp(), small_social_graph, config).run()

    def test_job_result_roundtrips_through_json(self, result):
        record = result.to_dict()
        text = json.dumps(record)
        loaded = json.loads(text)
        assert loaded["status"] == "ok"
        assert loaded["app"] == "mcf"
        assert loaded["total_seconds"] == pytest.approx(result.total_seconds)
        assert "utilization" in loaded
        assert "trace_summary" in loaded

    def test_deprecated_export_path_raises(self, result):
        # the deprecation cycle is over: the shim is a tombstone
        with pytest.raises(TypeError, match="to_dict"):
            job_result_to_dict(result)

    def test_value_serialised(self, result):
        record = result.to_dict()
        assert record["value"] == list(result.value)

    def test_save_json(self, result, tmp_path):
        record = result.to_dict()
        path = save_json(record, str(tmp_path / "r" / "out.json"))
        with open(path) as fh:
            assert json.load(fh)["app"] == "mcf"

    def test_experiment_report_export(self, result):
        report = ExperimentReport(
            "t", "Title", "body", data={"run": result}, checks=["c"]
        )
        record = experiment_report_to_dict(report)
        json.dumps(record)  # must be serialisable
        assert record["data"]["run"]["status"] == "ok"
