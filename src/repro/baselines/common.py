"""Shared plumbing for baseline systems.

Baselines describe *workloads* abstractly (app name + parameters) and
run the same pure kernels as the G-Miner applications, so results are
directly comparable.  :class:`WorkloadSpec` resolves an app into the
pieces a baseline model needs (sequential kernel, per-seed work, label
maps, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.api import GMinerApp
from repro.core.job import JobResult, JobStatus
from repro.graph.graph import Graph
from repro.mining.cost import Budget, BudgetExceeded, WorkMeter


@dataclass
class GraphView:
    """Plain-dict view of a graph, shared by all baseline kernels."""

    adjacency: Dict[int, Tuple[int, ...]]
    labels: Dict[int, Optional[str]]
    attributes: Dict[int, Tuple[int, ...]]

    @classmethod
    def of(cls, graph: Graph) -> "GraphView":
        adjacency = {}
        labels = {}
        attributes = {}
        for v in graph.vertices():
            adjacency[v] = graph.neighbors(v)
            labels[v] = graph.label(v)
            attributes[v] = graph.attributes(v)
        return cls(adjacency=adjacency, labels=labels, attributes=attributes)


class UnsupportedWorkload(Exception):
    """The baseline's programming model cannot express this app.

    The paper's Tables 3–5 mark these situations structurally: the
    vertex-centric systems cannot express GM/CD/GC at all.
    """

    def __init__(self, system: str, app: str):
        self.system = system
        self.app = app
        super().__init__(f"{system} cannot express workload {app!r}")


def make_result(
    status: JobStatus,
    app_name: str,
    value: Any = None,
    total_seconds: float = 0.0,
    cpu_utilization: float = 0.0,
    peak_memory_bytes: int = 0,
    network_bytes: int = 0,
    disk_bytes: int = 0,
    stats: Optional[Dict[str, float]] = None,
    timeline=None,
    mining_window: Tuple[float, float] = (0.0, 0.0),
) -> JobResult:
    """Build a JobResult for a baseline run."""
    return JobResult(
        status=status,
        app_name=app_name,
        value=value,
        total_seconds=total_seconds,
        mining_seconds=total_seconds,
        cpu_utilization=cpu_utilization,
        peak_memory_bytes=peak_memory_bytes,
        network_bytes=network_bytes,
        disk_bytes=disk_bytes,
        stats=stats or {},
        timeline=timeline,
        mining_window=mining_window,
    )
