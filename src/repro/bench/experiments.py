"""One function per table/figure of the paper's evaluation (§8).

Each function runs the scaled experiment, renders it in the paper's
format, records *shape checks* (the qualitative claims that should
survive scaling: who wins, who fails, what direction each knob moves)
and documents deviations.  ``benchmarks/`` executes these under
pytest-benchmark; EXPERIMENTS.md archives their output.

Every experiment first *declares* its grid of independent cells as
:class:`~repro.parallel.RunRequest` records, then executes the batch
through the ambient :class:`~repro.parallel.ParallelRunner`
(:func:`_run_cells`).  Results come back in request order, so the
assembled tables are byte-identical whether the batch ran serially or
fanned out over ``--workers N`` processes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bench.report import ExperimentReport, format_cell, render_series, render_table
from repro.bench.runner import EXPERIMENT_SPEC
from repro.core.job import JobResult, JobStatus
from repro.graph.datasets import dataset_table
from repro.parallel import RunRequest, current_runner
from repro.sim.cluster import ClusterSpec
from repro.sim.failures import FailurePlan

NON_ATTRIBUTED = ("skitter-s", "orkut-s", "btc-s", "friendster-s")
COMPARED_SYSTEMS = ("arabesque", "giraph", "graphx", "gthinker", "gminer")

#: Declarative cell builder, re-exported for brevity in the grids below.
_cell = RunRequest.make


def _run_cells(requests: Sequence[RunRequest]) -> List[Optional[JobResult]]:
    """Execute a batch of cells via the ambient runner, in order."""
    return current_runner().map(list(requests))


def _spec(num_nodes: int, cores: int) -> ClusterSpec:
    return EXPERIMENT_SPEC.with_nodes(num_nodes).with_cores(cores)


# ----------------------------------------------------------------------
# Table 1 — motivation: MCF on Orkut across systems
# ----------------------------------------------------------------------

def table1_motivation() -> ExperimentReport:
    """MCF on orkut-s, 8 worker nodes, every system + single thread."""
    spec = _spec(8, EXPERIMENT_SPEC.cores_per_node)
    systems = ["single-thread", "arabesque", "giraph", "graphx", "gthinker", "gminer"]
    requests = [
        _cell(
            "mcf", "orkut-s", system,
            spec=ClusterSpec(num_nodes=1, cores_per_node=1)
            if system == "single-thread"
            else spec,
        )
        for system in systems
    ]
    results: Dict[str, Optional[JobResult]] = dict(zip(systems, _run_cells(requests)))
    rows: List[List[str]] = []
    for system in systems:
        result = results[system]
        cores = 1 if system == "single-thread" else spec.total_cores
        rows.append(
            [
                str(cores),
                format_cell(result, "mem"),
                format_cell(result, "net"),
                format_cell(result, "cpu"),
                format_cell(result, "time"),
            ]
        )
    rendered = render_table(
        "Table 1: max-clique finding on orkut-s ('-': over limit; 'x': OOM)",
        ["Cores", "Mem", "Net", "CPU Util", "Time(s)"],
        rows,
        systems,
        label_header="System",
    )
    checks, notes = [], []
    single = results["single-thread"]
    gthinker = results["gthinker"]
    gminer = results["gminer"]
    if single.ok and single.cpu_utilization == 1.0:
        checks.append("single-thread runs at 100% CPU")
    if results["giraph"].status is JobStatus.OOM:
        checks.append("giraph-like OOMs (paper: x)")
    if results["graphx"].status is not JobStatus.OK:
        checks.append("graphx-like fails to finish (paper: >24h)")
    if results["arabesque"].status is not JobStatus.OK:
        checks.append("arabesque-like fails to finish (paper: >24h)")
    if gthinker.ok and gthinker.total_seconds < single.total_seconds:
        checks.append("gthinker-like beats single thread (paper: 164.6s vs 86640s)")
    if gminer.ok and gminer.total_seconds <= gthinker.total_seconds * 1.5:
        checks.append("gminer competitive with or beating gthinker")
    return ExperimentReport(
        "table1", "Motivation: MCF on Orkut", rendered,
        data={s: r for s, r in results.items()}, checks=checks, notes=notes,
    )


# ----------------------------------------------------------------------
# Table 2 — dataset statistics
# ----------------------------------------------------------------------

def table2_datasets() -> ExperimentReport:
    """Dataset statistics of the scaled stand-ins (paper Table 2)."""
    rendered = dataset_table()
    return ExperimentReport(
        "table2",
        "Graph datasets (scaled stand-ins; see DESIGN.md for the mapping)",
        rendered,
    )


# ----------------------------------------------------------------------
# Table 3 — TC & MCF elapsed time, 4 graphs x 5 systems
# ----------------------------------------------------------------------

def table3_tc_mcf() -> ExperimentReport:
    """TC & MCF elapsed time: 4 graphs x 5 systems (paper Table 3)."""
    cases = [(app, dataset) for app in ("tc", "mcf") for dataset in NON_ATTRIBUTED]
    requests = [
        _cell(app, dataset, system)
        for app, dataset in cases
        for system in COMPARED_SYSTEMS
    ]
    results = _run_cells(requests)
    row_labels: List[str] = []
    rows: List[List[str]] = []
    data: Dict[str, Dict[str, Optional[JobResult]]] = {}
    for i, (app, dataset) in enumerate(cases):
        label = f"{app.upper()} {dataset}"
        row_labels.append(label)
        block = results[i * len(COMPARED_SYSTEMS):(i + 1) * len(COMPARED_SYSTEMS)]
        data[label] = dict(zip(COMPARED_SYSTEMS, block))
        rows.append([format_cell(result) for result in block])
    rendered = render_table(
        "Table 3: elapsed time in seconds ('-': over limit; 'x': OOM)",
        list(COMPARED_SYSTEMS),
        rows,
        row_labels,
        label_header="Workload",
    )
    checks, notes = [], []
    gminer_ok = all(data[l]["gminer"].ok for l in row_labels)
    gthinker_ok = all(data[l]["gthinker"].ok for l in row_labels)
    if gminer_ok:
        checks.append("G-Miner succeeds on every workload/dataset")
    if gthinker_ok:
        checks.append("gthinker-like succeeds everywhere (the only other survivor)")
    heavy_failures = sum(
        1
        for l in row_labels
        for s in ("arabesque", "giraph", "graphx")
        if data[l][s] is not None and not data[l][s].ok
    )
    checks.append(
        f"{heavy_failures} failures among arabesque/giraph/graphx cells "
        "(paper: 17 of 24)"
    )
    wins = sum(
        1
        for l in row_labels
        if data[l]["gminer"].ok
        and all(
            (not r.ok) or data[l]["gminer"].total_seconds <= r.total_seconds * 1.6
            for s, r in data[l].items()
            if s != "gminer" and r is not None
        )
    )
    checks.append(f"G-Miner fastest or within 1.6x of best on {wins}/8 rows")
    notes.append(
        "failure *flavours* can differ from the paper at reduced scale "
        "(a run that OOM'd on the real 48GB nodes may time out here instead); "
        "the success/failure pattern is what is preserved"
    )
    return ExperimentReport(
        "table3", "TC & MCF across systems", rendered, data=data,
        checks=checks, notes=notes,
    )


# ----------------------------------------------------------------------
# Table 4 — GM: G-Miner vs G-thinker with resource metrics
# ----------------------------------------------------------------------

def table4_gm() -> ExperimentReport:
    """GM resource comparison, G-Miner vs G-thinker (paper Table 4)."""
    requests = [
        _cell("gm", dataset, system)
        for dataset in NON_ATTRIBUTED
        for system in ("gminer", "gthinker")
    ]
    results = _run_cells(requests)
    rows = []
    labels = []
    data: Dict[str, Dict[str, JobResult]] = {}
    for i, dataset in enumerate(NON_ATTRIBUTED):
        gm, gt = results[2 * i], results[2 * i + 1]
        data[dataset] = {"gminer": gm, "gthinker": gt}
        labels.append(dataset)
        rows.append(
            [
                str(gm.value),
                format_cell(gm), format_cell(gt),
                format_cell(gm, "cpu"), format_cell(gt, "cpu"),
                format_cell(gm, "mem"), format_cell(gt, "mem"),
                format_cell(gm, "net"), format_cell(gt, "net"),
            ]
        )
    rendered = render_table(
        "Table 4: graph matching — G-Miner vs gthinker-like",
        [
            "Matches",
            "GM t(s)", "GT t(s)",
            "GM cpu", "GT cpu",
            "GM mem", "GT mem",
            "GM net", "GT net",
        ],
        rows,
        labels,
        label_header="Dataset",
    )
    checks = []
    if all(
        d["gminer"].value == d["gthinker"].value
        for d in data.values()
        if d["gminer"].ok and d["gthinker"].ok
    ):
        checks.append("both systems report identical match counts")
    faster = sum(
        1 for d in data.values()
        if d["gminer"].total_seconds < d["gthinker"].total_seconds
    )
    checks.append(f"G-Miner faster on {faster}/4 datasets (paper: 4/4, 2-6x)")
    higher_cpu = sum(
        1 for d in data.values()
        if d["gminer"].cpu_utilization > d["gthinker"].cpu_utilization
    )
    checks.append(f"G-Miner higher CPU utilisation on {higher_cpu}/4 (paper: 4/4)")
    less_net = sum(
        1 for d in data.values()
        if d["gminer"].network_bytes < d["gthinker"].network_bytes
    )
    checks.append(f"G-Miner less network traffic on {less_net}/4 (paper: 4/4)")
    return ExperimentReport(
        "table4", "GM: G-Miner vs G-thinker", rendered, data=data, checks=checks
    )


# ----------------------------------------------------------------------
# Table 5 — CD & GC on G-Miner (no other system can run them)
# ----------------------------------------------------------------------

def table5_cd_gc() -> ExperimentReport:
    """CD & GC on G-Miner, the only system that runs them (Table 5)."""
    cd_datasets = ("skitter-s", "orkut-s", "friendster-s", "dblp-s", "tencent-s")
    gc_datasets = ("skitter-s", "orkut-s", "friendster-s", "dblp-s")  # paper: no Tencent
    # GC is the paper's heaviest workload (9h on Friendster vs 26min
    # for MCF); it gets the proportionally longer cutoff here too.
    cases = [
        (app, dataset)
        for app, datasets in (("cd", cd_datasets), ("gc", gc_datasets))
        for dataset in datasets
    ]
    results = _run_cells(
        [_cell(app, dataset, time_limit=150.0) for app, dataset in cases]
    )
    rows, labels = [], []
    data: Dict[str, JobResult] = {}
    for (app, dataset), result in zip(cases, results):
        key = f"{app.upper()} {dataset}"
        data[key] = result
        labels.append(key)
        found = len(result.value) if result.value else 0
        rows.append(
            [format_cell(result), format_cell(result, "mem"), str(found)]
        )
    rendered = render_table(
        "Table 5: CD & GC on G-Miner (no baseline can express them)",
        ["Time(s)", "Mem", "Found"],
        rows,
        labels,
        label_header="Workload",
    )
    checks = []
    if all(r.ok for r in data.values()):
        checks.append("G-Miner completes every CD/GC run (paper: all succeed)")
    if data["CD tencent-s"].value and data["CD dblp-s"].value:
        checks.append("communities found on the attributed datasets")
    return ExperimentReport(
        "table5", "Heavy attributed workloads", rendered, data=data, checks=checks
    )


# ----------------------------------------------------------------------
# Figures 5 & 6 — utilisation timelines, GM on Friendster
# ----------------------------------------------------------------------

def fig5_6_utilization(bins: int = 30) -> ExperimentReport:
    """Utilisation timelines, GM on Friendster (paper Figures 5-6)."""
    gt, gm = _run_cells(
        [
            _cell("gm", "friendster-s", "gthinker", time_limit=60.0),
            _cell("gm", "friendster-s", "gminer", time_limit=60.0),
        ]
    )
    t_gt, s_gt = gt.utilization_series(bins=bins)
    t_gm, s_gm = gm.utilization_series(bins=bins)
    part1 = render_series(
        "Figure 5: gthinker-like utilisation, GM on friendster-s (%)",
        "t(s)", [f"{t:.2f}" for t in t_gt], s_gt, fmt="{:.1f}",
    )
    part2 = render_series(
        "Figure 6: G-Miner utilisation, GM on friendster-s (%)",
        "t(s)", [f"{t:.2f}" for t in t_gm], s_gm, fmt="{:.1f}",
    )
    checks = []
    mean_gt = sum(s_gt["cpu"]) / len(s_gt["cpu"])
    mean_gm = sum(s_gm["cpu"]) / len(s_gm["cpu"])
    if mean_gm > mean_gt:
        checks.append(
            f"G-Miner mean CPU {mean_gm:.1f}% > gthinker {mean_gt:.1f}% (paper: 85% vs 15%)"
        )
    # batch systems stall: count bins with near-zero CPU
    stalls_gt = sum(1 for v in s_gt["cpu"] if v < max(s_gt["cpu"]) * 0.2)
    stalls_gm = sum(1 for v in s_gm["cpu"] if v < max(s_gm["cpu"]) * 0.2)
    if stalls_gt > stalls_gm:
        checks.append(
            f"gthinker shows {stalls_gt} stalled bins vs G-Miner {stalls_gm} "
            "(the paper's intermittent CPU troughs)"
        )
    return ExperimentReport(
        "fig5_6", "CPU/network/disk utilisation timelines",
        part1 + "\n\n" + part2,
        data={"gthinker": (t_gt, s_gt), "gminer": (t_gm, s_gm)},
        checks=checks,
    )


# ----------------------------------------------------------------------
# Figure 7 — the COST metric (single node, 1..24 cores)
# ----------------------------------------------------------------------

def fig7_cost(core_counts: Sequence[int] = (1, 2, 4, 8, 12, 24)) -> ExperimentReport:
    """The COST metric: cores needed to beat one thread (Figure 7)."""
    cases = [("tc", "skitter-s"), ("tc", "orkut-s"), ("gm", "skitter-s"), ("gm", "orkut-s")]
    requests = []
    for app, dataset in cases:
        requests.append(_cell(app, dataset, "single-thread"))
        for cores in core_counts:
            requests.append(
                _cell(app, dataset, spec=_spec(1, cores), time_limit=None)
            )
    results = _run_cells(requests)
    series: Dict[str, List[float]] = {}
    single: Dict[str, float] = {}
    cost: Dict[str, Optional[int]] = {}
    stride = 1 + len(core_counts)
    for i, (app, dataset) in enumerate(cases):
        name = f"{app}-{dataset}"
        block = results[i * stride:(i + 1) * stride]
        single[name] = block[0].total_seconds
        times = [r.total_seconds for r in block[1:]]
        series[name] = times
        cost[name] = next(
            (c for c, t in zip(core_counts, times) if t < single[name]), None
        )
    rendered = render_series(
        "Figure 7: G-Miner on one node (seconds; single-thread baseline in data)",
        "cores", list(core_counts), series,
    )
    rendered += "\nsingle-thread: " + ", ".join(
        f"{k}={v:.3f}s" for k, v in single.items()
    )
    rendered += "\nCOST: " + ", ".join(f"{k}={v}" for k, v in cost.items())
    checks = []
    low_cost = sum(1 for v in cost.values() if v is not None and v <= 4)
    checks.append(f"COST <= 4 cores for {low_cost}/4 cases (paper: 2-3 for 4/4)")
    speedups = {
        k: single[k] / series[k][-1] for k in series
    }
    if all(s > 2.0 for s in speedups.values()):
        checks.append("speedup at 24 cores exceeds 2x everywhere")
    return ExperimentReport(
        "fig7", "The COST of scalability", rendered,
        data={"series": series, "single": single, "cost": cost},
        checks=checks,
        notes=[
            "speedups saturate earlier than the paper's 12.8x because the "
            "scaled graphs carry ~10^3x fewer tasks per core"
        ],
    )


# ----------------------------------------------------------------------
# Figures 8 & 9 — vertical / horizontal scalability
# ----------------------------------------------------------------------

def fig8_vertical(core_counts: Sequence[int] = (1, 2, 4, 8, 12, 24)) -> ExperimentReport:
    """Vertical scalability: cores/node sweep (paper Figure 8)."""
    apps = ("mcf", "gm")
    results = _run_cells(
        [
            _cell(app, "friendster-s", spec=_spec(15, cores), time_limit=None)
            for app in apps
            for cores in core_counts
        ]
    )
    series: Dict[str, List[float]] = {}
    for i, app in enumerate(apps):
        block = results[i * len(core_counts):(i + 1) * len(core_counts)]
        series[f"{app}-friendster-s"] = [r.total_seconds for r in block]
    rendered = render_series(
        "Figure 8: vertical scalability (15 nodes, cores/node swept)",
        "cores/node", list(core_counts), series,
    )
    checks = []
    for name, times in series.items():
        if times[0] > times[-1]:
            checks.append(f"{name}: more cores/node reduces time "
                          f"({times[0]:.3f}s -> {times[-1]:.3f}s)")
    return ExperimentReport(
        "fig8", "Vertical scalability", rendered, data=series, checks=checks
    )


def fig9_horizontal(node_counts: Sequence[int] = (10, 15, 20)) -> ExperimentReport:
    """Horizontal scalability: node-count sweep (paper Figure 9)."""
    apps = ("mcf", "gm")
    results = _run_cells(
        [
            _cell(app, "friendster-s", spec=_spec(nodes, 4), time_limit=None)
            for app in apps
            for nodes in node_counts
        ]
    )
    series: Dict[str, List[float]] = {}
    for i, app in enumerate(apps):
        block = results[i * len(node_counts):(i + 1) * len(node_counts)]
        series[f"{app}-friendster-s"] = [r.total_seconds for r in block]
    rendered = render_series(
        "Figure 9: horizontal scalability (4 cores/node, nodes swept)",
        "nodes", list(node_counts), series,
    )
    checks = []
    for name, times in series.items():
        if times[0] >= times[-1]:
            checks.append(f"{name}: 20 nodes no slower than 10 "
                          f"({times[0]:.3f}s -> {times[-1]:.3f}s)")
    return ExperimentReport(
        "fig9", "Horizontal scalability", rendered, data=series, checks=checks
    )


# ----------------------------------------------------------------------
# Figure 10 — scalability of the other systems
# ----------------------------------------------------------------------

def fig10_baseline_scalability(
    node_counts: Sequence[int] = (5, 10, 15, 20),
) -> ExperimentReport:
    """Scalability of the other systems on TC (paper Figure 10)."""
    datasets = ("skitter-s", "orkut-s")
    systems = ("arabesque", "giraph", "graphx", "gthinker")
    results = _run_cells(
        [
            _cell("tc", dataset, system, spec=_spec(nodes, 4))
            for dataset in datasets
            for system in systems
            for nodes in node_counts
        ]
    )
    blocks = []
    data: Dict[str, Dict[str, List[float]]] = {}
    index = 0
    for dataset in datasets:
        series: Dict[str, List[float]] = {}
        for system in systems:
            block = results[index:index + len(node_counts)]
            index += len(node_counts)
            series[system] = [
                r.total_seconds if r.ok else float("nan") for r in block
            ]
        data[dataset] = series
        blocks.append(
            render_series(
                f"Figure 10: TC on {dataset} (seconds)",
                "nodes", list(node_counts), series,
            )
        )
    checks = ["baseline systems show flat or erratic scaling (paper: 'no guarantee')"]
    return ExperimentReport(
        "fig10", "Scalability of other systems", "\n\n".join(blocks),
        data=data, checks=checks,
    )


# ----------------------------------------------------------------------
# Figure 11 — BDG vs hash partitioning
# ----------------------------------------------------------------------

def fig11_bdg() -> ExperimentReport:
    """BDG vs hash partitioning on MCF (paper Figure 11)."""
    datasets = ("orkut-s", "friendster-s")
    parts = ("hash", "bdg")
    results = _run_cells(
        [
            _cell("mcf", dataset, partitioner=part)
            for dataset in datasets
            for part in parts
        ]
    )
    rows, labels = [], []
    data: Dict[str, Dict[str, JobResult]] = {}
    for i, dataset in enumerate(datasets):
        runs = dict(zip(parts, results[i * len(parts):(i + 1) * len(parts)]))
        data[dataset] = runs
        for part in parts:
            r = runs[part]
            labels.append(f"{dataset} {part}")
            rows.append(
                [
                    f"{r.partition_seconds:.3f}",
                    f"{r.mining_seconds:.3f}",
                    f"{r.total_seconds:.3f}",
                    format_cell(r, "mem"),
                    format_cell(r, "net"),
                ]
            )
    rendered = render_table(
        "Figure 11: BDG vs hash partitioning (MCF)",
        ["Partition(s)", "Mining(s)", "Total(s)", "Mem", "Net"],
        rows,
        labels,
        label_header="Run",
    )
    checks, notes = [], []
    for dataset, runs in data.items():
        if runs["bdg"].partition_seconds > runs["hash"].partition_seconds:
            checks.append(f"{dataset}: BDG pays more partitioning time (paper shape)")
        if runs["bdg"].network_bytes < runs["hash"].network_bytes:
            checks.append(f"{dataset}: BDG reduces network traffic (paper shape)")
        if runs["bdg"].mining_seconds <= runs["hash"].mining_seconds * 1.1:
            checks.append(f"{dataset}: BDG mining time competitive")
    notes.append(
        "the paper's 35% total-time win does not fully materialise at this "
        "scale: a 2000-vertex dense graph cut 15 ways has ~87% external "
        "edges whichever partitioner runs, so locality gains are bounded"
    )
    return ExperimentReport(
        "fig11", "BDG partitioning", rendered, data=data, checks=checks, notes=notes
    )


# ----------------------------------------------------------------------
# Figure 12 — LSH task priority queue on/off
# ----------------------------------------------------------------------

def fig12_lsh() -> ExperimentReport:
    """LSH task priority queue En/Dis ablation (paper Figure 12)."""
    cases = [("gm", "orkut-s"), ("gm", "friendster-s"), ("mcf", "orkut-s"), ("mcf", "friendster-s")]
    results = _run_cells(
        [
            _cell(app, dataset, enable_lsh=enabled)
            for app, dataset in cases
            for enabled in (True, False)
        ]
    )
    rows, labels = [], []
    data = {}
    for i, (app, dataset) in enumerate(cases):
        en, dis = results[2 * i], results[2 * i + 1]
        key = f"{app}-{dataset}"
        data[key] = {"en": en, "dis": dis}
        labels.append(key)
        rows.append(
            [
                f"{en.total_seconds:.3f}", f"{dis.total_seconds:.3f}",
                f"{en.stats['cache_hit_rate']:.2f}", f"{dis.stats['cache_hit_rate']:.2f}",
                f"{int(en.stats['vertices_pulled'])}", f"{int(dis.stats['vertices_pulled'])}",
            ]
        )
    rendered = render_table(
        "Figure 12: LSH-based task priority queue (En vs Dis)",
        ["En t(s)", "Dis t(s)", "En hit", "Dis hit", "En pulls", "Dis pulls"],
        rows,
        labels,
        label_header="Case",
    )
    slower = sum(
        1 for d in data.values()
        if d["dis"].total_seconds > d["en"].total_seconds
    )
    checks = [f"disabling LSH slows {slower}/4 cases (paper: up to 40% worse)"]
    return ExperimentReport(
        "fig12", "LSH task ordering", rendered, data=data, checks=checks
    )


# ----------------------------------------------------------------------
# Figure 13 — task stealing on/off
# ----------------------------------------------------------------------

def fig13_stealing() -> ExperimentReport:
    """Task stealing En/Dis ablation (paper Figure 13).

    The paper's GM/MCF cases are included for parity, plus TC cases:
    at our scale GM/MCF leave only a handful of long tasks per worker
    (little INACTIVE backlog to steal), while TC's thousands of skewed
    tasks expose the ~1.5x effect the paper reports.
    """
    cases = [
        ("gm", "orkut-s"), ("gm", "friendster-s"),
        ("mcf", "orkut-s"), ("mcf", "friendster-s"),
        ("tc", "orkut-s"), ("tc", "friendster-s"),
    ]
    results = _run_cells(
        [
            _cell(app, dataset, enable_stealing=enabled)
            for app, dataset in cases
            for enabled in (True, False)
        ]
    )
    rows, labels = [], []
    data = {}
    for i, (app, dataset) in enumerate(cases):
        en, dis = results[2 * i], results[2 * i + 1]
        key = f"{app}-{dataset}"
        data[key] = {"en": en, "dis": dis}
        labels.append(key)
        rows.append(
            [
                f"{en.total_seconds:.3f}", f"{dis.total_seconds:.3f}",
                f"{int(en.stats['tasks_migrated'])}",
                f"{100 * en.cpu_utilization:.1f}%", f"{100 * dis.cpu_utilization:.1f}%",
            ]
        )
    rendered = render_table(
        "Figure 13: task stealing (En vs Dis)",
        ["En t(s)", "Dis t(s)", "Migrated", "En cpu", "Dis cpu"],
        rows,
        labels,
        label_header="Case",
    )
    helped = sum(
        1 for d in data.values()
        if d["en"].total_seconds <= d["dis"].total_seconds
    )
    tc_speedup = (
        data["tc-orkut-s"]["dis"].total_seconds
        / data["tc-orkut-s"]["en"].total_seconds
    )
    checks = [
        f"stealing helps or is neutral in {helped}/{len(cases)} cases",
        f"TC orkut speedup from stealing: {tc_speedup:.2f}x (paper: ~1.5x)",
    ]
    return ExperimentReport(
        "fig13", "Task stealing", rendered, data=data, checks=checks
    )


# ----------------------------------------------------------------------
# Ablation A — RCV vs LRU vs FIFO cache (paper §7 discussion)
# ----------------------------------------------------------------------

def ablation_cache() -> ExperimentReport:
    """RCV vs LRU vs FIFO vertex cache (paper §7 discussion)."""
    cases = [
        (app, dataset, policy)
        for app, dataset in (("gm", "orkut-s"), ("mcf", "orkut-s"))
        for policy in ("rcv", "lru", "fifo")
    ]
    results = _run_cells(
        [_cell(app, dataset, cache_policy=policy) for app, dataset, policy in cases]
    )
    rows, labels = [], []
    data = {}
    for (app, dataset, policy), r in zip(cases, results):
        key = f"{app} {policy}"
        data[key] = r
        labels.append(key)
        rows.append(
            [
                f"{r.total_seconds:.3f}",
                f"{r.stats['cache_hit_rate']:.2f}",
                f"{int(r.stats['re_pulls'])}",
            ]
        )
    rendered = render_table(
        "Ablation A: RCV cache vs LRU/FIFO (paper §7)",
        ["Time(s)", "Hit rate", "Re-pulls"],
        rows,
        labels,
        label_header="Run",
    )
    checks = []
    for app in ("gm", "mcf"):
        rcv = data[f"{app} rcv"]
        if all(
            rcv.stats["re_pulls"] <= data[f"{app} {p}"].stats["re_pulls"]
            for p in ("lru", "fifo")
        ):
            checks.append(
                f"{app}: RCV never re-pulls a vertex a ready task depends on; "
                "LRU/FIFO do"
            )
    return ExperimentReport(
        "ablationA", "Cache policy", rendered, data=data, checks=checks
    )


# ----------------------------------------------------------------------
# Ablation B — recursive task splitting (paper §9)
# ----------------------------------------------------------------------

def ablation_splitting() -> ExperimentReport:
    """Recursive task splitting extension (paper §9 future work)."""
    settings = (False, True)
    results = _run_cells(
        [
            _cell(
                "gm", "orkut-s",
                enable_splitting=enabled, split_candidate_threshold=64,
            )
            for enabled in settings
        ]
    )
    rows, labels, data = [], [], {}
    for enabled, r in zip(settings, results):
        key = "split-on" if enabled else "split-off"
        data[key] = r
        labels.append(key)
        rows.append(
            [
                f"{r.total_seconds:.3f}",
                f"{100 * r.cpu_utilization:.1f}%",
                str(int(r.stats["tasks_created"])),
                str(r.value),
            ]
        )
    rendered = render_table(
        "Ablation B: recursive task splitting (paper §9 future work), GM on orkut-s",
        ["Time(s)", "CPU", "Tasks", "Matches"],
        rows,
        labels,
        label_header="Run",
    )
    checks = []
    if data["split-on"].value == data["split-off"].value:
        checks.append("splitting preserves the exact match count")
    if data["split-on"].stats["tasks_created"] > data["split-off"].stats["tasks_created"]:
        checks.append("splitting creates finer-grained tasks")
    return ExperimentReport(
        "ablationB", "Recursive task splitting", rendered, data=data, checks=checks
    )


# ----------------------------------------------------------------------
# Ablation C — fault tolerance: checkpointing + failure recovery (§7)
# ----------------------------------------------------------------------

def ablation_fault_tolerance() -> ExperimentReport:
    """Checkpoint overhead and failure recovery (paper §7)."""
    plan = FailurePlan().kill(node_id=3, at_time=0.3, recovery_delay=0.05)
    baseline, with_ckpt, with_failure = _run_cells(
        [
            _cell("mcf", "orkut-s"),
            _cell("mcf", "orkut-s", checkpoint_interval=0.1),
            _cell(
                "mcf", "orkut-s", checkpoint_interval=0.1, failure_plan=plan,
                time_limit=60.0,
            ),
        ]
    )
    rows = [
        [f"{baseline.total_seconds:.3f}", str(len(baseline.value)), "0"],
        [f"{with_ckpt.total_seconds:.3f}", str(len(with_ckpt.value)),
         str(int(with_ckpt.stats["checkpoints"]))],
        [f"{with_failure.total_seconds:.3f}", str(len(with_failure.value)),
         str(int(with_failure.stats["checkpoints"]))],
    ]
    rendered = render_table(
        "Ablation C: fault tolerance (MCF on orkut-s, worker 3 killed at t=0.3s)",
        ["Time(s)", "Clique", "Checkpoints"],
        rows,
        ["no checkpoints", "checkpoints", "checkpoint + failure"],
        label_header="Run",
    )
    checks = []
    if with_failure.ok and len(with_failure.value) == len(baseline.value):
        checks.append("the job survives a worker failure with the correct result")
    if with_ckpt.total_seconds < baseline.total_seconds * 1.5:
        checks.append("checkpoint overhead is modest")
    return ExperimentReport(
        "ablationC", "Fault tolerance", rendered,
        data={"baseline": baseline, "ckpt": with_ckpt, "failure": with_failure},
        checks=checks,
    )


# ----------------------------------------------------------------------
# Ablation C2 — chaos: seeded random fault schedules (§7)
# ----------------------------------------------------------------------

def _chaos_plan(seed: int, clean: JobResult, num_nodes: int) -> FailurePlan:
    """Expand ``seed`` into a random fault schedule against ``clean``'s
    timeline: kills that always recover, plus link loss, duplication,
    reordering, slow links and healed partition windows."""
    import random as _random

    rng = _random.Random(seed)
    plan = FailurePlan(seed=seed)
    dur = clean.mining_seconds
    for victim in rng.sample(range(num_nodes), rng.randint(1, 2)):
        plan.kill(
            victim,
            at_time=clean.setup_seconds + rng.uniform(0.2, 0.9) * dur,
            recovery_delay=rng.uniform(0.05, 0.2),
        )
    if rng.random() < 0.7:
        plan.lossy(rng.uniform(0.02, 0.15))
    if rng.random() < 0.5:
        plan.duplicating(rng.uniform(0.02, 0.2))
    if rng.random() < 0.5:
        plan.reordering(rng.uniform(0.05, 0.3), delay=0.002)
    if rng.random() < 0.4:
        plan.slow_link(rng.uniform(1.5, 4.0), src=rng.randrange(num_nodes))
    if rng.random() < 0.4:
        a, b = rng.sample(range(num_nodes), 2)
        start = clean.setup_seconds + rng.uniform(0.1, 0.5) * dur
        plan.partition(src=a, dst=b, start=start, end=start + rng.uniform(0.02, 0.08))
        plan.partition(src=b, dst=a, start=start, end=start + rng.uniform(0.02, 0.08))
    return plan


def ablation_chaos(seeds: Sequence[int] = (0, 1, 2, 3, 4)) -> ExperimentReport:
    """Seeded chaos schedules (§7): results must match fault-free exactly.

    A fault-free TC run fixes the timeline; each seed then expands into
    a random schedule of kills, loss, duplication, reordering, slow
    links and partition windows.  The headline check is exactness: the
    mined value and result count are identical to the fault-free run
    for every seed, with the detection/retry machinery visibly at work.
    """
    (clean,) = _run_cells([_cell("tc", "skitter-s", checkpoint_interval=0.1)])
    num_nodes = EXPERIMENT_SPEC.num_nodes
    plans = {seed: _chaos_plan(seed, clean, num_nodes) for seed in seeds}
    results = _run_cells(
        [
            _cell(
                "tc", "skitter-s", checkpoint_interval=0.1,
                failure_plan=plans[seed], time_limit=120.0,
                label=f"chaos seed {seed}",
            )
            for seed in seeds
        ]
    )
    rows, labels, data = [], [], {"clean": clean}
    exact = 0
    for seed, r in zip(seeds, results):
        match = r.ok and r.value == clean.value and r.num_results == clean.num_results
        exact += match
        data[f"seed {seed}"] = r
        labels.append(f"seed {seed}")
        rows.append(
            [
                format_cell(r),
                "yes" if match else "NO",
                str(int(r.stats["failures_detected"])),
                str(int(r.stats["readmissions"])),
                str(int(r.stats["rpc_retries"])),
                str(int(r.stats["net_fault_dropped"]
                        + r.stats["net_fault_partition_dropped"])),
                str(int(r.stats["net_fault_duplicated"])),
            ]
        )
    rendered = render_table(
        "Ablation C2: chaos schedules (§7), TC on skitter-s "
        f"(fault-free value {clean.value} in {clean.total_seconds:.3f}s)",
        ["Time(s)", "Exact", "Detected", "Readmits", "Retries", "Dropped", "Dup'd"],
        rows,
        labels,
        label_header="Schedule",
    )
    checks = []
    if exact == len(seeds):
        checks.append(
            "results under every chaos schedule are bit-identical to fault-free"
        )
    if any(r.stats["failures_detected"] > 0 for r in results):
        checks.append("failures are detected by heartbeat silence, not an oracle")
    return ExperimentReport(
        "ablationC2", "Chaos schedules", rendered,
        data=data, checks=checks,
    )


# ----------------------------------------------------------------------
# Ablation D — cache sharing vs multi-process deployment (§5.1)
# ----------------------------------------------------------------------

def ablation_multiprocess() -> ExperimentReport:
    """Shared process cache vs per-process split caches (paper §5.1)."""
    process_counts = (1, 2, 4)
    results = _run_cells(
        [
            _cell("mcf", "orkut-s", processes_per_node=processes)
            for processes in process_counts
        ]
    )
    rows, labels, data = [], [], {}
    for processes, r in zip(process_counts, results):
        key = f"{processes} process(es)"
        data[key] = r
        labels.append(key)
        rows.append(
            [
                format_cell(r),
                f"{r.stats['cache_hit_rate']:.2f}",
                f"{int(r.stats['vertices_pulled'])}",
                format_cell(r, "net"),
            ]
        )
    rendered = render_table(
        "Ablation D: cache sharing (§5.1), MCF on orkut-s "
        "(one process/node shares the cache across all cores)",
        ["Time(s)", "Hit rate", "Pulls", "Net"],
        rows,
        labels,
        label_header="Deployment",
    )
    checks = []
    shared = data["1 process(es)"]
    split = data["4 process(es)"]
    if shared.stats["cache_hit_rate"] > split.stats["cache_hit_rate"]:
        checks.append("sharing the cache raises the hit rate (the paper's default)")
    if shared.stats["vertices_pulled"] < split.stats["vertices_pulled"]:
        checks.append("splitting the cache multiplies remote pulls")
    return ExperimentReport(
        "ablationD", "Cache sharing vs multi-process", rendered,
        data=data, checks=checks,
    )


#: Every experiment, in presentation order (EXPERIMENTS.md generation).
ALL_EXPERIMENTS = [
    table1_motivation,
    table2_datasets,
    table3_tc_mcf,
    table4_gm,
    table5_cd_gc,
    fig5_6_utilization,
    fig7_cost,
    fig8_vertical,
    fig9_horizontal,
    fig10_baseline_scalability,
    fig11_bdg,
    fig12_lsh,
    fig13_stealing,
    ablation_cache,
    ablation_splitting,
    ablation_fault_tolerance,
    ablation_chaos,
    ablation_multiprocess,
]
