"""Command-line entry point for the experiment harness.

Run one experiment (or all of them) without pytest::

    python -m repro.bench list                 # show experiment ids
    python -m repro.bench run table1           # one table/figure
    python -m repro.bench run all -o results/  # everything, archived
    python -m repro.bench run table3_tc_mcf --workers 8   # fan out cells
    python -m repro.bench run all --no-cache   # rebuild every input

Each experiment prints in the paper's format and, with ``-o``, is also
written to ``<dir>/<id>.txt`` plus a machine-readable ``<dir>/<id>.json``.
``--trace-out``/``--metrics-out`` capture observability artifacts
(Chrome ``trace_event`` JSON and a metrics snapshot) from the runs;
since the ambient collector is process-local, these force ``--workers
1``.  Independent cells fan out over
``--workers`` processes (default: every host core) with results in
deterministic order, so the report *contents* never depend on the
worker count; generated datasets and partition assignments are reused
via a content-keyed build cache under ``--cache-dir`` (default
``.repro-cache/``) unless ``--no-cache`` is given.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments
from repro.bench.export import save_report
from repro.parallel import BuildCache, DEFAULT_CACHE_DIR, default_workers, parallel_context


def _registry():
    return {fn.__name__: fn for fn in experiments.ALL_EXPERIMENTS}


def cmd_list() -> int:
    for name, fn in _registry().items():
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"{name:<28} {doc[0] if doc else ''}")
    return 0


def cmd_explain(names, execution=None, backend=None) -> int:
    """Print the compiled plan / execution choice for each name, run nothing.

    Names are built-in workload ids (``tc``..``gc``) or motif names
    (``triangle``, ``tailed-triangle``, ...); the plan is compiled
    against a small generated graph (plans are graph-independent, only
    ``backend="auto"``'s density estimate reads it).
    """
    import repro
    from repro.graph.generators import preferential_attachment_graph
    from repro.plans.builtins import BUILTIN_PLANS

    graph = preferential_attachment_graph(n=200, m=6, seed=0)
    status = 0
    for name in names:
        print(f"=== {name} ===")
        try:
            if name in BUILTIN_PLANS:
                text = repro.mine(
                    graph, workload=name, execution=execution,
                    backend=backend, explain=True,
                )
            else:
                text = repro.mine(
                    graph, pattern=name, execution=execution,
                    backend=backend, explain=True,
                )
        except (TypeError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            status = 2
            continue
        print(text)
        print()
    return status


def cmd_run(names, out_dir, workers, cache, trace_out=None, metrics_out=None) -> int:
    registry = _registry()
    if names == ["all"]:
        names = list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry)}", file=sys.stderr)
        return 2
    collector = None
    if trace_out or metrics_out:
        from repro.obs import ObsCollector, collecting

        # the ambient collector is process-local: pool workers would
        # run their jobs invisibly, so observability capture is serial
        if workers != 1:
            print("[--trace-out/--metrics-out force --workers 1]", file=sys.stderr)
            workers = 1
        collector = ObsCollector()
        capture = collecting(collector)
    else:
        from contextlib import nullcontext

        capture = nullcontext()
    with capture:
        for name in names:
            started = time.time()
            # one context per experiment: the footer covers exactly this
            # experiment's cells, while the BuildCache object (and its disk
            # level) is shared across the whole invocation
            with parallel_context(workers=workers, cache=cache) as runner:
                report = registry[name]()
                report.footer = runner.footer_summary()
            print(report)
            stats = runner.cache_stats()
            hits, misses = stats["hits"], stats["misses"]
            print(
                f"[{name} completed in {time.time() - started:.1f}s wall clock, "
                f"workers={runner.workers}, build cache: {hits} hits / {misses} misses]"
            )
            print()
            if out_dir:
                save_report(report, out_dir)
    if collector is not None:
        if trace_out:
            print(f"[trace: {collector.write_chrome_trace(trace_out)} "
                  f"({len(collector)} runs)]")
        if metrics_out:
            print(f"[metrics: {collector.write_metrics_json(metrics_out)}]")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run experiments by function name")
    run.add_argument("names", nargs="+", help="experiment names, or 'all'")
    run.add_argument("-o", "--out-dir", default=None, help="archive directory")
    run.add_argument(
        "-w", "--workers", type=int, default=None,
        help="experiment cells to run concurrently (processes; "
        "default: all host cores)",
    )
    run.add_argument(
        "--no-cache", action="store_true",
        help="disable the build cache (rebuild datasets/partitions every cell)",
    )
    run.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help="build cache directory (default: %(default)s)",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON (load in Perfetto) covering "
        "every job run; forces --workers 1",
    )
    run.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a JSON metrics snapshot covering every job run; "
        "forces --workers 1",
    )
    run.add_argument(
        "--explain", action="store_true",
        help="treat names as workload/motif ids and print their compiled "
        "plan, execution mode and backend choice without running anything",
    )
    run.add_argument(
        "--execution", default=None, choices=("sim", "native"),
        help="execution mode shown by --explain (default: config default)",
    )
    run.add_argument(
        "--backend", default=None,
        choices=("auto", "reference", "numpy", "bitset"),
        help="kernel backend shown by --explain (default: config default)",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.explain:
        return cmd_explain(args.names, execution=args.execution,
                           backend=args.backend)
    workers = args.workers if args.workers is not None else default_workers()
    cache = None if args.no_cache else BuildCache(directory=args.cache_dir)
    return cmd_run(args.names, args.out_dir, workers, cache,
                   trace_out=args.trace_out, metrics_out=args.metrics_out)


if __name__ == "__main__":
    raise SystemExit(main())
