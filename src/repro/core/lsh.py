"""Locality-sensitive hashing for task ordering (paper §7).

The task priority queue orders inactive tasks so that tasks sharing
remote candidates sit near each other, boosting the RCV cache hit rate
(Figure 3).  Following the paper, each task's ``to_pull`` set is
reduced to a low-dimensional MinHash signature; similar sets map to
similar signatures with high probability, and ordering by signature
clusters them.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence, Tuple

#: A Mersenne prime comfortably above any vertex ID we generate.
_PRIME = (1 << 61) - 1


class MinHashLSH:
    """MinHash signature generator with ``k`` hash functions.

    Deterministic given ``seed``.  ``signature`` maps a vertex-ID set to
    a ``k``-tuple of minima; identical sets get identical signatures and
    highly-overlapping sets agree in most coordinates, so tuple ordering
    clusters them.
    """

    def __init__(self, signature_size: int = 4, seed: int = 12345) -> None:
        if signature_size < 1:
            raise ValueError("signature size must be >= 1")
        rng = random.Random(seed)
        self.signature_size = signature_size
        self._coeffs = [
            (rng.randrange(1, _PRIME), rng.randrange(0, _PRIME))
            for _ in range(signature_size)
        ]

    def signature(self, ids: Iterable[int]) -> Tuple[int, ...]:
        """MinHash signature of a set of vertex IDs.

        The empty set signs as all-zeros, ordering fully-local tasks
        together at the front of the queue (they need no pulls at all).
        """
        id_list = list(ids)
        if not id_list:
            return (0,) * self.signature_size
        out = []
        for a, b in self._coeffs:
            out.append(min((a * x + b) % _PRIME for x in id_list))
        return tuple(out)

    @staticmethod
    def similarity(sig_a: Sequence[int], sig_b: Sequence[int]) -> float:
        """Estimated Jaccard similarity: fraction of agreeing coordinates."""
        if len(sig_a) != len(sig_b):
            raise ValueError("signatures must have equal length")
        if not sig_a:
            return 0.0
        agree = sum(1 for a, b in zip(sig_a, sig_b) if a == b)
        return agree / len(sig_a)
