"""Chaos-grade contracts for the supervised native runtime.

The acceptance bar (ISSUE 8 / DESIGN.md §7's fault model):

* under every seeded *survivable* :class:`NativeFaultPlan` schedule —
  worker crashes, hangs past the chunk-lease deadline, transient chunk
  errors, crash storms that empty the pool — the native result is
  **byte-identical** to the fault-free native run (value,
  ``num_results``, every stats entry) for all six workloads and a
  compiled plan;
* *unsurvivable* schedules (a chunk failing past its retry budget)
  fail with a structured :class:`NativeChunkError` carrying the chunk
  id, attempt count and per-attempt errors — never a hang, never an
  orphaned worker process.

Every schedule is seeded and every fault fires at a chunk boundary, so
chunks either produce their full deterministic outcome or nothing: the
bit-identity claim holds by construction, and these tests pin it.
"""

from __future__ import annotations

import multiprocessing

import pytest

import repro
from repro.apps import TriangleCountingApp
from repro.core.config import GMinerConfig
from repro.core.job import GMinerJob, JobStatus
from repro.native import NativeChunkError, NativeFaultPlan
from repro.plans import PlanApp, compile_pattern, motif

from .conftest import make_clustered_graph
from .test_native import _app_factories, _comparable_dict

pytestmark = pytest.mark.chaos

#: The pool shape every chaos run uses: small chunks so the test
#: graphs split into ~15 chunks and 4 workers genuinely contend.
POOL = dict(native_workers=4, native_chunk_size=8)

#: Every survivable schedule the acceptance criteria sweep:
#: (name, plan builder, extra config knobs).  Each plan is freshly
#: built per test (builders mutate the plan in place).
SURVIVABLE = [
    (
        "crash-first-claim",
        lambda: NativeFaultPlan(seed=11).crash(0, on_claim=0),
        {},
    ),
    (
        "crash-late",
        lambda: NativeFaultPlan(seed=12).crash(1, on_claim=1),
        {},
    ),
    (
        "double-crash",
        lambda: NativeFaultPlan(seed=13).crash(0, on_claim=0).crash(1, on_claim=1),
        {},
    ),
    (
        "hang-until-deadline",
        lambda: NativeFaultPlan(seed=14).hang(0, on_claim=0),
        {"native_chunk_deadline": 0.3},
    ),
    (
        "finite-hang",
        lambda: NativeFaultPlan(seed=15).hang(1, on_claim=0, duration=0.05),
        {},
    ),
    (
        "flaky-chunks",
        lambda: NativeFaultPlan(seed=16)
        .flaky_chunk(0, failures=2)
        .flaky_chunk(2, failures=1),
        {},
    ),
    (
        "random-errors",
        lambda: NativeFaultPlan(seed=17).random_chunk_errors(0.25),
        {"native_max_chunk_retries": 8},
    ),
    (
        "crash-storm-serial-fallback",
        lambda: NativeFaultPlan(seed=18).crash(on_claim=0),
        {"native_max_respawns": 1},
    ),
    (
        "mixed",
        lambda: NativeFaultPlan(seed=19)
        .crash(0, on_claim=1)
        .flaky_chunk(1, failures=1)
        .slow(1, delay=0.01),
        {},
    ),
]
SCHEDULE_IDS = [name for name, _, _ in SURVIVABLE]
#: The cheap representative subset swept against every workload (the
#: full schedule list runs against tc and the compiled plan).
CORE_SCHEDULES = [
    row for row in SURVIVABLE
    if row[0] in ("crash-first-claim", "flaky-chunks",
                  "crash-storm-serial-fallback")
]


def _run(app_factory, graph, plan=None, **knobs):
    config = GMinerConfig(execution="native", **{**POOL, **knobs})
    return GMinerJob(app_factory(), graph, config, plan).run()


def _assert_bit_identical(app_factory, graph, plan_builder, knobs):
    chaotic = _run(app_factory, graph, plan_builder(), **knobs)
    clean = _run(app_factory, graph)
    assert chaotic.status is JobStatus.OK
    # the whole serialised result — value, num_results, every stats
    # entry — must match; only result.native (diagnostics) may differ
    assert _comparable_dict(chaotic) == _comparable_dict(clean)
    return chaotic


# ----------------------------------------------------------------------
# survivable schedules are invisible in the result
# ----------------------------------------------------------------------


@pytest.mark.parametrize("workload", ["tc", "mcf", "gm", "gl", "cd", "gc"])
@pytest.mark.parametrize(
    "schedule", CORE_SCHEDULES, ids=[row[0] for row in CORE_SCHEDULES]
)
def test_all_workloads_bit_identical_under_chaos(workload, schedule):
    _, graph, factory = next(
        row for row in _app_factories() if row[0] == workload
    )
    if workload == "gl":
        # graphlet classification is quadratic-ish in the test graph;
        # a smaller instance keeps the chaos sweep fast without losing
        # the multi-chunk pool shape (48 vertices -> 6 chunks)
        graph = make_clustered_graph(n=48)
    _, plan_builder, knobs = schedule
    _assert_bit_identical(factory, graph, plan_builder, knobs)


@pytest.mark.parametrize("schedule", SURVIVABLE, ids=SCHEDULE_IDS)
def test_every_schedule_bit_identical_on_tc(schedule):
    name, plan_builder, knobs = schedule
    graph = make_clustered_graph()
    chaotic = _assert_bit_identical(TriangleCountingApp, graph, plan_builder, knobs)
    # the schedule actually fired (diagnostics prove the chaos was real)
    fired = (
        chaotic.native["crashes"] + chaotic.native["hangs"]
        + chaotic.native["chunk_errors"] + chaotic.native["leases_expired"]
    )
    if name != "finite-hang":  # a survived stall leaves no tally
        assert fired > 0, chaotic.native


@pytest.mark.parametrize("schedule", SURVIVABLE, ids=SCHEDULE_IDS)
def test_compiled_plan_bit_identical_under_chaos(schedule):
    _, plan_builder, knobs = schedule
    graph = make_clustered_graph()
    factory = lambda: PlanApp(compile_pattern(motif("tailed-triangle")))
    _assert_bit_identical(factory, graph, plan_builder, knobs)


def test_repeated_chaos_runs_identical():
    graph = make_clustered_graph()
    plan = lambda: NativeFaultPlan(seed=23).crash(0, on_claim=0).flaky_chunk(
        3, failures=1
    )
    first = _run(TriangleCountingApp, graph, plan())
    second = _run(TriangleCountingApp, graph, plan())
    assert _comparable_dict(first) == _comparable_dict(second)


def test_mine_accepts_native_fault_plan(small_social_graph):
    plan = NativeFaultPlan(seed=29).flaky_chunk(0, failures=1)
    config = GMinerConfig(
        execution="native", native_workers=2, native_chunk_size=8
    )
    chaotic = repro.mine(
        small_social_graph, workload="tc", config=config, failure_plan=plan
    )
    clean = repro.mine(small_social_graph, workload="tc", config=config)
    assert chaotic.value == clean.value
    assert chaotic.stats == clean.stats
    assert chaotic.native["chunk_errors"] == 1


# ----------------------------------------------------------------------
# degradation ladder: shrink -> respawn -> serial fallback
# ----------------------------------------------------------------------


def test_pool_shrinks_when_respawn_budget_is_zero():
    graph = make_clustered_graph()
    plan = NativeFaultPlan(seed=31).crash(0, on_claim=0)
    chaotic = _run(
        TriangleCountingApp, graph, plan, native_max_respawns=0
    )
    clean = _run(TriangleCountingApp, graph)
    assert _comparable_dict(chaotic) == _comparable_dict(clean)
    assert chaotic.native["crashes"] == 1
    assert chaotic.native["respawns"] == 0


def test_crash_storm_degrades_to_serial_fallback():
    graph = make_clustered_graph()
    # every worker, original or respawned, dies at its first pickup:
    # the pool must empty and the serial fallback finish the job
    plan = NativeFaultPlan(seed=37).crash(on_claim=0)
    chaotic = _run(
        TriangleCountingApp, graph, plan, native_max_respawns=2
    )
    clean = _run(TriangleCountingApp, graph)
    assert _comparable_dict(chaotic) == _comparable_dict(clean)
    assert chaotic.native["respawns"] == 2
    assert chaotic.native["crashes"] >= 3
    assert chaotic.native["fallback_chunks"] > 0
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# unsurvivable schedules: structured failure, never a hang
# ----------------------------------------------------------------------


def test_poison_chunk_raises_structured_error():
    graph = make_clustered_graph()
    plan = NativeFaultPlan(seed=41).flaky_chunk(
        2, failures=99, message="injected poison"
    )
    with pytest.raises(NativeChunkError) as excinfo:
        _run(TriangleCountingApp, graph, plan, native_max_chunk_retries=1)
    error = excinfo.value
    assert [f.chunk_id for f in error.failures] == [2]
    failure = error.failures[0]
    assert failure.attempts == 2  # the original try + 1 retry
    assert len(failure.errors) == 2
    assert all("injected poison" in e for e in failure.errors)
    assert "chunk 2" in str(error)
    # the failed pool was torn down completely
    for child in multiprocessing.active_children():
        child.join(timeout=5.0)
    assert multiprocessing.active_children() == []


def test_zero_retry_budget_quarantines_first_failure():
    graph = make_clustered_graph()
    plan = NativeFaultPlan(seed=43).flaky_chunk(0, failures=1)
    with pytest.raises(NativeChunkError) as excinfo:
        _run(TriangleCountingApp, graph, plan, native_max_chunk_retries=0)
    assert excinfo.value.failures[0].attempts == 1


def test_real_exception_surfaces_traceback():
    graph = make_clustered_graph()
    poison = sorted(graph.vertices())[0]
    with pytest.raises(NativeChunkError) as excinfo:
        _run(
            lambda: _PoisonVertexApp(poison), graph,
            native_max_chunk_retries=0,
        )
    failure = excinfo.value.failures[0]
    assert failure.chunk_id == 0  # the poison vertex seeds chunk 0
    assert "RuntimeError" in failure.errors[0]
    assert "poison vertex" in failure.errors[0]
    assert "Traceback" in failure.errors[0]


def test_unsurvivable_hang_fails_instead_of_hanging():
    graph = make_clustered_graph()
    # both slots hang on their first pickup, no respawns, no retries:
    # lease expiry must quarantine the held chunks and fail the run
    plan = NativeFaultPlan(seed=47).hang(on_claim=0)
    with pytest.raises(NativeChunkError) as excinfo:
        _run(
            TriangleCountingApp, graph, plan,
            native_workers=2,
            native_chunk_deadline=0.3,
            native_max_chunk_retries=0,
            native_max_respawns=0,
        )
    assert excinfo.value.failures  # structured, not a stall
    assert all("deadline" in f.errors[0] for f in excinfo.value.failures)
    for child in multiprocessing.active_children():
        child.join(timeout=5.0)
    assert multiprocessing.active_children() == []


class _PoisonVertexApp(TriangleCountingApp):
    """A tc app whose task generator explodes on one vertex — the
    genuine-exception (not injected) path through chunk retry."""

    def __init__(self, poison_vid: int) -> None:
        self.poison_vid = poison_vid

    def make_task(self, vertex):
        if vertex.vid == self.poison_vid:
            raise RuntimeError(f"poison vertex {vertex.vid}")
        return super().make_task(vertex)


# ----------------------------------------------------------------------
# plan validation and routing
# ----------------------------------------------------------------------


def test_native_fault_plan_requires_native_execution():
    graph = make_clustered_graph()
    plan = NativeFaultPlan(seed=53).crash(0)
    with pytest.raises(ValueError, match="native"):
        GMinerJob(TriangleCountingApp(), graph, GMinerConfig(), plan)


def test_native_fault_plan_validation():
    with pytest.raises(ValueError, match="worker"):
        NativeFaultPlan().crash(-1).validate()
    with pytest.raises(ValueError, match="on_claim"):
        NativeFaultPlan().crash(0, on_claim=-1).validate()
    with pytest.raises(ValueError, match="duration"):
        NativeFaultPlan().hang(0, duration=0.0).validate()
    with pytest.raises(ValueError, match="delay"):
        NativeFaultPlan().slow(0, delay=-0.5).validate()
    with pytest.raises(ValueError, match="failures"):
        NativeFaultPlan().flaky_chunk(1, failures=0).validate()
    with pytest.raises(ValueError, match="chunk_id"):
        NativeFaultPlan().flaky_chunk(-1).validate()
    with pytest.raises(ValueError, match="rate"):
        NativeFaultPlan().random_chunk_errors(1.5).validate()
    # well-formed plans pass, including never-firing out-of-range ids
    NativeFaultPlan(seed=1).crash(99).hang(5, duration=1.0).slow(
        0, delay=0.1
    ).flaky_chunk(1000).random_chunk_errors(0.5).validate()
    assert NativeFaultPlan().empty
    assert not NativeFaultPlan().crash(0).empty


def test_fault_queries_are_deterministic():
    plan = NativeFaultPlan(seed=61).random_chunk_errors(0.5)
    draws = [plan.chunk_failure(c, a) for c in range(20) for a in range(3)]
    again = [plan.chunk_failure(c, a) for c in range(20) for a in range(3)]
    assert draws == again
    assert any(d is not None for d in draws)
    assert any(d is None for d in draws)
    # crashes shadow hangs on the same claim
    both = NativeFaultPlan().crash(0, on_claim=1).hang(0, on_claim=1)
    assert both.claim_action(0, 1) == ("crash", None)
    assert both.claim_action(0, 0) is None
    assert both.claim_action(1, 1) is None


# ----------------------------------------------------------------------
# observability under chaos
# ----------------------------------------------------------------------


def test_supervision_counters_flow_into_obs():
    graph = make_clustered_graph()
    plan = NativeFaultPlan(seed=67).crash(0, on_claim=0).flaky_chunk(
        1, failures=1
    )
    chaotic = _run(TriangleCountingApp, graph, plan, enable_obs=True)
    counters = chaotic.obs["metrics"]["counters"]
    assert counters["native.crashes"] == 1
    assert counters["native.chunk_errors"] == 1
    assert counters["native.retries"] >= 2
    assert counters["native.respawns"] == 1
    # fault-free pooled runs still surface the counters, as zeros
    clean = _run(TriangleCountingApp, graph, enable_obs=True)
    clean_counters = clean.obs["metrics"]["counters"]
    for key in ("native.crashes", "native.hangs", "native.retries",
                "native.respawns", "native.chunk_errors",
                "native.leases_expired"):
        assert clean_counters[key] == 0.0, key
    assert any(
        span["name"] == "native.supervise" for span in chaotic.obs["spans"]
    )
    assert any(span["name"] == "native.run" for span in chaotic.obs["spans"])
