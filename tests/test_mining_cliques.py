"""Unit tests for the maximum-clique kernels."""

import pytest

from repro.graph.algorithms import is_clique
from repro.graph.generators import preferential_attachment_graph
from repro.graph.graph import Graph
from repro.mining.cliques import (
    SharedBound,
    max_clique_in_candidates,
    max_clique_sequential,
    maximal_cliques,
)
from repro.mining.cost import WorkMeter
from tests.conftest import adjacency_of


class TestSharedBound:
    def test_record_improves(self):
        b = SharedBound()
        assert b.record([1, 2, 3])
        assert b.value == 3
        assert b.best_clique == (1, 2, 3)

    def test_record_rejects_smaller(self):
        b = SharedBound(initial=3)
        assert not b.record([1, 2])
        assert b.value == 3

    def test_merge(self):
        a, b = SharedBound(), SharedBound()
        a.record([1, 2])
        b.record([3, 4, 5])
        a.merge(b)
        assert a.value == 3
        assert a.best_clique == (3, 4, 5)


class TestSequential:
    def test_k4_plus_tail(self):
        g = Graph.from_edges(
            [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]
        )
        clique = max_clique_sequential(adjacency_of(g), WorkMeter())
        assert clique == (0, 1, 2, 3)

    def test_triangle_graph(self, tiny_graph):
        clique = max_clique_sequential(adjacency_of(tiny_graph), WorkMeter())
        assert len(clique) == 3
        assert is_clique(tiny_graph, clique)

    def test_matches_bron_kerbosch_oracle(self, small_social_graph):
        adj = adjacency_of(small_social_graph)
        best = max_clique_sequential(adj, WorkMeter())
        oracle = max(maximal_cliques(adj, WorkMeter()), key=len)
        assert len(best) == len(oracle)
        assert is_clique(small_social_graph, best)

    def test_path_graph_max_clique_is_edge(self):
        adj = {0: (1,), 1: (0, 2), 2: (1, 3), 3: (2,)}
        assert len(max_clique_sequential(adj, WorkMeter())) == 2

    def test_pruning_reduces_work(self):
        """A pre-seeded bound must cut the work — the mechanism behind
        the paper's superlinear speedup (§3)."""
        g = preferential_attachment_graph(150, 8, triangle_prob=0.7, seed=2)
        adj = adjacency_of(g)
        cold = WorkMeter()
        clique = max_clique_sequential(adj, cold)
        warm = WorkMeter()
        primed = SharedBound()
        primed.record(clique)
        max_clique_sequential(adj, warm, bound=primed)
        assert warm.units < cold.units


class TestInCandidates:
    def test_respects_required_prefix(self, tiny_graph):
        adj = {v: set(tiny_graph.neighbors(v)) for v in tiny_graph.vertices()}
        bound = SharedBound()
        best = max_clique_in_candidates([0], [1, 2], adj, bound, WorkMeter())
        assert best == (0, 1, 2)

    def test_prunes_with_tight_bound(self, tiny_graph):
        adj = {v: set(tiny_graph.neighbors(v)) for v in tiny_graph.vertices()}
        bound = SharedBound(initial=5)  # nothing here can beat 5
        m = WorkMeter()
        best = max_clique_in_candidates([0], [1, 2], adj, bound, m)
        assert best is None
        assert bound.value == 5

    def test_empty_candidates_records_required(self):
        bound = SharedBound()
        best = max_clique_in_candidates([7], [], {7: set()}, bound, WorkMeter())
        assert best == (7,)


class TestMaximalCliques:
    def test_two_triangles(self, tiny_graph):
        cliques = maximal_cliques(adjacency_of(tiny_graph), WorkMeter())
        assert (0, 1, 2) in cliques
        assert (1, 2, 3) in cliques

    def test_min_size_filter(self, tiny_graph):
        cliques = maximal_cliques(adjacency_of(tiny_graph), WorkMeter(), min_size=3)
        assert all(len(c) >= 3 for c in cliques)

    def test_all_outputs_are_maximal_cliques(self, small_social_graph):
        adj = adjacency_of(small_social_graph)
        adj_sets = {v: set(ns) for v, ns in adj.items()}
        cliques = maximal_cliques(adj, WorkMeter(), min_size=3)
        for clique in cliques[:50]:
            assert is_clique(small_social_graph, clique)
            # maximality: no vertex extends it
            common = set.intersection(*(adj_sets[v] for v in clique))
            assert not (common - set(clique))
