"""The task model (paper §4.2).

A :class:`Task` is an independent graph-mining unit with three fields:
the growing subgraph ``subG``, the ``candidates`` it wants next, and an
application-defined ``context``.  Its lifetime walks the paper's four
statuses:

* **ACTIVE** — being processed by ``update``;
* **INACTIVE** — parked in the task store, waiting for remote pulls;
* **READY** — all remote candidates are cached, queued for compute;
* **DEAD** — finished (result reported) or confirmed fruitless.

Applications subclass :class:`Task` and implement ``update``, which
receives the candidate vertex objects and either calls :meth:`pull`
(requesting next-round candidates) or :meth:`finish`.  All computation
inside ``update`` must be charged via :meth:`charge` so the simulated
cores can account it.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.subgraph import Subgraph
from repro.graph.graph import VertexData

_next_task_id = 0


def _alloc_task_id() -> int:
    global _next_task_id
    tid = _next_task_id
    _next_task_id += 1
    return tid


def peek_task_id() -> int:
    """The id the next created task will get (process-global).

    Task ids never reset, so two same-seed runs in one process see
    shifted ids; observability subtracts the value captured at job
    start to keep snapshots byte-identical across runs.
    """
    return _next_task_id


class TaskStatus(enum.Enum):
    ACTIVE = "active"
    INACTIVE = "inactive"
    READY = "ready"
    DEAD = "dead"


class TaskEnv:
    """What the runtime exposes to ``update``.

    ``aggregated`` is the latest globally aggregated value the worker
    has seen (e.g. the global max-clique bound) — possibly slightly
    stale, exactly as in the real system where the aggregator syncs
    periodically.  ``push_to_aggregator`` offers a local value for the
    next sync.
    """

    def __init__(
        self,
        worker_id: int,
        aggregated: Any = None,
        push: Optional[Callable[[Any], None]] = None,
    ) -> None:
        self.worker_id = worker_id
        self.aggregated = aggregated
        self._push = push

    def push_to_aggregator(self, value: Any) -> None:
        if self._push is not None:
            self._push(value)


class Task:
    """Base class for application tasks (the paper's ``Task`` template).

    Subclasses implement :meth:`update`.  The constructor mirrors task
    generation from a seed vertex: ``subG`` starts as the seed, and the
    subclass typically calls :meth:`pull` immediately with the initial
    candidates.
    """

    def __init__(self, seed: VertexData) -> None:
        self.task_id: int = _alloc_task_id()
        self.seed = seed
        self.subgraph = Subgraph()
        self.subgraph.add_node(seed.vid)
        self.candidates: List[int] = []
        self.context: Any = None
        self.round: int = 0
        self.status = TaskStatus.ACTIVE
        self.owner_worker: Optional[int] = None
        # populated by the runtime around each update() call
        self.to_pull: Set[int] = set()
        self._finished = False
        self.result: Any = None
        self._work_units = 0.0

    # -- API used inside update() -------------------------------------

    def charge(self, units: float = 1.0) -> None:
        """Account computation performed by ``update``."""
        self._work_units += units

    def pull(self, candidate_ids: Iterable[int]) -> None:
        """Request these vertices as next-round candidates (Listing 1's
        ``pull``).  The runtime fetches whatever is not local/cached."""
        self.candidates = sorted(set(candidate_ids))
        self.to_pull = set(self.candidates)

    def finish(self, result: Any = None) -> None:
        """Mark the task dead; ``result`` is reported to the worker."""
        self._finished = True
        self.result = result
        self.candidates = []
        self.to_pull = set()

    # -- to be implemented by applications ------------------------------

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        """One round of the mining computation (abstract)."""
        raise NotImplementedError

    def spawn(self) -> List["Task"]:
        """Optional: child tasks created by this round (task splitting).

        The runtime collects these after each ``update``; the default
        is no children.  Subclasses supporting the recursive-splitting
        extension override :meth:`split` instead and the runtime calls
        it when a task exceeds the split threshold.
        """
        return []

    def split(self) -> Optional[List["Task"]]:
        """Split this task into smaller ones (extension, §9).

        Return ``None`` when the task cannot or need not split.
        """
        return None

    # -- runtime hooks ----------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    def take_work(self) -> float:
        units = self._work_units
        self._work_units = 0.0
        return units

    def run_round(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> float:
        """Execute one update round; returns work units charged."""
        self.round += 1
        self.to_pull = set()
        self.update(cand_objs, env)
        return self.take_work()

    # -- cost model ---------------------------------------------------------

    def estimate_size(self) -> int:
        """Byte estimate for memory accounting and migration cost."""
        return (
            64
            + self.subgraph.estimate_size()
            + 8 * len(self.candidates)
            + self.context_size()
        )

    def context_size(self) -> int:
        """Byte estimate of the context; override for heavy contexts
        (e.g. graph matching's partial embeddings)."""
        return 16

    def migration_cost(self) -> float:
        """The paper's c(t) = |t.subG| + |t.candVtxs| (Eq. 2)."""
        return self.subgraph.num_nodes + len(self.candidates)

    def local_rate(self, num_to_pull: int) -> float:
        """The paper's lr(t) (Eq. 3): fraction of candidates local."""
        if not self.candidates:
            return 1.0
        return (len(self.candidates) - num_to_pull) / len(self.candidates)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(id={self.task_id}, seed={self.seed.vid}, "
            f"round={self.round}, status={self.status.value})"
        )
