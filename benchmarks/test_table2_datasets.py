"""Table 2 — dataset statistics of the scaled stand-ins."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_table2_datasets(benchmark):
    report = run_experiment(benchmark, experiments.table2_datasets)
    for name in ("skitter-s", "orkut-s", "btc-s", "friendster-s",
                 "tencent-s", "dblp-s"):
        assert name in report.rendered
