"""The G-Miner master (paper §5.1).

The master owns cluster-wide coordination: the progress collector and
scheduler (driving task stealing), the global aggregator merge and
broadcast, periodic checkpoint commands, and failure handling.  It is a
network endpoint without a modelled core pool — its work is negligible
next to mining.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.core.aggregator import Aggregator
from repro.core.config import GMinerConfig
from repro.core.messages import (
    AggBroadcast,
    AggReport,
    CheckpointCommand,
    Heartbeat,
    MembershipView,
    MigrateCommand,
    NoTask,
    ProgressReport,
    StealRequest,
    WorkerDown,
    WorkerUp,
)
from repro.core.tracing import NullTraceLog, TaskEvent, TraceLog
from repro.sim.cluster import Cluster


class Master:
    """Coordinator for one G-Miner job."""

    def __init__(
        self,
        cluster: Cluster,
        config: GMinerConfig,
        num_workers: int,
        endpoint: int,
        aggregator: Optional[Aggregator],
        controller,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config
        self.num_workers = num_workers
        self.endpoint = endpoint
        self.aggregator = aggregator
        self.controller = controller
        self.progress_table: Dict[int, ProgressReport] = {}
        self.agg_partials: Dict[int, Any] = {}
        self.down_workers: Set[int] = set()
        self.steals_brokered = 0
        self.no_task_replies = 0
        self.checkpoint_epoch = 0
        # -- failure detection (§7): heartbeat suspect→confirm monitor --
        self.monitoring = False
        self.view = 0  # membership version; bumps on every down/up change
        self.last_heard: Dict[int, float] = {}
        self.suspected: Set[int] = set()
        self.incarnations: Dict[int, int] = {}
        self.failures_detected = 0
        self.workers_suspected = 0
        self.readmissions = 0
        self.stale_messages_dropped = 0
        self.unknown_messages_dropped = 0
        #: job-level hook fired whenever a down worker is re-admitted
        #: (used to release the recovery hold on job completion)
        self.on_worker_readmitted = None
        self.trace: TraceLog = NullTraceLog()  # replaced by GMinerJob
        #: :class:`repro.obs.ObsSession` when observability is on;
        #: ``None`` keeps every instrumented site to a single branch.
        self.obs = None
        #: :class:`repro.verify.InvariantMonitor` when invariant
        #: checking is armed; barrier checks read the membership state
        #: above (view monotonicity, suspected/down disjointness).
        self.verify = None
        cluster.network.register_handler(endpoint, self._on_message)

    def attach_obs(self, obs) -> None:
        """Wire an :class:`repro.obs.ObsSession` into the master.

        Like the worker hook, strictly read-only over the simulation.
        """
        from repro.obs.tracing import MASTER_TID

        self.obs = obs
        self._obs_tid = MASTER_TID
        registry = obs.registry
        self._m_steals = registry.counter("gminer.steals.brokered")
        self._m_no_task = registry.counter("gminer.steals.no_task")
        self._m_ckpt_epochs = registry.counter("gminer.checkpoint.epochs")
        self._m_suspected = registry.counter("gminer.workers.suspected")
        self._m_confirmed = registry.counter("gminer.failures.detected")
        self._m_readmitted = registry.counter("gminer.workers.readmitted")

    # ------------------------------------------------------------------
    # periodic coordination loops
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic aggregation and checkpoint loops."""
        if self.aggregator is not None:
            self.sim.schedule(self.config.agg_interval, self._agg_tick)
        if self.config.checkpoint_interval is not None:
            self.sim.schedule(self.config.checkpoint_interval, self._checkpoint_tick)

    def _agg_tick(self) -> None:
        if self.controller.finished:
            return
        if self.agg_partials:
            merged = self.aggregator.merge_all(self.agg_partials.values())
            broadcast = AggBroadcast(value=merged)
            for worker in range(self.num_workers):
                if worker not in self.down_workers:
                    self.cluster.network.send(
                        self.endpoint, worker, broadcast.size_bytes(), broadcast
                    )
        self.sim.schedule(self.config.agg_interval, self._agg_tick)

    def _checkpoint_tick(self) -> None:
        if self.controller.finished:
            return
        self.checkpoint_epoch += 1
        if self.obs is not None:
            self._m_ckpt_epochs.inc()
            self.obs.tracer.instant(
                "checkpoint.epoch",
                cat="fault",
                tid=self._obs_tid,
                epoch=self.checkpoint_epoch,
            )
        command = CheckpointCommand(epoch=self.checkpoint_epoch)
        for worker in range(self.num_workers):
            if worker not in self.down_workers:
                self.cluster.network.send(
                    self.endpoint, worker, command.size_bytes(), command
                )
        self.sim.schedule(self.config.checkpoint_interval, self._checkpoint_tick)

    # ------------------------------------------------------------------
    # task stealing: the progress scheduler (§6.2)
    # ------------------------------------------------------------------

    def _handle_steal_request(self, request: StealRequest) -> None:
        victim = self._most_loaded_worker(exclude=request.worker)
        if victim is None:
            self.no_task_replies += 1
            if self.obs is not None:
                self._m_no_task.inc()
            reply = NoTask(source=-1)
            self.cluster.network.send(
                self.endpoint, request.worker, reply.size_bytes(), reply
            )
            return
        self.steals_brokered += 1
        if self.obs is not None:
            self._m_steals.inc()
        command = MigrateCommand(dest=request.worker, count=self.config.steal_batch)
        self.cluster.network.send(
            self.endpoint, victim, command.size_bytes(), command
        )

    def _most_loaded_worker(self, exclude: int) -> Optional[int]:
        best: Optional[int] = None
        best_load = 0
        for worker, report in self.progress_table.items():
            if worker == exclude or worker in self.down_workers:
                continue
            load = report.store_size
            if load > best_load:
                best_load = load
                best = worker
        return best

    # ------------------------------------------------------------------
    # failure detection (§7): the suspect→confirm heartbeat monitor
    # ------------------------------------------------------------------

    def start_failure_monitor(self) -> None:
        """Arm the heartbeat timeout monitor (the real detection path).

        Silence beyond ``suspect_timeout`` marks a worker *suspected*;
        beyond twice that, the failure is confirmed and the normal
        recovery machinery (``handle_worker_failure``) runs.  A
        heartbeat from a confirmed-down worker re-admits it through
        ``handle_worker_recovery`` — exactly the path a genuinely
        recovered node takes, so false positives heal themselves.

        Only armed when a failure plan exists: fault-free runs carry no
        heartbeat traffic and stay byte-identical to a build without
        the fault layer.
        """
        self.monitoring = True
        now = self.sim.now
        for worker in range(self.num_workers):
            self.last_heard[worker] = now
        self.sim.schedule(self.config.heartbeat_interval, self._monitor_tick)

    def _monitor_tick(self) -> None:
        if self.controller.finished:
            return
        now = self.sim.now
        suspect_after = self.config.suspect_timeout
        confirm_after = 2.0 * suspect_after
        for worker in range(self.num_workers):
            if worker in self.down_workers:
                continue
            silence = now - self.last_heard.get(worker, now)
            if silence > confirm_after:
                self.suspected.discard(worker)
                self.failures_detected += 1
                self.trace.emit(
                    now, worker, -1, TaskEvent.WORKER_CONFIRMED_DOWN, detail=silence
                )
                if self.obs is not None:
                    self._m_confirmed.inc()
                    self.obs.tracer.instant(
                        "worker.confirmed_down",
                        cat="fault",
                        tid=worker,
                        silence=silence,
                    )
                self.handle_worker_failure(worker)
            elif silence > suspect_after:
                if worker not in self.suspected:
                    self.suspected.add(worker)
                    self.workers_suspected += 1
                    self.trace.emit(
                        now, worker, -1, TaskEvent.WORKER_SUSPECTED, detail=silence
                    )
                    if self.obs is not None:
                        self._m_suspected.inc()
                        self.obs.tracer.instant(
                            "worker.suspected",
                            cat="fault",
                            tid=worker,
                            silence=silence,
                        )
            else:
                self.suspected.discard(worker)
        # gossip the full membership view every tick: any individual
        # WorkerDown/WorkerUp notice can be lost on a degraded fabric,
        # and a worker acting on a stale view would park pulls forever
        view = MembershipView(down=tuple(sorted(self.down_workers)), view=self.view)
        for worker in range(self.num_workers):
            if worker not in self.down_workers:
                self.cluster.network.send(
                    self.endpoint, worker, view.size_bytes(), view
                )
        self.sim.schedule(self.config.heartbeat_interval, self._monitor_tick)

    def _on_heartbeat(self, worker: int, incarnation: int = 0) -> None:
        now = self.sim.now
        self.last_heard[worker] = now
        known = self.incarnations.get(worker, 0)
        if not self.monitoring:
            # oracle mode: membership is driven directly by the injector
            # hooks; heartbeats are pure liveness signals
            self.incarnations[worker] = max(known, incarnation)
            return
        if worker in self.down_workers:
            # the casualty (or a falsely-suspected survivor) is talking
            # again: re-admission runs the same recovery broadcast path
            self.readmissions += 1
            self.incarnations[worker] = incarnation
            self.trace.emit(now, worker, -1, TaskEvent.WORKER_RECOVERED)
            if self.obs is not None:
                self._m_readmitted.inc()
                self.obs.tracer.instant(
                    "worker.readmitted", cat="fault", tid=worker
                )
            self.handle_worker_recovery(worker)
        elif incarnation > known:
            # the worker rebooted faster than the silence monitor could
            # confirm it dead — without this check its lost state would
            # never be re-spread (peers would keep their migrated-task
            # copies forever).  Run the full down→up path.
            self.failures_detected += 1
            self.readmissions += 1
            self.incarnations[worker] = incarnation
            self.trace.emit(now, worker, -1, TaskEvent.WORKER_CONFIRMED_DOWN)
            self.trace.emit(now, worker, -1, TaskEvent.WORKER_RECOVERED)
            if self.obs is not None:
                self._m_confirmed.inc()
                self._m_readmitted.inc()
                self.obs.tracer.instant(
                    "worker.fast_reboot", cat="fault", tid=worker
                )
            self.handle_worker_failure(worker)
            self.handle_worker_recovery(worker)
        else:
            # a reordered stale heartbeat may carry an old incarnation;
            # never move the recorded incarnation backwards
            self.incarnations[worker] = max(known, incarnation)
            self.suspected.discard(worker)

    # ------------------------------------------------------------------
    # failure handling (§7)
    # ------------------------------------------------------------------

    def handle_worker_failure(self, worker: int) -> None:
        self.down_workers.add(worker)
        self.progress_table.pop(worker, None)
        self.view += 1
        notice = WorkerDown(worker=worker, view=self.view)
        for other in range(self.num_workers):
            if other != worker and other not in self.down_workers:
                self.cluster.network.send(
                    self.endpoint, other, notice.size_bytes(), notice
                )

    def handle_worker_recovery(self, worker: int) -> None:
        self.down_workers.discard(worker)
        self.suspected.discard(worker)
        self.last_heard[worker] = self.sim.now
        self.view += 1
        notice = WorkerUp(worker=worker, view=self.view)
        for other in range(self.num_workers):
            if other != worker and other not in self.down_workers:
                self.cluster.network.send(
                    self.endpoint, other, notice.size_bytes(), notice
                )
        if self.on_worker_readmitted is not None:
            self.on_worker_readmitted(worker)

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def _on_message(self, message) -> None:
        payload = message.payload
        if isinstance(payload, Heartbeat):
            self._on_heartbeat(payload.worker, payload.incarnation)
            return
        sender = getattr(payload, "worker", message.src)
        if sender in self.down_workers:
            # a stale message from a worker we declared dead — e.g. one
            # that was in flight at the kill, or from a falsely-suspected
            # survivor behind a partition.  Mid-recovery these used to
            # raise; now they are dropped and counted (only a heartbeat
            # re-admits a down worker).
            self.stale_messages_dropped += 1
            return
        if 0 <= message.src < self.num_workers:
            # any traffic is a liveness signal — the paper's master
            # infers death from *missing progress reports*, not only
            # from dedicated heartbeats
            self.last_heard[message.src] = self.sim.now
        if isinstance(payload, ProgressReport):
            self.progress_table[payload.worker] = payload
        elif isinstance(payload, AggReport):
            self.agg_partials[payload.worker] = payload.partial
        elif isinstance(payload, StealRequest):
            self._handle_steal_request(payload)
        elif self.controller.finished:
            # stragglers delivered after the job completed (duplicates,
            # reordered copies) are expected under chaos — drop, count
            self.unknown_messages_dropped += 1
        else:
            raise TypeError(f"master cannot handle {type(payload).__name__}")
