"""Text I/O for graphs.

G-Miner loads graph data from HDFS as text lines, one vertex per line,
parsed by the user's ``vtxParser`` (Listing 1).  We implement the same
format for real files and for the simulated HDFS:

    vid \t n1 n2 n3 ... [\t L=<label>] [\t A=a1,a2,...]

The adjacency section lists neighbor IDs separated by spaces; the
optional ``L=`` section carries a label and ``A=`` an attribute list.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, TextIO, Tuple, Union

from repro.graph.graph import Graph, VertexData


def format_vertex_line(data: VertexData) -> str:
    """Serialise one vertex to the text format."""
    parts = [str(data.vid), " ".join(str(n) for n in data.neighbors)]
    if data.label is not None:
        parts.append(f"L={data.label}")
    if data.attributes:
        parts.append("A=" + ",".join(str(a) for a in data.attributes))
    return "\t".join(parts)


def parse_vertex_line(line: str) -> VertexData:
    """Parse one vertex line (the default ``vtxParser``)."""
    line = line.strip()
    if not line:
        raise ValueError("empty vertex line")
    fields = line.split("\t")
    vid = int(fields[0])
    # a lone ID is an isolated vertex (its adjacency field is empty)
    neighbor_field = fields[1].strip() if len(fields) > 1 else ""
    neighbors = (
        tuple(sorted(int(t) for t in neighbor_field.split())) if neighbor_field else ()
    )
    label: Optional[str] = None
    attributes: Tuple[int, ...] = ()
    for extra in fields[2:]:
        extra = extra.strip()
        if extra.startswith("L="):
            label = extra[2:]
        elif extra.startswith("A="):
            body = extra[2:].strip()
            if body:
                attributes = tuple(int(t) for t in body.split(","))
        elif extra:
            raise ValueError(f"unknown vertex field {extra!r} in line {line!r}")
    return VertexData(vid=vid, neighbors=neighbors, label=label, attributes=attributes)


def dump_adjacency_text(graph: Graph, target: Union[str, TextIO]) -> None:
    """Write ``graph`` in the one-vertex-per-line text format."""
    if isinstance(target, str):
        with open(target, "w", encoding="utf-8") as fh:
            dump_adjacency_text(graph, fh)
        return
    for vid in graph.vertices():
        target.write(format_vertex_line(graph.vertex_data(vid)))
        target.write("\n")


def load_adjacency_text(source: Union[str, TextIO, Iterable[str]]) -> Graph:
    """Load a graph from the text format.

    ``source`` may be a path, a file object, or any iterable of lines.
    Adjacency is symmetrised: if ``u`` lists ``v``, the edge exists even
    when ``v``'s line omits ``u``.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as fh:
            return load_adjacency_text(fh)
    adj: Dict[int, List[int]] = {}
    labels: Dict[int, str] = {}
    attrs: Dict[int, Tuple[int, ...]] = {}
    for raw in source:
        if not raw.strip():
            continue
        data = parse_vertex_line(raw)
        adj[data.vid] = list(data.neighbors)
        if data.label is not None:
            labels[data.vid] = data.label
        if data.attributes:
            attrs[data.vid] = data.attributes
    graph = Graph.from_adjacency(adj)
    for vid, label in labels.items():
        if graph.has_vertex(vid):
            graph.set_label(vid, label)
    for vid, a in attrs.items():
        if graph.has_vertex(vid):
            graph.set_attributes(vid, a)
    return graph


def graph_to_lines(graph: Graph) -> List[str]:
    """Serialise a graph to a list of lines (for the simulated HDFS)."""
    buffer = io.StringIO()
    dump_adjacency_text(graph, buffer)
    return buffer.getvalue().splitlines()
