"""Shared helpers for the benchmark suite.

Each benchmark regenerates one table or figure from the paper via the
experiment functions in :mod:`repro.bench.experiments`.  We run each
experiment exactly once under pytest-benchmark (``rounds=1``): the
numbers that matter are the *simulated* metrics inside the report, not
the harness wall-clock, and many experiments are minutes-long sweeps.

Every report is echoed to stdout (run with ``-s`` to see it live) and
saved under ``results/`` — both the rendered ``<id>.txt`` and a
machine-readable ``<id>.json`` sibling — so EXPERIMENTS.md and any
downstream tooling can be assembled from the exact artefacts the
suite produced.
"""

from __future__ import annotations

import os

from repro.bench.export import save_report

RESULTS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "results")


def run_experiment(benchmark, experiment_fn):
    """Execute one experiment under the benchmark fixture and archive it."""
    report = benchmark.pedantic(experiment_fn, rounds=1, iterations=1)
    print()
    print(report)
    save_report(report, RESULTS_DIR)
    return report
