#!/usr/bin/env python
"""Scenario: attribute-aware community mining and focused clustering.

The paper's two heaviest workloads on the attributed Tencent stand-in:

* **Community detection** finds all dense subgraphs whose members share
  attributes (interest tags) — "groups of friends who like the same
  things".
* **Focused clustering** (FocusCO) starts instead from *user-provided
  exemplars*: given a handful of users someone finds interesting, infer
  which attributes matter to them and surface only clusters that are
  coherent in those attributes — the recommendation use-case the paper
  cites.

Run:  python examples/community_recommendation.py
"""

from repro.apps import CommunityDetectionApp, GraphClusteringApp
from repro.core import GMinerConfig, GMinerJob
from repro.graph.datasets import load_dataset
from repro.mining.clustering import FocusParams
from repro.mining.community import CommunityParams
from repro.sim.cluster import ClusterSpec


def main() -> None:
    built = load_dataset("tencent-s")
    graph = built.graph
    space = built.attribute_space
    config = GMinerConfig(
        cluster=ClusterSpec(num_nodes=15, cores_per_node=4), time_limit=120.0
    )
    print(f"dataset: {graph} (scaled stand-in for Tencent)")

    # ---- community detection ------------------------------------------------
    cd = GMinerJob(
        CommunityDetectionApp(CommunityParams(tau=0.4, gamma=0.5, min_size=5)),
        graph,
        config,
    ).run()
    print(f"\ncommunity detection: {len(cd.value)} communities "
          f"in {cd.total_seconds:.2f}s (simulated)")
    for community in cd.value[:3]:
        sample = graph.attributes(community[0])
        tags = ", ".join(space.describe(a) for a in sample)
        print(f"  size {len(community):>3}  members {community[:6]}...  "
              f"anchor tags: {tags}")

    # ---- focused clustering --------------------------------------------------
    # pretend the user bookmarked five members of one planted community
    target = min(built.community_map.values())
    exemplars = sorted(
        v for v, c in built.community_map.items() if c == target
    )[:5]
    exemplar_attrs = [graph.attributes(v) for v in exemplars]
    gc = GMinerJob(
        GraphClusteringApp(exemplar_attrs, FocusParams(min_size=5, max_size=32)),
        graph,
        config,
    ).run()
    print(f"\nfocused clustering around exemplars {exemplars}:")
    print(f"  {len(gc.value)} focused clusters in {gc.total_seconds:.2f}s")
    ground_truth = {v for v, c in built.community_map.items() if c == target}
    for cluster in gc.value[:5]:
        overlap = len(set(cluster) & ground_truth) / len(cluster)
        print(f"  size {len(cluster):>3}  overlap with exemplar community: "
              f"{100 * overlap:.0f}%")


if __name__ == "__main__":
    main()
