"""G-Miner runtime configuration.

Every knob the paper's experiments toggle is explicit here: the
partitioner (Figure 11), the LSH task priority queue (Figure 12), task
stealing (Figure 13), the cache policy (§7's RCV discussion), plus the
extension features (recursive task splitting, §9) and fault-tolerance
settings (§7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.sim.cluster import ClusterSpec


@dataclass(frozen=True, kw_only=True)
class GMinerConfig:
    """Configuration for a G-Miner job.

    Fields are keyword-only and validated eagerly in ``__post_init__``
    — a bad knob fails at construction with an actionable message
    instead of deep inside the job.
    """

    cluster: ClusterSpec = field(default_factory=ClusterSpec)

    # -- static load balancing (§6.1) ---------------------------------
    partitioner: str = "bdg"  # "bdg" | "hash"

    # -- task store / LSH priority queue (§4.3, §7) --------------------
    enable_lsh: bool = True
    lsh_signature_size: int = 4
    store_block_tasks: int = 64  # tasks per disk-resident block
    #: A block also splits past this many bytes, so heavy tasks (GC
    #: growers, GM partial-embedding sets) cannot balloon the one
    #: in-memory head block — the store's whole point is bounding
    #: memory (§4.3).
    store_block_bytes: int = 262_144

    # -- RCV cache (§7) -------------------------------------------------
    cache_policy: str = "rcv"  # "rcv" | "lru" | "fifo"
    cache_capacity_bytes: int = 262_144
    #: §5.1: one process per node shares the cache across all cores
    #: (the default, maximising cache efficiency).  k > 1 models
    #: multi-process deployment: the node's cache budget splits into k
    #: independent caches with no sharing between them.
    processes_per_node: int = 1

    # -- candidate retriever --------------------------------------------
    max_inflight_tasks: int = 8  # CMQ capacity per worker
    pull_batch_overhead_bytes: int = 24  # per pull request/response framing

    # -- task executor ----------------------------------------------------
    task_buffer_batch: int = 16  # tasks flushed from buffer to store at once
    #: Backpressure: the retriever stops feeding the CPQ once this many
    #: tasks are queued per core, keeping the surplus INACTIVE in the
    #: task store where it is cheap to hold (disk-backed) and visible
    #: to task stealing.
    cpq_per_core: int = 1

    # -- dynamic load balancing: task stealing (§6.2) ---------------------
    enable_stealing: bool = True
    steal_batch: int = 16  # Tnum: tasks migrated per MIGRATE
    steal_cost_threshold: float = 512.0  # Tc, against c(t) = |subG| + |candVtxs|
    steal_local_rate_threshold: float = 0.9  # Tr, against lr(t)
    steal_retry_interval: float = 0.02  # idle worker re-REQ period (sim s)

    # -- aggregator / progress (§5.1) --------------------------------------
    agg_interval: float = 0.02  # seconds between aggregator syncs
    progress_interval: float = 0.02  # seconds between progress reports

    # -- fault tolerance (§7) ------------------------------------------------
    checkpoint_interval: Optional[float] = None  # seconds; None disables
    #: How the master learns about dead workers when a failure plan is
    #: armed.  "heartbeat" (the default) runs the real suspect→confirm
    #: timeout monitor over worker heartbeats; "oracle" keeps the
    #: legacy direct injector→master hook, retained as a test-only
    #: shortcut.
    failure_detection: str = "heartbeat"  # "heartbeat" | "oracle"
    heartbeat_interval: float = 0.02  # seconds between worker heartbeats
    #: Heartbeat silence after which the master *suspects* a worker;
    #: silence past twice this confirms the failure and triggers
    #: recovery.  Must comfortably exceed ``heartbeat_interval`` or
    #: ordinary jitter produces false positives.
    suspect_timeout: float = 0.08
    #: Per-pull RPC timeout: an unanswered pull is retransmitted with
    #: seeded exponential backoff + jitter after this many seconds.
    rpc_timeout: float = 0.05
    #: Retries per backoff cycle.  An exhausted cycle does not abandon
    #: the pull (that would lose the task): the worker cools down for
    #: one maximum-backoff period and starts a fresh cycle, unless the
    #: owner has been declared down (then the pull parks until
    #: ``WorkerUp``).
    rpc_max_retries: int = 4

    # -- extensions (paper §9 future work) -----------------------------------
    enable_splitting: bool = False
    split_candidate_threshold: int = 256  # split tasks with more candidates

    # -- observability ------------------------------------------------------
    enable_tracing: bool = False  # task-lifecycle trace (repro.core.tracing)
    trace_capacity: int = 200_000  # max trace records before dropping
    #: Attach a :class:`repro.obs.ObsSession` to the job: metrics
    #: registry + span tracer + exporters (``result.obs`` carries the
    #: finalized snapshot).  Strictly read-only over the simulation —
    #: enabling it cannot change any simulated quantity — and entirely
    #: off (no allocations on the hot path) when False, unless an
    #: ambient :class:`repro.obs.ObsCollector` is installed.
    enable_obs: bool = False
    obs_span_capacity: int = 500_000  # max spans before dropping

    # -- verification -------------------------------------------------------
    #: Arm the runtime invariant checker (:mod:`repro.verify`): an
    #: :class:`~repro.verify.InvariantMonitor` rides along with the job
    #: and asserts conservation laws (messages, work units, task
    #: lifecycle, cache/store accounting, clock monotonicity) at the
    #: existing barrier points, raising ``InvariantViolation`` with a
    #: minimal event-window repro on failure.  Strictly read-only over
    #: the simulation and zero-overhead when off.  The ``REPRO_VERIFY=1``
    #: environment variable arms it globally without touching configs.
    verify: bool = False

    # -- job limits ------------------------------------------------------------
    time_limit: Optional[float] = None  # simulated seconds; None = unlimited

    # -- execution engine ------------------------------------------------------
    #: How the job actually runs.  "sim" (the default) executes on the
    #: discrete-event cluster simulator and reports simulated time;
    #: "native" executes the same tasks for real on a multiprocess pool
    #: (:mod:`repro.native`) and reports wall-clock time.  Results and
    #: total work-unit charges are bit-identical between the two for
    #: every schedule-independent workload (see DESIGN.md's sim-vs-
    #: native equivalence contract); native mode refuses failure plans.
    execution: str = "sim"  # "sim" | "native"
    #: Pool size for native execution; ``None`` uses every host core.
    #: Results never depend on this — only wall-clock time does.
    native_workers: Optional[int] = None
    #: Seed vertices per work-stealing chunk in native mode.  Purely a
    #: scheduling granularity: results and charges are chunk-invariant.
    native_chunk_size: int = 64
    #: Native supervision: wall-clock seconds a worker may hold one
    #: chunk before the supervisor presumes it hung, terminates it and
    #: retries the chunk elsewhere.  ``None`` uses the engine default
    #: (60s); only meaningful under ``execution="native"``.
    native_chunk_deadline: Optional[float] = None
    #: Native supervision: failed attempts a chunk may accumulate
    #: (worker crashes, lease expiries, transient errors) before it is
    #: quarantined and the run fails with a structured
    #: ``NativeChunkError``.  ``None`` uses the engine default (2).
    native_max_chunk_retries: Optional[int] = None
    #: Native supervision: dead workers the supervisor may replace
    #: before degrading to a smaller pool (and ultimately an in-process
    #: serial fallback).  ``None`` uses the engine default (2).
    native_max_respawns: Optional[int] = None

    # -- set-operation kernels (repro.kernels) ---------------------------------
    #: Backend for sorted-array set operations.  ``None`` keeps the
    #: process-wide default (``REPRO_KERNEL_BACKEND`` or auto-detect);
    #: "auto" re-resolves (numpy when importable, else reference);
    #: "reference" / "numpy" / "bitset" force one.  Backends are
    #: value- and work-unit-identical — this knob only affects
    #: wall-clock speed.
    kernel_backend: Optional[str] = None

    # -- misc -------------------------------------------------------------------
    seed_scan_cost: float = 2.0  # work units per vertex scanned by task generator

    def __post_init__(self) -> None:
        # Fail fast: a typo'd knob should surface here, at construction,
        # not minutes later inside a worker loop.
        self.validate()

    def replace(self, **kwargs) -> "GMinerConfig":
        """Return a copy with the given fields overridden."""
        unknown = [k for k in kwargs if k not in self.__dataclass_fields__]
        if unknown:
            raise ValueError(
                f"unknown GMinerConfig field(s) {sorted(unknown)}; "
                f"valid fields: {sorted(self.__dataclass_fields__)}"
            )
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Check every knob; raise ``ValueError`` with a fix hint.

        Also called from ``__post_init__``, so any constructed config is
        already valid; kept public for callers that mutate copies via
        ``dataclasses.replace`` directly.
        """
        if self.partitioner not in ("bdg", "hash"):
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}: expected 'bdg' "
                "(locality-preserving blocks, the paper's default) or 'hash'"
            )
        if self.cache_policy not in ("rcv", "lru", "fifo"):
            raise ValueError(
                f"unknown cache policy {self.cache_policy!r}: expected 'rcv' "
                "(reference-counting, the paper's default), 'lru' or 'fifo'"
            )
        if self.execution not in ("sim", "native"):
            raise ValueError(
                f"unknown execution mode {self.execution!r}: expected 'sim' "
                "(discrete-event simulator, the default) or 'native' "
                "(real multiprocess pool, repro.native)"
            )
        if self.native_workers is not None and self.native_workers < 1:
            raise ValueError(
                f"native_workers must be >= 1 (or None for all host "
                f"cores); got {self.native_workers!r}"
            )
        if self.native_chunk_size < 1:
            raise ValueError(
                f"native_chunk_size must be >= 1; got "
                f"{self.native_chunk_size!r}"
            )
        if self.execution != "native":
            # the supervision knobs govern the real process pool only;
            # silently accepting them on a simulated job would make a
            # "we survived chaos" experiment vacuous
            for knob in (
                "native_chunk_deadline",
                "native_max_chunk_retries",
                "native_max_respawns",
            ):
                if getattr(self, knob) is not None:
                    raise ValueError(
                        f"{knob} only applies to execution='native' "
                        f"(got execution={self.execution!r}); the simulator's "
                        "fault machinery is configured through FailurePlan "
                        "and the §7 knobs instead"
                    )
        if self.native_chunk_deadline is not None and not (
            self.native_chunk_deadline > 0
            and math.isfinite(self.native_chunk_deadline)
        ):
            raise ValueError(
                f"native_chunk_deadline must be a positive (finite) number "
                f"of wall-clock seconds, or None for the engine default; "
                f"got {self.native_chunk_deadline!r}"
            )
        if (
            self.native_max_chunk_retries is not None
            and self.native_max_chunk_retries < 0
        ):
            raise ValueError(
                f"native_max_chunk_retries cannot be negative; got "
                f"{self.native_max_chunk_retries!r} (0 quarantines a chunk "
                "on its first failure)"
            )
        if self.native_max_respawns is not None and self.native_max_respawns < 0:
            raise ValueError(
                f"native_max_respawns cannot be negative; got "
                f"{self.native_max_respawns!r} (0 never replaces a dead "
                "worker: the pool only shrinks)"
            )
        if self.kernel_backend not in (None, "auto", "reference", "numpy", "bitset"):
            raise ValueError(
                f"unknown kernel_backend {self.kernel_backend!r}: expected "
                "None (process default), 'auto', 'reference', 'numpy' or "
                "'bitset'"
            )
        if self.failure_detection not in ("heartbeat", "oracle"):
            raise ValueError(
                f"unknown failure_detection {self.failure_detection!r}: "
                "expected 'heartbeat' (the real suspect/confirm monitor, "
                "the default) or 'oracle' (test-only direct hook)"
            )
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be a positive number of simulated "
                f"seconds; got {self.heartbeat_interval!r}"
            )
        if self.suspect_timeout <= self.heartbeat_interval:
            raise ValueError(
                f"suspect_timeout ({self.suspect_timeout!r}) must exceed "
                f"heartbeat_interval ({self.heartbeat_interval!r}), or every "
                "ordinary heartbeat gap becomes a false suspicion; use at "
                "least 2-4 heartbeat intervals"
            )
        if self.rpc_timeout <= 0:
            raise ValueError(
                f"rpc_timeout must be a positive number of simulated "
                f"seconds; got {self.rpc_timeout!r}"
            )
        if self.rpc_max_retries < 0:
            raise ValueError(
                f"rpc_max_retries cannot be negative; got "
                f"{self.rpc_max_retries!r} (0 means retry once per cycle "
                "with no backoff growth)"
            )
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError(
                f"checkpoint_interval must be a positive number of simulated "
                f"seconds, or None to disable checkpointing; got "
                f"{self.checkpoint_interval!r}"
            )
        if self.time_limit is not None and self.time_limit <= 0:
            raise ValueError(
                f"time_limit must be a positive number of simulated seconds, "
                f"or None for no limit; got {self.time_limit!r}"
            )
        if self.obs_span_capacity < 0:
            raise ValueError(
                f"obs_span_capacity cannot be negative; got "
                f"{self.obs_span_capacity!r} (0 keeps metrics but records "
                "no spans)"
            )
        if self.store_block_tasks < 1:
            raise ValueError("store_block_tasks must be >= 1")
        if self.max_inflight_tasks < 1:
            raise ValueError("max_inflight_tasks must be >= 1")
        if self.steal_batch < 1:
            raise ValueError("steal_batch must be >= 1")
        if self.cache_capacity_bytes < 0:
            raise ValueError("cache capacity cannot be negative")
        if self.processes_per_node < 1:
            raise ValueError("processes_per_node must be >= 1")
