"""Exceptions raised by the simulated cluster.

These mirror the failure modes the paper records in its tables:
``"x"`` entries are out-of-memory failures and ``"-"`` entries are jobs
that exceeded the 24-hour wall-clock limit.
"""


class SimulationError(Exception):
    """Base class for simulation failures."""


class SimulatedOOMError(SimulationError):
    """A simulated node exceeded its memory limit.

    Corresponds to the ``"x"`` entries in Tables 1 and 3 of the paper.
    """

    def __init__(self, node_id, used_bytes, limit_bytes, what=""):
        self.node_id = node_id
        self.used_bytes = used_bytes
        self.limit_bytes = limit_bytes
        self.what = what
        message = (
            f"node {node_id} out of memory: used {used_bytes} of "
            f"{limit_bytes} bytes"
        )
        if what:
            message += f" while {what}"
        super().__init__(message)


class SimulatedTimeLimitExceeded(SimulationError):
    """The job ran past the simulated time limit.

    Corresponds to the ``"-"`` (>24 hours) entries in Tables 1 and 3.
    """

    def __init__(self, limit_seconds):
        self.limit_seconds = limit_seconds
        super().__init__(f"job exceeded simulated time limit of {limit_seconds}s")


class SimulatedNodeFailure(SimulationError):
    """A node was killed by failure injection while holding live state."""

    def __init__(self, node_id, at_time):
        self.node_id = node_id
        self.at_time = at_time
        super().__init__(f"node {node_id} failed at t={at_time:.3f}s")
