"""The unit of work the parallel engine ships between processes.

A :class:`RunRequest` is a frozen, picklable description of one
experiment cell: run ``workload`` on ``system`` over ``dataset`` with a
given cluster shape, config and overrides.  Executing it is a pure
function of its fields (the whole cluster is a deterministic
simulation), which is what makes process-pool fan-out safe: any worker
can execute any cell and produce byte-identical results.

The execution logic itself lives in :mod:`repro.bench.runner`
(:func:`repro.bench.runner.execute_request`); this module imports it
lazily so the request type stays importable from child processes
without dragging the whole bench stack into every import.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.config import GMinerConfig
from repro.sim.cluster import ClusterSpec
from repro.sim.failures import FailurePlan

#: Sentinel meaning "use the bench default time limit"
#: (:data:`repro.bench.runner.DEFAULT_TIME_LIMIT`).  A string rather
#: than a module-level object() so requests pickle cleanly.
USE_DEFAULT = "use-default"


@dataclass(frozen=True)
class RunRequest:
    """One experiment cell: ``(system, workload, dataset, config)``."""

    workload: str
    dataset: str
    system: str = "gminer"
    spec: Optional[ClusterSpec] = None
    config: Optional[GMinerConfig] = None
    time_limit: Union[float, None, str] = USE_DEFAULT
    failure_plan: Optional[FailurePlan] = None
    #: GMinerConfig field overrides, as a sorted tuple of pairs so the
    #: request stays hashable and picklable.
    overrides: Tuple[Tuple[str, Any], ...] = ()
    #: Display label for progress/footers; defaults to
    #: ``system/workload/dataset``.
    label: Optional[str] = None

    @classmethod
    def make(
        cls,
        workload: str,
        dataset: str,
        system: str = "gminer",
        *,
        spec: Optional[ClusterSpec] = None,
        config: Optional[GMinerConfig] = None,
        time_limit: Union[float, None, str] = USE_DEFAULT,
        failure_plan: Optional[FailurePlan] = None,
        label: Optional[str] = None,
        **overrides: Any,
    ) -> "RunRequest":
        """Build a request, folding keyword overrides into the tuple form."""
        return cls(
            workload=workload,
            dataset=dataset,
            system=system,
            spec=spec,
            config=config,
            time_limit=time_limit,
            failure_plan=failure_plan,
            overrides=tuple(sorted(overrides.items())),
            label=label,
        )

    @property
    def display_label(self) -> str:
        return self.label or f"{self.system}/{self.workload}/{self.dataset}"

    def overrides_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)


@dataclass
class CellOutcome:
    """What executing one cell produced, plus host-level accounting.

    ``result`` is None when the system cannot express the workload (the
    paper's empty cells).  ``cache_hits``/``cache_misses`` are the
    build-cache deltas attributable to this cell in the process that
    ran it.
    """

    label: str
    result: Any = None
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0


def execute_request(request: RunRequest) -> Any:
    """Execute one cell in this process (see repro.bench.runner)."""
    from repro.bench.runner import execute_request as _execute

    return _execute(request)


def execute_request_timed(request: RunRequest) -> CellOutcome:
    """Execute one cell, measuring wall clock and build-cache deltas.

    This is the function :class:`~repro.parallel.executor.ParallelRunner`
    submits to pool workers, so everything it returns must pickle.
    """
    from repro.parallel.cache import get_build_cache

    cache = get_build_cache()
    hits0, misses0 = (cache.hits, cache.misses) if cache else (0, 0)
    started = time.perf_counter()
    result = execute_request(request)
    wall = time.perf_counter() - started
    hits1, misses1 = (cache.hits, cache.misses) if cache else (0, 0)
    return CellOutcome(
        label=request.display_label,
        result=result,
        wall_seconds=wall,
        cache_hits=hits1 - hits0,
        cache_misses=misses1 - misses0,
    )
