"""Message vocabulary of the G-Miner protocol.

Everything workers and the master exchange: vertex pulls (§4.3),
aggregator sync and progress reports (§5.1), the task-stealing
REQ/MIGRATE/No_Task protocol (§6.2), checkpoint commands and failure
notices (§7).  Every message knows its serialised size so the network
model can charge it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.core.task import Task
from repro.graph.graph import VertexData

_HEADER = 16  # framing bytes per message (incl. sequence-number slot)


@dataclass
class PullRequest:
    """Candidate retriever → remote worker: fetch these vertices.

    ``seq`` identifies the RPC so retransmitted requests can be matched
    to (possibly duplicated) responses; -1 marks the legacy fault-free
    path where no matching is needed.
    """

    requester: int
    vids: Tuple[int, ...]
    seq: int = -1

    def size_bytes(self) -> int:
        return _HEADER + 8 * len(self.vids)


@dataclass
class PullResponse:
    """Remote worker → requester: the pulled vertex data.

    Echoes the request's ``seq`` so the requester can suppress
    duplicate deliveries (at-least-once → effectively-once).
    """

    vertices: Tuple[VertexData, ...]
    seq: int = -1

    def size_bytes(self) -> int:
        return _HEADER + sum(v.estimate_size() for v in self.vertices)


@dataclass
class AggReport:
    """Worker → master: local aggregator partial."""

    worker: int
    partial: Any

    def size_bytes(self) -> int:
        return _HEADER + 16


@dataclass
class AggBroadcast:
    """Master → workers: the merged global aggregate."""

    value: Any

    def size_bytes(self) -> int:
        return _HEADER + 16


@dataclass
class ProgressReport:
    """Worker → master: pipeline occupancy for the progress table."""

    worker: int
    store_size: int
    cmq_size: int
    cpq_size: int
    busy_cores: int
    buffer_size: int
    idle: bool

    def size_bytes(self) -> int:
        return _HEADER + 48


@dataclass
class StealRequest:
    """Idle worker → master: REQ for more tasks (§6.2)."""

    worker: int

    def size_bytes(self) -> int:
        return _HEADER + 8


@dataclass
class MigrateCommand:
    """Master → loaded worker: ship up to ``count`` tasks to ``dest``."""

    dest: int
    count: int

    def size_bytes(self) -> int:
        return _HEADER + 16


@dataclass
class TaskMigration:
    """Loaded worker → idle worker: the migrated tasks themselves.

    ``seq`` lets the receiver deduplicate retransmissions: applying the
    same migration twice would double-run its tasks and corrupt the
    global live-task count.
    """

    source: int
    tasks: List[Task] = field(default_factory=list)
    seq: int = -1

    def size_bytes(self) -> int:
        return _HEADER + sum(int(t.estimate_size()) for t in self.tasks)


@dataclass
class MigrationAck:
    """Migration destination → source: tasks received; stop resending."""

    worker: int
    seq: int

    def size_bytes(self) -> int:
        return _HEADER + 16


@dataclass
class NoTask:
    """Victim (via master) → requester: nothing worth migrating."""

    source: int

    def size_bytes(self) -> int:
        return _HEADER


@dataclass
class CheckpointCommand:
    """Master → workers: snapshot your state to HDFS now (§7)."""

    epoch: int

    def size_bytes(self) -> int:
        return _HEADER + 8


@dataclass
class WorkerDown:
    """Master → workers: this worker is unreachable; park its pulls.

    ``view`` is the master's membership version at the time of the
    change: receivers discard notices older than the latest view they
    applied, so a reordered stale notice cannot resurrect (or re-bury)
    a worker.  -1 marks the legacy direct path with no versioning.
    """

    worker: int
    view: int = -1

    def size_bytes(self) -> int:
        return _HEADER + 8


@dataclass
class WorkerUp:
    """Master → workers: recovered; re-issue parked pulls."""

    worker: int
    view: int = -1

    def size_bytes(self) -> int:
        return _HEADER + 8


@dataclass
class MembershipView:
    """Master → workers: the full down-set, periodically re-broadcast.

    Individual ``WorkerDown``/``WorkerUp`` notices ride an unreliable
    fabric — any of them can be lost.  The monitor therefore gossips
    its complete membership view every heartbeat interval; receivers
    reconcile against it, so a lost notice heals within one tick
    instead of wedging a worker forever.
    """

    down: Tuple[int, ...]
    view: int

    def size_bytes(self) -> int:
        return _HEADER + 8 + 8 * len(self.down)


@dataclass
class Heartbeat:
    """Worker → master: I am alive (§7's liveness signal).

    The master's failure monitor declares a worker suspected, then
    confirmed dead, from heartbeat silence alone — detection is a real
    protocol, not an oracle callback.  ``incarnation`` increments on
    every reboot so the master can detect a crash-and-fast-recovery it
    never saw as heartbeat silence (the classic amnesia window).
    """

    worker: int
    incarnation: int = 0

    def size_bytes(self) -> int:
        return _HEADER + 12
