"""Command-line entry point for the experiment harness.

Run one experiment (or all of them) without pytest::

    python -m repro.bench list                 # show experiment ids
    python -m repro.bench run table1           # one table/figure
    python -m repro.bench run all -o results/  # everything, archived

Each experiment prints in the paper's format and, with ``-o``, is also
written to ``<dir>/<id>.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench import experiments


def _registry():
    return {fn.__name__: fn for fn in experiments.ALL_EXPERIMENTS}


def cmd_list() -> int:
    for name, fn in _registry().items():
        doc = (fn.__doc__ or "").strip().splitlines()
        print(f"{name:<28} {doc[0] if doc else ''}")
    return 0


def cmd_run(names, out_dir) -> int:
    registry = _registry()
    if names == ["all"]:
        names = list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(registry)}", file=sys.stderr)
        return 2
    for name in names:
        started = time.time()
        report = registry[name]()
        print(report)
        print(f"[{name} completed in {time.time() - started:.1f}s wall clock]")
        print()
        if out_dir:
            report.save(out_dir)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run = sub.add_parser("run", help="run experiments by function name")
    run.add_argument("names", nargs="+", help="experiment names, or 'all'")
    run.add_argument("-o", "--out-dir", default=None, help="archive directory")
    args = parser.parse_args(argv)
    if args.command == "list":
        return cmd_list()
    return cmd_run(args.names, args.out_dir)


if __name__ == "__main__":
    raise SystemExit(main())
