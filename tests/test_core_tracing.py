"""Tests for task-lifecycle tracing."""

import pytest

from repro.apps import TriangleCountingApp
from repro.core import GMinerConfig, GMinerJob
from repro.core.tracing import NullTraceLog, TaskEvent, TraceLog


class TestTraceLog:
    def test_emit_and_query(self):
        log = TraceLog()
        log.emit(0.0, 0, 7, TaskEvent.SEEDED)
        log.emit(1.0, 0, 7, TaskEvent.EXECUTED, detail=1)
        log.emit(2.0, 0, 7, TaskEvent.FINISHED)
        assert len(log) == 3
        assert [r.event for r in log.for_task(7)] == [
            TaskEvent.SEEDED, TaskEvent.EXECUTED, TaskEvent.FINISHED,
        ]
        assert log.lifetime(7) == pytest.approx(2.0)
        assert log.rounds_of(7) == 1

    def test_capacity_drops_excess(self):
        log = TraceLog(capacity=2)
        for i in range(5):
            log.emit(float(i), 0, i, TaskEvent.SEEDED)
        assert len(log) == 2
        assert log.dropped == 3

    def test_pull_latency(self):
        log = TraceLog()
        log.emit(1.0, 0, 1, TaskEvent.PULL_ISSUED)
        log.emit(1.5, 0, 1, TaskEvent.READY)
        log.emit(2.0, 0, 2, TaskEvent.PULL_ISSUED)
        log.emit(3.0, 0, 2, TaskEvent.READY)
        assert log.pull_latencies() == [pytest.approx(0.5), pytest.approx(1.0)]

    def test_lifetime_needs_both_ends(self):
        log = TraceLog()
        log.emit(0.0, 0, 1, TaskEvent.SEEDED)
        assert log.lifetime(1) is None
        assert log.lifetime(99) is None

    def test_migrated_task_lifetime_uses_arrival(self):
        log = TraceLog()
        log.emit(5.0, 1, 3, TaskEvent.MIGRATED_IN)
        log.emit(7.0, 1, 3, TaskEvent.FINISHED)
        assert log.lifetime(3) == pytest.approx(2.0)

    def test_null_log_ignores_everything(self):
        log = NullTraceLog()
        log.emit(0.0, 0, 1, TaskEvent.SEEDED)
        assert len(log) == 0

    def test_summary_fields(self):
        log = TraceLog()
        log.emit(0.0, 0, 1, TaskEvent.SEEDED)
        log.emit(1.0, 0, 1, TaskEvent.FINISHED)
        summary = log.summary()
        assert summary["tasks_finished"] == 1
        assert summary["events"] == 2


class TestTracedJob:
    def test_job_trace_covers_every_task(self, small_social_graph, small_spec):
        config = GMinerConfig(cluster=small_spec, enable_tracing=True)
        job = GMinerJob(TriangleCountingApp(), small_social_graph, config)
        result = job.run()
        trace = result.trace
        assert trace is not None and len(trace) > 0
        # every created task was seeded and finished exactly once
        assert trace.count(TaskEvent.SEEDED) == result.stats["tasks_created"]
        assert trace.count(TaskEvent.FINISHED) == result.stats["tasks_created"]
        # rounds in the trace agree with the runtime counters
        assert trace.count(TaskEvent.EXECUTED) == result.stats["rounds_executed"]

    def test_task_timelines_are_causally_ordered(self, small_social_graph, small_spec):
        config = GMinerConfig(cluster=small_spec, enable_tracing=True)
        result = GMinerJob(TriangleCountingApp(), small_social_graph, config).run()
        trace = result.trace
        finished = [r.task_id for r in trace if r.event is TaskEvent.FINISHED]
        for task_id in finished[:20]:
            times = [r.time for r in trace.for_task(task_id)]
            assert times == sorted(times)
            events = [r.event for r in trace.for_task(task_id)]
            assert events[0] in (TaskEvent.SEEDED, TaskEvent.MIGRATED_IN)
            assert events[-1] is TaskEvent.FINISHED

    def test_tracing_off_by_default(self, small_social_graph, small_spec):
        config = GMinerConfig(cluster=small_spec)
        result = GMinerJob(TriangleCountingApp(), small_social_graph, config).run()
        assert result.trace is None

    def test_pull_latencies_recorded(self, small_social_graph, small_spec):
        config = GMinerConfig(cluster=small_spec, enable_tracing=True)
        result = GMinerJob(TriangleCountingApp(), small_social_graph, config).run()
        latencies = result.trace.pull_latencies()
        assert latencies
        assert all(l >= 0 for l in latencies)
