"""Arabesque-like embedding-exploration system (paper §2).

The exploration model: processing proceeds in rounds; every existing
embedding is expanded by one neighbouring vertex, producing candidate
embeddings that are only *then* filtered.  Because pruning runs after
expansion (a consequence of the MapReduce-style framework), each round
materialises the full candidate set — the paper's diagnosis of where
Arabesque's computation and memory go to waste.

* TC — three rounds (vertex → edge → triangle): finishes, but does an
  order of magnitude more bookkeeping than G-Miner's one-pull tasks.
* MCF — enumerates cliques level by level; the number of cliques
  explodes combinatorially, which is why the paper's Table 1/3 shows
  Arabesque exceeding 24 hours on every MCF run.
* GM/CD/GC — not part of the paper's Arabesque evaluation (Tables 4–5
  have no Arabesque column); we mirror that as unsupported.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.common import GraphView, UnsupportedWorkload, make_result
from repro.core.job import JobResult, JobStatus
from repro.graph.graph import Graph
from repro.mining.cost import Budget, BudgetExceeded, WorkMeter
from repro.sim.cluster import ClusterSpec

#: Framework tax: distributed MapReduce-style rounds over an embedding
#: store cost roughly this many basic operations per useful one.
OVERHEAD = 10.0
#: Materialised embedding element size including JVM object headers.
BYTES_PER_EMBEDDING_VERTEX = 48
#: Fixed per-round synchronisation cost (seconds).
ROUND_BARRIER_SECONDS = 0.05


class EmbeddingExploreSystem:
    """Round-based expand-then-filter embedding exploration."""

    name = "arabesque"

    def __init__(
        self,
        spec: Optional[ClusterSpec] = None,
        time_limit: Optional[float] = None,
    ) -> None:
        self.spec = spec or ClusterSpec()
        self.time_limit = time_limit

    def _budget(self) -> WorkMeter:
        if self.time_limit is None:
            return WorkMeter()
        total_speed = self.spec.core_speed * self.spec.total_cores
        return Budget(limit=self.time_limit * total_speed / OVERHEAD)

    def run(self, app: str, graph: Graph) -> JobResult:
        if app not in ("tc", "mcf"):
            raise UnsupportedWorkload(self.name, app)
        view = GraphView.of(graph)
        budget = self._budget()
        try:
            if app == "tc":
                return self._run_tc(view, budget)
            return self._run_mcf(view, budget)
        except BudgetExceeded:
            return make_result(
                status=JobStatus.TIMEOUT,
                app_name=app,
                total_seconds=self.time_limit or 0.0,
                cpu_utilization=0.1,
            )
        except _EmbeddingOOM as oom:
            return make_result(
                status=JobStatus.OOM,
                app_name=app,
                total_seconds=oom.at_seconds,
                peak_memory_bytes=oom.peak_bytes,
                cpu_utilization=0.1,
            )

    # ------------------------------------------------------------------

    def _round_seconds(self, work_units: float) -> float:
        per_core = work_units * OVERHEAD / (
            self.spec.core_speed * self.spec.total_cores
        )
        # BSP skew: assume the slowest worker carries ~2x the mean load
        return 2.0 * per_core + ROUND_BARRIER_SECONDS

    def _check_memory(
        self, num_embeddings: int, vertices_each: int, at_seconds: float
    ) -> int:
        total = num_embeddings * vertices_each * BYTES_PER_EMBEDDING_VERTEX
        per_node = total / self.spec.num_nodes
        if per_node > self.spec.memory_per_node:
            raise _EmbeddingOOM(at_seconds=at_seconds, peak_bytes=int(total))
        return int(total)

    # ------------------------------------------------------------------

    def _run_tc(self, view: GraphView, budget: WorkMeter) -> JobResult:
        elapsed = 0.0
        peak = 0
        # round 1: vertex embeddings
        vertices = sorted(view.adjacency)
        budget.charge(len(vertices))
        elapsed += self._round_seconds(len(vertices))
        peak = max(peak, self._check_memory(len(vertices), 1, elapsed))
        # round 2: expand to edges (canonical u < v), filter after
        candidates2 = 0
        edges: List[Tuple[int, int]] = []
        for v in vertices:
            for u in view.adjacency[v]:
                candidates2 += 1
                if u > v:
                    edges.append((v, u))
        budget.charge(candidates2)
        elapsed += self._round_seconds(candidates2)
        # the embedding store holds the *valid* embeddings of the round;
        # rejected candidates are transient (partition-sized buffers)
        peak = max(peak, self._check_memory(len(edges), 2, elapsed))
        # round 3: expand edges by one vertex, filter to triangles
        candidates3 = 0
        triangles = 0
        for (u, v) in edges:
            nv = set(view.adjacency[v])
            for w in view.adjacency[u]:
                candidates3 += 1
                budget.charge()
                if w > v and w in nv:
                    triangles += 1
        elapsed += self._round_seconds(candidates3)
        peak = max(
            peak, self._check_memory(max(triangles, candidates3 // 8), 3, elapsed)
        )
        useful = len(vertices) + candidates2 + candidates3
        utilization = min(
            1.0,
            useful * OVERHEAD / (self.spec.core_speed * self.spec.total_cores * elapsed)
            / 2.0,
        )
        return make_result(
            status=JobStatus.OK,
            app_name="tc",
            value=triangles,
            total_seconds=elapsed,
            cpu_utilization=utilization,
            peak_memory_bytes=peak,
            network_bytes=int(candidates3 * 16),
            stats={"rounds": 3, "candidates": useful},
        )

    def _run_mcf(self, view: GraphView, budget: WorkMeter) -> JobResult:
        """Clique enumeration by level: (k)-cliques → (k+1)-cliques.

        Faithful to the exploration model's expand-then-filter order
        (§2): each embedding is first expanded by *every* neighbour of
        every member, and only then are candidates filtered for
        canonicality (``w > last``) and clique-ness (one adjacency
        probe per member).  The pruning-after-exploration waste is
        exactly what the paper blames for Arabesque's 24-hour MCF runs;
        every clique of every size is also materialised, so dense
        graphs exhaust memory instead.
        """
        elapsed = 0.0
        peak = 0
        adjacency = {v: set(ns) for v, ns in view.adjacency.items()}
        level: List[Tuple[int, ...]] = [(v,) for v in sorted(adjacency)]
        best: Tuple[int, ...] = level[0] if level else ()
        size = 1
        budget.charge(len(level))
        while level:
            next_level: List[Tuple[int, ...]] = []
            candidates = 0
            for emb in level:
                emb_set = set(emb)
                last = emb[-1]
                # expand: every neighbour of every member is a candidate
                for member in emb:
                    for w in adjacency[member]:
                        candidates += 1
                        budget.charge()
                        if w <= last or w in emb_set:
                            continue
                        # filter: clique check, one probe per member
                        budget.charge(len(emb))
                        if all(w in adjacency[m] for m in emb):
                            next_level.append(emb + (w,))
            # duplicate candidates from different members produce
            # duplicate embeddings; dedup is part of the filter step
            next_level = sorted(set(next_level))
            size += 1
            elapsed += self._round_seconds(max(candidates, 1))
            if next_level:
                peak = max(
                    peak, self._check_memory(len(next_level), size, elapsed)
                )
                best = next_level[0]
            level = next_level
        return make_result(
            status=JobStatus.OK,
            app_name="mcf",
            value=best,
            total_seconds=elapsed,
            cpu_utilization=0.3,
            peak_memory_bytes=peak,
            stats={"max_level": size - 1},
        )


class _EmbeddingOOM(Exception):
    def __init__(self, at_seconds: float, peak_bytes: int):
        self.at_seconds = at_seconds
        self.peak_bytes = peak_bytes
        super().__init__("embedding store out of memory")
