"""Unit tests for failure injection."""

import math

import pytest

from repro.sim.cluster import ClusterSpec, build_cluster
from repro.sim.failures import FailureInjector, FailurePlan


@pytest.fixture
def cluster():
    return build_cluster(ClusterSpec(num_nodes=3, cores_per_node=2))


def test_kill_marks_node_dead(cluster):
    plan = FailurePlan().kill(node_id=1, at_time=1.0)
    injector = FailureInjector(cluster, plan)
    injector.arm()
    cluster.sim.run()
    assert not cluster.node(1).alive
    assert cluster.node(0).alive


def test_recovery_restores_node(cluster):
    plan = FailurePlan().kill(node_id=1, at_time=1.0, recovery_delay=2.0)
    recovered = []
    injector = FailureInjector(cluster, plan, on_recover=recovered.append)
    injector.arm()
    cluster.sim.run(until=2.0)
    assert not cluster.node(1).alive
    cluster.sim.run()
    assert cluster.node(1).alive
    assert recovered == [1]


def test_on_fail_hook_fires(cluster):
    failed = []
    plan = FailurePlan().kill(node_id=2, at_time=0.5)
    FailureInjector(cluster, plan, on_fail=failed.append).arm()
    cluster.sim.run()
    assert failed == [2]


def test_network_drops_traffic_to_dead_node(cluster):
    got = []
    cluster.network.register_handler(1, lambda m: got.append(m))
    plan = FailurePlan().kill(node_id=1, at_time=1.0)
    FailureInjector(cluster, plan).arm()
    cluster.sim.schedule(2.0, lambda: cluster.network.send(0, 1, 10, None))
    cluster.sim.run()
    assert got == []


def test_double_kill_is_rejected(cluster):
    # killing a node that is already dead can never trigger — that is a
    # schedule bug, and validation now rejects it up front
    plan = FailurePlan().kill(1, 1.0).kill(1, 2.0)
    injector = FailureInjector(cluster, plan)
    with pytest.raises(ValueError, match="already dead"):
        injector.arm()


def test_rekill_after_recovery_is_allowed(cluster):
    plan = FailurePlan().kill(1, 1.0, recovery_delay=0.5).kill(1, 2.0)
    injector = FailureInjector(cluster, plan)
    injector.arm()
    cluster.sim.run()
    assert len(injector.failures_triggered) == 2


def test_plan_iterates_in_time_order():
    plan = FailurePlan().kill(1, 5.0).kill(2, 1.0)
    assert [e.at_time for e in plan] == [1.0, 5.0]


class TestPlanValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FailurePlan().kill(0, -1.0).validate()

    def test_nan_time_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FailurePlan().kill(0, math.nan).validate()

    def test_non_positive_recovery_delay_rejected(self):
        with pytest.raises(ValueError, match="recovery_delay"):
            FailurePlan().kill(0, 1.0, recovery_delay=0.0).validate()
        with pytest.raises(ValueError, match="recovery_delay"):
            FailurePlan().kill(0, 1.0, recovery_delay=math.nan).validate()

    def test_unknown_node_id_rejected_when_cluster_known(self):
        plan = FailurePlan().kill(9, 1.0)
        plan.validate()  # without a cluster size the id cannot be checked
        with pytest.raises(ValueError, match="unknown node id"):
            plan.validate(num_nodes=4)

    def test_arm_rejects_unknown_node(self, cluster):
        injector = FailureInjector(cluster, FailurePlan().kill(9, 1.0))
        with pytest.raises(ValueError, match="unknown node id"):
            injector.arm()

    def test_link_fault_specs_validated_through_plan(self):
        with pytest.raises(ValueError):
            FailurePlan().lossy(1.5).validate()

    def test_kill_inside_dead_window_rejected(self):
        plan = FailurePlan().kill(1, 1.0, recovery_delay=2.0).kill(1, 2.5)
        with pytest.raises(ValueError, match="already dead"):
            plan.validate()
