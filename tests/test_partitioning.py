"""Unit tests for hash and BDG partitioning (paper §6.1)."""

import pytest

from repro.graph.generators import preferential_attachment_graph
from repro.graph.graph import Graph
from repro.partitioning import (
    BDGPartitioner,
    HashPartitioner,
    PartitionAssignment,
    bfs_color_blocks,
)


class TestAssignment:
    def test_assign_and_lookup(self):
        a = PartitionAssignment(num_partitions=2)
        a.assign(5, 1)
        assert a.owner_of(5) == 1
        assert a.vertices_of(1) == [5]
        assert a.vertices_of(0) == []

    def test_out_of_range_worker_rejected(self):
        a = PartitionAssignment(num_partitions=2)
        with pytest.raises(ValueError):
            a.assign(0, 2)

    def test_partition_sizes_and_balance(self):
        a = PartitionAssignment(num_partitions=2)
        for v in range(4):
            a.assign(v, v % 2)
        assert a.partition_sizes() == [2, 2]
        assert a.balance_ratio() == pytest.approx(1.0)

    def test_edge_cut_fraction(self, tiny_graph):
        a = PartitionAssignment(num_partitions=2)
        for v in tiny_graph.vertices():
            a.assign(v, 0 if v < 3 else 1)
        # edges crossing: (1,3), (2,3) of 7
        assert a.edge_cut_fraction(tiny_graph) == pytest.approx(2 / 7)

    def test_validate_complete_catches_missing(self, tiny_graph):
        a = PartitionAssignment(num_partitions=1)
        a.assign(0, 0)
        with pytest.raises(ValueError):
            a.validate_complete(tiny_graph)


class TestHashPartitioner:
    def test_covers_all_vertices(self, small_social_graph):
        a = HashPartitioner().partition(small_social_graph, 4)
        a.validate_complete(small_social_graph)

    def test_deterministic(self, small_social_graph):
        a = HashPartitioner().partition(small_social_graph, 4)
        b = HashPartitioner().partition(small_social_graph, 4)
        assert a.owner == b.owner

    def test_reasonably_balanced(self, small_social_graph):
        a = HashPartitioner().partition(small_social_graph, 4)
        assert a.balance_ratio() < 1.5

    def test_not_contiguous_striping(self, small_social_graph):
        """The mixer must break contiguous-ID runs (identity hashing
        would stripe round-robin, flattering locality)."""
        a = HashPartitioner().partition(small_social_graph, 4)
        owners = [a.owner_of(v) for v in sorted(small_social_graph.vertices())]
        striped = [v % 4 for v in sorted(small_social_graph.vertices())]
        assert owners != striped

    def test_cheap_partition_time(self, small_social_graph):
        a = HashPartitioner().partition(small_social_graph, 4)
        assert a.partition_time_units == small_social_graph.num_vertices


class TestBFSColoring:
    def test_blocks_cover_graph(self, small_social_graph):
        blocks, _ = bfs_color_blocks(small_social_graph, seed=1)
        covered = sorted(v for b in blocks for v in b.vertices)
        assert covered == sorted(small_social_graph.vertices())

    def test_blocks_disjoint(self, small_social_graph):
        blocks, _ = bfs_color_blocks(small_social_graph, seed=1)
        seen = set()
        for b in blocks:
            assert not (seen & set(b.vertices))
            seen.update(b.vertices)

    def test_tiny_components_become_blocks(self):
        # two disconnected dyads unreachable from sampled sources within
        # limited rounds still get covered via the Hash-Min fixup
        g = Graph.from_edges([(0, 1), (10, 11), (20, 21)])
        blocks, _ = bfs_color_blocks(g, sources_per_round=1, max_rounds=1, seed=0)
        covered = sorted(v for b in blocks for v in b.vertices)
        assert covered == [0, 1, 10, 11, 20, 21]

    def test_work_accounted(self, small_social_graph):
        _, work = bfs_color_blocks(small_social_graph, seed=1)
        assert work > 0


class TestBDGPartitioner:
    def test_covers_all_vertices(self, small_social_graph):
        a = BDGPartitioner(seed=1).partition(small_social_graph, 4)
        a.validate_complete(small_social_graph)

    def test_deterministic(self, small_social_graph):
        a = BDGPartitioner(seed=1).partition(small_social_graph, 4)
        b = BDGPartitioner(seed=1).partition(small_social_graph, 4)
        assert a.owner == b.owner

    def test_costs_more_than_hash(self, small_social_graph):
        """Figure 11's first bar: BDG pays real partitioning work."""
        bdg = BDGPartitioner(seed=1).partition(small_social_graph, 4)
        hashed = HashPartitioner().partition(small_social_graph, 4)
        assert bdg.partition_time_units > 10 * hashed.partition_time_units

    def test_improves_locality_on_sparse_graph(self):
        """On community-structured graphs BDG must cut fewer edges than
        hashing — the property Figure 11's network bars rest on."""
        g = preferential_attachment_graph(400, 3, triangle_prob=0.7, seed=5)
        bdg = BDGPartitioner(seed=1).partition(g, 4)
        hashed = HashPartitioner().partition(g, 4)
        assert bdg.edge_cut_fraction(g) < hashed.edge_cut_fraction(g)

    def test_degree_mass_balanced(self, small_social_graph):
        a = BDGPartitioner(seed=1).partition(small_social_graph, 4)
        mass = [0] * 4
        for v in small_social_graph.vertices():
            mass[a.owner_of(v)] += small_social_graph.degree(v)
        mean = sum(mass) / len(mass)
        assert max(mass) < 2.0 * mean

    def test_single_partition(self, small_social_graph):
        a = BDGPartitioner(seed=1).partition(small_social_graph, 1)
        assert set(a.owner.values()) == {0}

    def test_rejects_zero_partitions(self, small_social_graph):
        with pytest.raises(ValueError):
            BDGPartitioner().partition(small_social_graph, 0)
