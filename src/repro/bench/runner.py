"""Uniform experiment runner.

Centralises the scaled experiment defaults (cluster shape, time limit)
and knows how to run every workload on every system so the per-
table/figure experiment functions stay declarative.

The one public entrypoint is :func:`run` — keyword-only, built on
:class:`repro.parallel.RunRequest`, the same unit the parallel engine
ships to pool workers.  :func:`execute_request` is the single place a
cell actually executes, whether called inline, by the ambient
:class:`~repro.parallel.ParallelRunner`, or inside a child process.
The legacy ``run_system``/``run_gminer`` pair has completed its
deprecation cycle: calling either raises ``TypeError`` naming the
replacement.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

from repro.apps import (
    CommunityDetectionApp,
    GraphClusteringApp,
    GraphletCountingApp,
    GraphMatchingApp,
    MaxCliqueApp,
    TriangleCountingApp,
)
from repro.baselines import (
    BatchSubgraphSystem,
    EmbeddingExploreSystem,
    SingleThreadSystem,
    VertexCentricSystem,
)
from repro.baselines.common import UnsupportedWorkload
from repro.core import GMinerConfig, GMinerJob
from repro.core.api import GMinerApp
from repro.core.job import JobResult
from repro.graph.datasets import BuiltDataset, load_dataset
from repro.mining.clustering import FocusParams
from repro.mining.community import CommunityParams
from repro.parallel import ParallelRunner, RunRequest, USE_DEFAULT
from repro.sim.cluster import ClusterSpec
from repro.sim.failures import FailurePlan

#: The scaled stand-in for the paper's 15-node x 24-core testbed.  Our
#: graphs carry ~10³x fewer tasks, so 4 cores/node keeps the paper's
#: tasks-per-core ratio (and hence the utilisation/queueing dynamics)
#: in a realistic regime.  Experiments that sweep nodes/cores override
#: this.
EXPERIMENT_SPEC = ClusterSpec(num_nodes=15, cores_per_node=4)

#: Stand-in for the paper's 24-hour cutoff, ~10x the slowest successful
#: scaled run.
DEFAULT_TIME_LIMIT = 10.0

#: Systems usable via :func:`run`.
SYSTEMS = ("single-thread", "arabesque", "giraph", "graphx", "gthinker", "gminer")

#: GC parameters for benches; kept small enough that the convergent
#: refinement stays tractable in real time at bench scale.
BENCH_FOCUS_PARAMS = FocusParams(max_size=24, max_iterations=15)

#: CD similarity threshold for datasets whose attributes are the
#: synthetic uniform 5-dimension lists of footnote 7: random lists have
#: low Jaccard similarity, so the natively-attributed threshold would
#: accept nothing.
SYNTHETIC_CD_PARAMS = CommunityParams(tau=0.2)


def prepare_dataset(name: str, app: str) -> BuiltDataset:
    """Load a dataset with whatever decoration the workload needs:
    labels for GM, attribute lists for CD/GC (paper footnote 7)."""
    if app == "gm":
        return load_dataset(name, labeled=True)
    if app in ("cd", "gc"):
        return load_dataset(name, attributed=True)
    return load_dataset(name)


def gc_exemplars(dataset: BuiltDataset, count: int = 5) -> List[int]:
    """Pick GC exemplar vertices: members of one planted community when
    the dataset has ground truth, else the first vertices."""
    if dataset.community_map:
        target = min(dataset.community_map.values())
        members = sorted(
            v for v, c in dataset.community_map.items() if c == target
        )
        return members[:count]
    return sorted(dataset.graph.vertices())[:count]


def build_app(app: str, dataset: BuiltDataset) -> GMinerApp:
    """Instantiate the G-Miner application for a workload name."""
    if app == "tc":
        return TriangleCountingApp()
    if app == "mcf":
        return MaxCliqueApp()
    if app == "gm":
        return GraphMatchingApp()
    if app == "gl":
        return GraphletCountingApp(k=3)
    if app == "cd":
        from repro.graph.datasets import DATASETS

        native = DATASETS.get(dataset.name)
        if native is not None and not native.attributed:
            return CommunityDetectionApp(SYNTHETIC_CD_PARAMS)
        return CommunityDetectionApp()
    if app == "gc":
        graph = dataset.graph
        attrs = [graph.attributes(v) for v in gc_exemplars(dataset)]
        return GraphClusteringApp(attrs, params=BENCH_FOCUS_PARAMS)
    raise ValueError(f"unknown app {app!r}")


# ----------------------------------------------------------------------
# Cell execution — the one place a (system, workload, dataset, config)
# cell turns into a JobResult.
# ----------------------------------------------------------------------


def _resolve_time_limit(value: Union[float, None, str]) -> Optional[float]:
    return DEFAULT_TIME_LIMIT if value == USE_DEFAULT else value


def _execute_gminer(request: RunRequest) -> JobResult:
    dataset = prepare_dataset(request.dataset, request.workload)
    gminer_app = build_app(request.workload, dataset)
    config = request.config
    if config is None:
        config = GMinerConfig(
            cluster=request.spec or EXPERIMENT_SPEC,
            time_limit=_resolve_time_limit(request.time_limit),
        )
    overrides = request.overrides_dict()
    if overrides:
        config = config.replace(**overrides)
    job = GMinerJob(
        gminer_app, dataset.graph, config, failure_plan=request.failure_plan
    )
    return job.run()


def execute_request(request: RunRequest) -> Optional[JobResult]:
    """Execute one cell; ``None`` when the system's model cannot
    express the workload (the paper's empty cells)."""
    system = request.system
    if system not in SYSTEMS:
        raise ValueError(f"unknown system {system!r}; known: {SYSTEMS}")
    if system == "gminer":
        return _execute_gminer(request)
    spec = request.spec or EXPERIMENT_SPEC
    time_limit = _resolve_time_limit(request.time_limit)
    dataset = prepare_dataset(request.dataset, request.workload)
    graph = dataset.graph
    try:
        if system == "single-thread":
            runner = SingleThreadSystem(time_limit=None)
            exemplars = gc_exemplars(dataset) if request.workload == "gc" else ()
            return runner.run(request.workload, graph, exemplars=exemplars)
        if system == "gthinker":
            gminer_app = build_app(request.workload, dataset)
            return BatchSubgraphSystem(spec, time_limit=time_limit).run_app(
                gminer_app, graph
            )
        if system == "arabesque":
            return EmbeddingExploreSystem(spec, time_limit=time_limit).run(
                request.workload, graph
            )
        # giraph / graphx
        return VertexCentricSystem(system, spec, time_limit=time_limit).run(
            request.workload, graph
        )
    except UnsupportedWorkload:
        return None


# ----------------------------------------------------------------------
# The public entrypoint
# ----------------------------------------------------------------------


def run(
    *,
    system: str = "gminer",
    workload: str,
    dataset: str,
    spec: Optional[ClusterSpec] = None,
    config: Optional[GMinerConfig] = None,
    time_limit: Union[float, None, str] = USE_DEFAULT,
    failure_plan: Optional[FailurePlan] = None,
    workers: int = 1,
    **overrides: Any,
) -> Optional[JobResult]:
    """Run one workload on one system with experiment defaults.

    Keyword-only.  ``system`` is any of :data:`SYSTEMS`; ``workload``
    one of ``tc``/``mcf``/``gm``/``gl``/``cd``/``gc``; extra keyword
    arguments override :class:`GMinerConfig` fields (G-Miner runs
    only).  Returns ``None`` when the system's model cannot express the
    workload.  ``workers`` > 1 executes the cell through a
    :class:`~repro.parallel.ParallelRunner` (useful mostly via
    :func:`run_many`, where several cells share the pool).
    """
    request = RunRequest.make(
        workload,
        dataset,
        system,
        spec=spec,
        config=config,
        time_limit=time_limit,
        failure_plan=failure_plan,
        **overrides,
    )
    if workers == 1:
        return execute_request(request)
    return ParallelRunner(workers=workers).map([request])[0]


def run_many(
    requests: Sequence[RunRequest],
    *,
    workers: int = 1,
    cache=None,
) -> List[Optional[JobResult]]:
    """Execute a batch of cells, results in request order.

    ``workers`` > 1 fans the batch out over a process pool; results are
    byte-identical to the serial order either way.
    """
    return ParallelRunner(workers=workers, cache=cache).map(requests)


# ----------------------------------------------------------------------
# Removed shims (the pre-`run()` API).  The deprecation cycle is over:
# the names remain importable so stale call sites fail with an
# actionable TypeError instead of an AttributeError.
# ----------------------------------------------------------------------


def run_gminer(*args: Any, **kwargs: Any) -> JobResult:
    """Removed: use ``run(system="gminer", workload=..., dataset=...)``."""
    raise TypeError(
        "run_gminer() has been removed; call repro.bench.run("
        "system='gminer', workload=..., dataset=...) instead"
    )


def run_system(*args: Any, **kwargs: Any) -> Optional[JobResult]:
    """Removed: use ``run(system=..., workload=..., dataset=...)``."""
    raise TypeError(
        "run_system() has been removed; call repro.bench.run("
        "system=..., workload=..., dataset=...) instead"
    )
