"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_events_fire_in_time_order(sim):
    fired = []
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(3.0, lambda: fired.append("c"))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_simultaneous_events_fire_fifo(sim):
    fired = []
    for name in "abc":
        sim.schedule(1.0, lambda n=name: fired.append(n))
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_time(sim):
    times = []
    sim.schedule(1.5, lambda: times.append(sim.now))
    sim.schedule(4.25, lambda: times.append(sim.now))
    sim.run()
    assert times == [1.5, 4.25]
    assert sim.now == 4.25


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_in_past_rejected(sim):
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_fire(sim):
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []


def test_run_until_stops_before_later_events(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append("early"))
    sim.schedule(5.0, lambda: fired.append("late"))
    end = sim.run(until=2.0)
    assert fired == ["early"]
    assert end == 2.0
    # remaining event still fires on a subsequent run
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_with_empty_heap_keeps_last_event_time(sim):
    sim.schedule(1.0, lambda: None)
    end = sim.run(until=100.0)
    assert end == 1.0  # completion time, not the limit


def test_nested_scheduling_from_callback(sim):
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(0.5, lambda: fired.append(("inner", sim.now)))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 1.5)]


def test_zero_delay_event_fires_at_current_time(sim):
    fired = []
    sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [1.0]


def test_stop_halts_processing(sim):
    fired = []
    sim.schedule(1.0, lambda: (fired.append("a"), sim.stop()))
    sim.schedule(2.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_max_events_limit(sim):
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    sim.run(max_events=3)
    assert fired == [0, 1, 2]


def test_peek_skips_cancelled(sim):
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    e1.cancel()
    assert sim.peek() == 2.0


def test_pending_counts_live_events(sim):
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending() == 2
    e1.cancel()
    assert sim.pending() == 1


def test_events_processed_counter(sim):
    for i in range(5):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 5
