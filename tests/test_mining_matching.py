"""Unit tests for tree patterns and the graph-matching kernel."""

import pytest

from repro.graph.graph import Graph
from repro.mining.cost import WorkMeter
from repro.mining.matching import (
    count_embeddings_from_seed,
    estimate_partials_size,
    frontier_vertices,
    graph_matching_sequential,
    match_level,
)
from repro.mining.patterns import PAPER_PATTERN, PatternNode, TreePattern, make_pattern
from tests.conftest import adjacency_of, labels_of


@pytest.fixture
def figure1_graph():
    """The paper's Figure 1 data graph (vertices 0..9 with labels).

    Vertex 3 ('a') connects to 1, 2, 4, 5; 4 is 'b', 5 is 'c';
    5 connects to 6..9; 6='d', 7='e', 8='d', 9='e'.
    """
    g = Graph.from_edges(
        [
            (3, 1), (3, 2), (3, 4), (3, 5),
            (4, 5),
            (5, 6), (5, 7), (5, 8), (5, 9),
            (0, 1), (1, 2),
        ]
    )
    labels = {
        0: "f", 1: "d", 2: "e", 3: "a", 4: "b",
        5: "c", 6: "d", 7: "e", 8: "d", 9: "e",
    }
    g.set_labels(labels)
    return g


class TestPattern:
    def test_paper_pattern_shape(self):
        assert PAPER_PATTERN.root_label == "a"
        assert PAPER_PATTERN.depth == 2
        assert PAPER_PATTERN.num_nodes == 5

    def test_level_nodes(self):
        level1 = PAPER_PATTERN.level_nodes(1)
        assert [n.label for n in level1] == ["b", "c"]
        level2 = PAPER_PATTERN.level_nodes(2)
        assert [n.label for n in level2] == ["d", "e"]
        assert all(n.parent == 1 for n in level2)  # children of 'c'

    def test_level_out_of_range(self):
        with pytest.raises(IndexError):
            PAPER_PATTERN.level_nodes(3)
        with pytest.raises(IndexError):
            PAPER_PATTERN.level_nodes(0)

    def test_bad_parent_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("a", [("b", 5)])

    def test_empty_level_rejected(self):
        with pytest.raises(ValueError):
            TreePattern("a", ((),)).validate()


class TestFigure1Walkthrough:
    """Reproduces the paper's worked example."""

    def test_seed_3_matches(self, figure1_graph):
        adj = adjacency_of(figure1_graph)
        labels = labels_of(figure1_graph)
        count = count_embeddings_from_seed(3, PAPER_PATTERN, labels, adj, WorkMeter())
        # level 1: b->4, c->5; level 2 under 5: d in {6,8}, e in {7,9}
        assert count == 4

    def test_non_root_seed_matches_nothing(self, figure1_graph):
        adj = adjacency_of(figure1_graph)
        labels = labels_of(figure1_graph)
        assert count_embeddings_from_seed(5, PAPER_PATTERN, labels, adj, WorkMeter()) == 0

    def test_round1_frontier_is_c_vertex(self, figure1_graph):
        """After round 1 the candidates come from the 'c' match only —
        the paper's {v6..v9} step."""
        adj = adjacency_of(figure1_graph)
        labels = labels_of(figure1_graph)
        partials = match_level(
            [((3,),)], PAPER_PATTERN.level_nodes(1), labels, adj, WorkMeter()
        )
        assert partials == [((3,), (4, 5))]
        frontier = frontier_vertices(partials, PAPER_PATTERN, 2)
        assert frontier == {5}


class TestMatchLevel:
    def test_distinctness_enforced(self):
        # star: center 'a' with one neighbor labeled 'b' — a pattern
        # with two 'b' children cannot reuse the same data vertex
        g = Graph.from_edges([(0, 1)])
        g.set_labels({0: "a", 1: "b"})
        pattern = make_pattern("a", [("b", 0), ("b", 0)])
        count = count_embeddings_from_seed(
            0, pattern, labels_of(g), adjacency_of(g), WorkMeter()
        )
        assert count == 0

    def test_sibling_permutations_counted(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        g.set_labels({0: "a", 1: "b", 2: "b"})
        pattern = make_pattern("a", [("b", 0), ("b", 0)])
        count = count_embeddings_from_seed(
            0, pattern, labels_of(g), adjacency_of(g), WorkMeter()
        )
        assert count == 2  # (1,2) and (2,1)

    def test_no_match_empty(self):
        g = Graph.from_edges([(0, 1)])
        g.set_labels({0: "a", 1: "z"})
        pattern = make_pattern("a", [("b", 0)])
        assert (
            count_embeddings_from_seed(
                0, pattern, labels_of(g), adjacency_of(g), WorkMeter()
            )
            == 0
        )


class TestSequential:
    def test_sums_over_seeds(self, figure1_graph):
        adj = adjacency_of(figure1_graph)
        labels = labels_of(figure1_graph)
        total = graph_matching_sequential(PAPER_PATTERN, labels, adj, WorkMeter())
        assert total == 4  # only seed 3 matches

    def test_deterministic_work(self, small_labeled_graph):
        adj = adjacency_of(small_labeled_graph)
        labels = labels_of(small_labeled_graph)
        m1, m2 = WorkMeter(), WorkMeter()
        c1 = graph_matching_sequential(PAPER_PATTERN, labels, adj, m1)
        c2 = graph_matching_sequential(PAPER_PATTERN, labels, adj, m2)
        assert c1 == c2
        assert m1.units == m2.units


def test_estimate_partials_size_scales():
    small = estimate_partials_size([((1,),)])
    big = estimate_partials_size([((1,), (2, 3)), ((4,), (5, 6))])
    assert big > small
    assert estimate_partials_size([]) == 0
