"""Tests for the set-operation kernel layer (:mod:`repro.kernels`).

Two layers of guarantees:

1. unit tests per backend: every operation returns sorted exact set
   results on hand-picked inputs (empty sides, disjoint, nested,
   skewed sizes that trip the galloping path);
2. hypothesis cross-backend properties: on random graphs, every
   available backend produces *identical mining results and identical
   work-unit totals* to the reference backend for all six mining
   kernels — the work-unit-invariance contract that keeps simulated
   times independent of the backend choice.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import reference
from repro.graph.graph import Graph
from repro.mining.cliques import max_clique_sequential, maximal_cliques
from repro.mining.community import CommunityParams, community_detection_sequential
from repro.mining.clustering import FocusParams, focused_clustering_sequential
from repro.mining.cost import WorkMeter
from repro.mining.graphlets import graphlet_count_sequential
from repro.mining.matching import graph_matching_sequential
from repro.mining.patterns import make_pattern
from repro.mining.triangles import triangle_count_sequential

settings.register_profile(
    "repro-kernels", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro-kernels")

BACKENDS = kernels.available_backends()


# ------------------------------------------------------------ dispatch

def test_reference_backend_always_available():
    assert "reference" in BACKENDS
    assert "bitset" in BACKENDS


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        kernels.set_backend("sse4.2")


def test_use_backend_restores_previous():
    before = kernels.get_backend()
    with kernels.use_backend("reference"):
        assert kernels.get_backend() == "reference"
    assert kernels.get_backend() == before


def test_auto_resolves_to_available_backend():
    with kernels.use_backend("auto"):
        assert kernels.get_backend() in BACKENDS


# ------------------------------------------------------- per-op units

CASES = [
    ((), ()),
    ((1, 2, 3), ()),
    ((), (4, 5)),
    ((1, 2, 3), (1, 2, 3)),
    ((1, 3, 5), (2, 4, 6)),
    ((1, 2, 3, 4, 5), (3,)),
    ((2,), tuple(range(0, 200, 3))),  # skewed: galloping path
    (tuple(range(50)), tuple(range(25, 75))),
]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("a,b", CASES)
def test_ops_match_set_semantics(backend, a, b):
    sa, sb = set(a), set(b)
    with kernels.use_backend(backend):
        ia, ib = kernels.as_array(a), kernels.as_array(b)
        assert kernels.tolist(kernels.intersect(ia, ib)) == sorted(sa & sb)
        assert kernels.intersect_count(ia, ib) == len(sa & sb)
        assert kernels.tolist(kernels.difference(ia, ib)) == sorted(sa - sb)
        assert kernels.tolist(kernels.union(ia, ib)) == sorted(sa | sb)
        probes = sorted(sa | sb | {-1, 1000})
        assert kernels.contains(ia, probes) == [p in sa for p in probes]


@pytest.mark.parametrize("backend", BACKENDS)
def test_as_array_normalises_unsorted_and_duplicates(backend):
    with kernels.use_backend(backend):
        arr = kernels.as_array([5, 1, 3, 1, 5])
        assert kernels.tolist(arr) == [1, 3, 5]
        assert len(arr) == 3


@pytest.mark.parametrize("backend", BACKENDS)
def test_slice_gt(backend):
    with kernels.use_backend(backend):
        arr = kernels.as_array((1, 4, 7, 9))
        assert kernels.tolist(kernels.slice_gt(arr, 0)) == [1, 4, 7, 9]
        assert kernels.tolist(kernels.slice_gt(arr, 4)) == [7, 9]
        assert kernels.tolist(kernels.slice_gt(arr, 5)) == [7, 9]
        assert kernels.tolist(kernels.slice_gt(arr, 9)) == []


@pytest.mark.parametrize("backend", BACKENDS)
def test_intersect_count_many_matches_pairwise(backend):
    arrays = [(), (1, 2, 3), (0, 4, 8, 12), tuple(range(0, 40, 2))]
    thresholds = [0, 2, -1, 9]
    target = (1, 3, 4, 8, 10, 12, 14)
    with kernels.use_backend(backend):
        handles = [kernels.as_array(a) for a in arrays]
        it = kernels.as_array(target)
        expected = sum(
            kernels.intersect_count(
                kernels.slice_gt(h, t), kernels.slice_gt(it, t)
            )
            for h, t in zip(handles, thresholds)
        )
        # raw sequences and handles are both accepted
        for inputs in (handles, arrays):
            count, scanned = kernels.intersect_count_many(inputs, thresholds, it)
            assert count == expected
            assert scanned == sum(len(a) for a in arrays)


def test_reference_merge_and_gallop_agree():
    a = tuple(range(0, 100, 7))
    b = tuple(range(0, 1000, 3))
    ia, ib = reference.as_array(a), reference.as_array(b)
    merged = list(reference.merge_intersect(ia, ib))
    galloped = list(reference.galloping_intersect(ia, ib))
    assert merged == galloped == sorted(set(a) & set(b))


# -------------------------------------------- cross-backend invariance

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=0,
    max_size=120,
)


def _adjacency(edges):
    g = Graph.from_edges(edges)
    return {v: tuple(g.neighbors(v)) for v in g.vertices()}


def _attributes(adjacency):
    # deterministic synthetic attributes: small overlapping universes
    return {
        v: tuple(sorted({(v * 7 + i) % 13 for i in range(4)}))
        for v in adjacency
    }


def _labels(adjacency):
    return {v: "ab"[v % 2] for v in adjacency}


def _per_backend(fn):
    """Run ``fn(meter) -> result`` under every backend; assert all
    (result, units) pairs are identical; return the reference pair."""
    outcomes = {}
    for backend in BACKENDS:
        with kernels.use_backend(backend):
            meter = WorkMeter()
            outcomes[backend] = (fn(meter), meter.units)
    baseline = outcomes["reference"]
    for backend, outcome in outcomes.items():
        assert outcome == baseline, (
            f"backend {backend!r} diverged from reference: "
            f"{outcome} != {baseline}"
        )
    return baseline


@given(edge_lists)
def test_triangles_invariant_across_backends(edges):
    adjacency = _adjacency(edges)
    _per_backend(lambda m: triangle_count_sequential(adjacency, m))


@given(edge_lists)
def test_max_clique_invariant_across_backends(edges):
    adjacency = _adjacency(edges)
    count, units = _per_backend(
        lambda m: max_clique_sequential(adjacency, m)
    )
    if adjacency:
        oracle = maximal_cliques(adjacency, WorkMeter())
        assert len(count) == max(len(c) for c in oracle)


@given(edge_lists)
def test_graphlets_invariant_across_backends(edges):
    adjacency = _adjacency(edges)
    _per_backend(lambda m: graphlet_count_sequential(3, adjacency, m))


@given(edge_lists)
def test_matching_invariant_across_backends(edges):
    adjacency = _adjacency(edges)
    labels = _labels(adjacency)
    pattern = make_pattern("a", [("b", 0), ("a", 0)], [("b", 1)])
    _per_backend(
        lambda m: graph_matching_sequential(pattern, labels, adjacency, m)
    )


@given(edge_lists)
def test_community_invariant_across_backends(edges):
    adjacency = _adjacency(edges)
    attributes = _attributes(adjacency)
    params = CommunityParams(tau=0.2, gamma=0.4, min_size=3, max_size=16)
    _per_backend(
        lambda m: community_detection_sequential(
            params, attributes, adjacency, m
        )
    )


@given(edge_lists)
def test_clustering_invariant_across_backends(edges):
    adjacency = _adjacency(edges)
    attributes = _attributes(adjacency)
    exemplars = sorted(adjacency)[:3]
    params = FocusParams(min_size=3, max_size=16, max_iterations=8)
    _per_backend(
        lambda m: focused_clustering_sequential(
            exemplars, params, attributes, adjacency, m
        )
    )
