"""Focused graph-clustering kernel (the paper's GC application).

Follows FocusCO [21] as §8.1 describes: the user supplies exemplar
vertices; attribute weights are inferred from what the exemplars agree
on; clusters are then extracted around seeds by an iterative add/remove
refinement that optimises *focused cohesion* — average weighted
internal degree, where edges are weighted by the attribute similarity
of their endpoints under the inferred weights.  The refinement loops
until convergence, which is what makes GC the paper's heaviest
workload.

Like the CD kernel, the core is a **resumable stepper**
(:class:`FocusedClusterGrower`) shared verbatim by the G-Miner task and
the sequential baseline.  Persistent state is only the members, their
data and the incident-weight index (the task-model contract); frontier
data arrives per step and is not retained.

Cohesion is maintained *incrementally*: the grower tracks the total
internal edge weight ``W`` and each member's weighted degree into the
cluster, so an addition trial costs one pass over the candidate's
neighbourhood and a removal trial is O(1) — the optimisation any
practical FocusCO implementation applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import kernels
from repro.graph.attributes import infer_attribute_weights, weighted_similarity_sorted
from repro.mining.cost import WorkMeter

NEED = "need"
DONE = "done"

VertexInfo = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass(frozen=True)
class FocusParams:
    """Parameters for focused clustering."""

    min_edge_weight: float = 0.3  # focused edges must be at least this similar
    min_cohesion_gain: float = 1e-6  # stop when refinement stops improving
    min_size: int = 4
    max_size: int = 64
    max_iterations: int = 25


class FocusedClusterGrower:
    """Resumable FocusCO-style cluster refinement from one seed."""

    def __init__(
        self,
        seed: int,
        seed_neighbors: Sequence[int],
        seed_attrs: Sequence[int],
        params: FocusParams,
        weights: Dict[int, float],
    ) -> None:
        self.seed = seed
        self.params = params
        self.weights = weights
        self.members: Set[int] = {seed}
        self.member_data: Dict[int, VertexInfo] = {
            seed: (tuple(seed_neighbors), tuple(seed_attrs))
        }
        # incremental cohesion state: total internal edge weight and
        # each member's weighted degree into the cluster
        self.total_weight = 0.0
        self.incident: Dict[int, float] = {seed: 0.0}
        self.iterations = 0
        self.finished = False
        self.result: Optional[Tuple[int, ...]] = None
        self._edge_weight_cache: Dict[Tuple[int, int], float] = {}
        # kernel-handle caches for attribute and neighbour tuples; like
        # the edge-weight cache these are derived views and do not
        # count toward the task-memory estimate
        self._attr_arrs: Dict[int, object] = {}
        self._nbr_arrs: Dict[int, object] = {}

    def _attr_arr(self, vid: int, attrs: Sequence[int]):
        arr = self._attr_arrs.get(vid)
        if arr is None:
            arr = kernels.unique_sorted(attrs)
            self._attr_arrs[vid] = arr
        return arr

    def _nbr_arr(self, vid: int, neighbors: Sequence[int]):
        arr = self._nbr_arrs.get(vid)
        if arr is None:
            arr = kernels.as_array(neighbors)
            self._nbr_arrs[vid] = arr
        return arr

    # -- helpers --------------------------------------------------------

    @property
    def cohesion(self) -> float:
        n = len(self.members)
        if n < 2:
            return 0.0
        return 2.0 * self.total_weight / n

    def _edge_weight(
        self, u: int, v: int, candidate_data: Mapping[int, VertexInfo],
        meter: WorkMeter,
    ) -> float:
        key = (u, v) if u < v else (v, u)
        cached = self._edge_weight_cache.get(key)
        if cached is not None:
            meter.charge()
            return cached
        au = (
            self.member_data[u][1] if u in self.member_data
            else candidate_data[u][1]
        )
        av = (
            self.member_data[v][1] if v in self.member_data
            else candidate_data[v][1]
        )
        # charge the raw list lengths — the cost of the similarity the
        # per-probe implementation modelled — not the deduplicated
        # handle lengths
        meter.charge(len(au) + len(av) + 1)
        weight = weighted_similarity_sorted(
            self._attr_arr(u, au), self._attr_arr(v, av), self.weights
        )
        self._edge_weight_cache[key] = weight
        return weight

    def _connection(
        self,
        v: int,
        neighbors: Sequence[int],
        candidate_data: Mapping[int, VertexInfo],
        meter: WorkMeter,
    ) -> Dict[int, float]:
        """Weights of v's edges into the current members."""
        out: Dict[int, float] = {}
        meter.charge(len(neighbors))
        for u in neighbors:
            if u in self.members:
                out[u] = self._edge_weight(u, v, candidate_data, meter)
        return out

    def _admit(self, v: int, connection: Dict[int, float], data: VertexInfo) -> None:
        self.members.add(v)
        self.member_data[v] = data
        self.incident[v] = sum(connection.values())
        for u, w in connection.items():
            self.incident[u] += w
        self.total_weight += self.incident[v]

    def _expel(self, v: int, candidate_data, meter: WorkMeter) -> None:
        neighbors, _ = self.member_data[v]
        meter.charge(len(neighbors))
        for u in neighbors:
            if u in self.members and u != v:
                self.incident[u] -= self._edge_weight(u, v, candidate_data, meter)
        self.total_weight -= self.incident[v]
        self.members.discard(v)
        self.member_data.pop(v, None)
        self.incident.pop(v, None)

    def frontier(self) -> Set[int]:
        out: Set[int] = set()
        for u in self.members:
            neighbors, _ = self.member_data[u]
            out.update(v for v in neighbors if v not in self.members)
        return out

    def needed(self) -> List[int]:
        return sorted(self.frontier())

    # -- the stepper ------------------------------------------------------

    def advance(self, candidate_data: Mapping[int, VertexInfo], meter: WorkMeter):
        """Run add/remove refinement until unseen frontier data is
        required or the cluster converges.  Same contract as
        :meth:`repro.mining.community.CommunityGrower.advance`."""
        if self.finished:
            return (DONE, self.result)
        while self.iterations < self.params.max_iterations:
            frontier = self.frontier()
            missing = sorted(v for v in frontier if v not in candidate_data)
            if missing:
                return (NEED, self.needed())
            self.iterations += 1
            improved = False
            # --- addition pass: evaluate the frontier once, then admit
            # every candidate (strongest edge first) whose admission
            # improves cohesion.  Batch admission keeps the number of
            # frontier evaluations — the dominant cost — proportional
            # to the cluster's *diameter* rather than its size.
            candidate_scores: Dict[int, float] = {}
            connections: Dict[int, Dict[int, float]] = {}
            for v in sorted(frontier):
                connection = self._connection(
                    v, candidate_data[v][0], candidate_data, meter
                )
                if not connection:
                    continue
                best_edge = max(connection.values())
                if best_edge >= self.params.min_edge_weight:
                    candidate_scores[v] = best_edge
                    connections[v] = connection
            admitted_this_round: List[int] = []
            for v in sorted(
                candidate_scores, key=lambda c: (-candidate_scores[c], c)
            ):
                if len(self.members) >= self.params.max_size:
                    break
                # true connection includes edges to members admitted
                # earlier in this same round
                connection = dict(connections[v])
                meter.charge(len(admitted_this_round))
                hits = kernels.contains(
                    self._nbr_arr(v, candidate_data[v][0]), admitted_this_round
                )
                for u, hit in zip(admitted_this_round, hits):
                    if hit:
                        connection[u] = self._edge_weight(
                            u, v, candidate_data, meter
                        )
                gain = sum(connection.values())
                n = len(self.members)
                trial_cohesion = 2.0 * (self.total_weight + gain) / (n + 1)
                if (
                    trial_cohesion > self.cohesion + self.params.min_cohesion_gain
                    or n == 1
                ):
                    self._admit(v, connection, candidate_data[v])
                    admitted_this_round.append(v)
                    improved = True
            # --- removal pass: O(1) per member via incident weights
            if len(self.members) > 2:
                n = len(self.members)
                best_removal: Optional[int] = None
                best_cohesion = self.cohesion
                # one unit per non-seed member trialled, charged in bulk
                meter.charge(len(self.members) - 1)
                for v in sorted(self.members):
                    if v == self.seed:
                        continue
                    trial = 2.0 * (self.total_weight - self.incident[v]) / (n - 1)
                    if trial > best_cohesion + self.params.min_cohesion_gain:
                        best_cohesion = trial
                        best_removal = v
                if best_removal is not None:
                    self._expel(best_removal, candidate_data, meter)
                    improved = True
            if not improved:
                break
        self.finished = True
        self.result = self._final()
        return (DONE, self.result)

    def _final(self) -> Optional[Tuple[int, ...]]:
        if len(self.members) < self.params.min_size:
            return None
        if self.seed != min(self.members):
            return None
        return tuple(sorted(self.members))

    def estimate_size(self) -> int:
        member_bytes = sum(
            16 + 8 * len(ns) + 8 * len(at) for ns, at in self.member_data.values()
        )
        return 64 + 16 * len(self.incident) + member_bytes


def _info_of(
    vid: int,
    attributes: Mapping[int, Sequence[int]],
    adjacency: Mapping[int, Iterable[int]],
) -> VertexInfo:
    return (tuple(adjacency.get(vid, ())), tuple(attributes.get(vid, ())))


def extract_focused_cluster(
    seed: int,
    params: FocusParams,
    attributes: Mapping[int, Sequence[int]],
    adjacency: Mapping[int, Iterable[int]],
    weights: Dict[int, float],
    meter: WorkMeter,
) -> Optional[Tuple[int, ...]]:
    """Full-access wrapper: refine the cluster at ``seed`` to convergence."""
    grower = FocusedClusterGrower(
        seed,
        tuple(adjacency.get(seed, ())),
        tuple(attributes.get(seed, ())),
        params,
        weights,
    )
    supplied: Dict[int, VertexInfo] = {}
    while True:
        status, payload = grower.advance(supplied, meter)
        if status == DONE:
            return payload
        for vid in payload:
            if vid not in supplied:
                supplied[vid] = _info_of(vid, attributes, adjacency)


def focused_clustering_sequential(
    exemplars: Sequence[int],
    params: FocusParams,
    attributes: Mapping[int, Sequence[int]],
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
) -> List[Tuple[int, ...]]:
    """Full FocusCO pipeline on one graph (single-thread kernel)."""
    weights = infer_attribute_weights([attributes.get(e, ()) for e in exemplars])
    out: List[Tuple[int, ...]] = []
    for seed in sorted(adjacency):
        cluster = extract_focused_cluster(
            seed, params, attributes, adjacency, weights, meter
        )
        if cluster is not None:
            out.append(cluster)
    return out
