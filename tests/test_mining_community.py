"""Unit tests for the community-detection kernel."""

import pytest

from repro.graph.datasets import load_dataset
from repro.graph.graph import Graph
from repro.mining.community import (
    DONE,
    NEED,
    CommunityGrower,
    CommunityParams,
    community_detection_sequential,
    grow_community,
)
from repro.mining.cost import WorkMeter
from tests.conftest import adjacency_of, attributes_of


@pytest.fixture
def two_cliques_graph():
    """Two 4-cliques joined by one edge; attrs coherent per clique."""
    edges = []
    for base in (0, 4):
        vs = range(base, base + 4)
        edges += [(i, j) for i in vs for j in vs if i < j]
    edges.append((3, 4))
    g = Graph.from_edges(edges)
    for v in range(4):
        g.set_attributes(v, [1, 2, 3])
    for v in range(4, 8):
        g.set_attributes(v, [7, 8, 9])
    return g


PARAMS = CommunityParams(tau=0.5, gamma=0.5, min_size=3, max_size=10)


class TestGrower:
    def test_finds_clique_community(self, two_cliques_graph):
        adj = adjacency_of(two_cliques_graph)
        attrs = attributes_of(two_cliques_graph)
        community = grow_community(0, PARAMS, attrs, adj, WorkMeter())
        assert community == (0, 1, 2, 3)

    def test_attribute_filter_blocks_other_clique(self, two_cliques_graph):
        """Vertex 4 is topologically adjacent to 3 but attribute-
        dissimilar, so 3's community never crosses the bridge."""
        adj = adjacency_of(two_cliques_graph)
        attrs = attributes_of(two_cliques_graph)
        community = grow_community(4, PARAMS, attrs, adj, WorkMeter())
        assert community == (4, 5, 6, 7)

    def test_min_vid_reporting(self, two_cliques_graph):
        adj = adjacency_of(two_cliques_graph)
        attrs = attributes_of(two_cliques_graph)
        # seed 1 grows the same community but is not its minimum
        assert grow_community(1, PARAMS, attrs, adj, WorkMeter()) is None

    def test_min_size_enforced(self, two_cliques_graph):
        adj = adjacency_of(two_cliques_graph)
        attrs = attributes_of(two_cliques_graph)
        params = CommunityParams(tau=0.5, gamma=0.5, min_size=6, max_size=10)
        assert grow_community(0, params, attrs, adj, WorkMeter()) is None

    def test_density_threshold_stops_growth(self):
        # a triangle with a pendant: admitting the pendant would drop
        # density below gamma
        g = Graph.from_edges([(0, 1), (0, 2), (1, 2), (2, 3)])
        for v in g.vertices():
            g.set_attributes(v, [1])
        params = CommunityParams(tau=0.1, gamma=0.9, min_size=3, max_size=10)
        community = grow_community(
            0, params, attributes_of(g), adjacency_of(g), WorkMeter()
        )
        assert community == (0, 1, 2)

    def test_max_size_cap(self):
        k8 = Graph.from_edges([(i, j) for i in range(8) for j in range(i + 1, 8)])
        for v in k8.vertices():
            k8.set_attributes(v, [1])
        params = CommunityParams(tau=0.1, gamma=0.5, min_size=2, max_size=5)
        community = grow_community(
            0, params, attributes_of(k8), adjacency_of(k8), WorkMeter()
        )
        assert len(community) == 5


class TestStepperProtocol:
    def test_need_then_done(self, two_cliques_graph):
        adj = adjacency_of(two_cliques_graph)
        attrs = attributes_of(two_cliques_graph)
        grower = CommunityGrower(0, adj[0], attrs[0], PARAMS)
        status, payload = grower.advance({}, WorkMeter())
        assert status == NEED
        assert payload == sorted(grower.needed())
        supplied = {v: (adj[v], attrs[v]) for v in payload}
        # keep answering needs until done
        for _ in range(20):
            status, payload = grower.advance(supplied, WorkMeter())
            if status == DONE:
                break
            for v in payload:
                supplied[v] = (adj[v], attrs[v])
        assert status == DONE
        assert payload == (0, 1, 2, 3)

    def test_advance_after_done_is_stable(self, two_cliques_graph):
        adj = adjacency_of(two_cliques_graph)
        attrs = attributes_of(two_cliques_graph)
        result = grow_community(0, PARAMS, attrs, adj, WorkMeter())
        grower = CommunityGrower(0, adj[0], attrs[0], PARAMS)
        supplied = {v: (adj[v], attrs[v]) for v in adj}
        status, payload = grower.advance(supplied, WorkMeter())
        assert (status, payload) == (DONE, result)
        assert grower.advance({}, WorkMeter()) == (DONE, result)

    def test_persistent_state_is_members_only(self, two_cliques_graph):
        """Task-model contract: the grower must not retain frontier
        data (that lives in the RCV cache)."""
        adj = adjacency_of(two_cliques_graph)
        attrs = attributes_of(two_cliques_graph)
        grower = CommunityGrower(0, adj[0], attrs[0], PARAMS)
        supplied = {v: (adj[v], attrs[v]) for v in adj}
        while grower.advance(supplied, WorkMeter())[0] != DONE:
            pass
        assert set(grower.member_data) == grower.community

    def test_size_estimate_positive(self, two_cliques_graph):
        adj = adjacency_of(two_cliques_graph)
        attrs = attributes_of(two_cliques_graph)
        grower = CommunityGrower(0, adj[0], attrs[0], PARAMS)
        assert grower.estimate_size() > 0


class TestSequential:
    def test_partition_recovery_on_planted_dataset(self):
        built = load_dataset("dblp-s")
        g = built.graph
        communities = community_detection_sequential(
            CommunityParams(), attributes_of(g), adjacency_of(g), WorkMeter()
        )
        assert communities  # finds structure
        # every reported community is attribute-coherent wrt its seed:
        # spot-check homogeneity against the planted ground truth
        hits = 0
        for community in communities:
            planted = {built.community_map[v] for v in community}
            if len(planted) == 1:
                hits += 1
        assert hits / len(communities) > 0.8

    def test_no_duplicates(self):
        built = load_dataset("dblp-s")
        g = built.graph
        communities = community_detection_sequential(
            CommunityParams(), attributes_of(g), adjacency_of(g), WorkMeter()
        )
        assert len(communities) == len(set(communities))
