"""The five paper applications (§8.1), written on the G-Miner API.

* :class:`TriangleCountingApp` (TC) — light, 1-hop, non-attributed.
* :class:`MaxCliqueApp` (MCF) — heavy, 1-hop, non-attributed, with the
  global-bound aggregator that yields superlinear pruning.
* :class:`GraphMatchingApp` (GM) — labelled tree-pattern matching
  (Figure 1's pattern by default).
* :class:`CommunityDetectionApp` (CD) — attribute-coherent dense
  subgraphs.
* :class:`GraphClusteringApp` (GC) — FocusCO-style focused clusters.
* :class:`GraphletCountingApp` (GL) — size-k graphlet histograms, a
  sixth application straight from the paper's §4.1 taxonomy.

Each exposes the same knobs the paper's experiments use and reuses the
pure kernels of :mod:`repro.mining`.
"""

from repro.apps.triangle_counting import TriangleCountingApp, TCTask
from repro.apps.maximal_clique import MaxCliqueApp, MCFTask
from repro.apps.graph_matching import GraphMatchingApp, GMTask
from repro.apps.community_detection import CommunityDetectionApp, CDTask
from repro.apps.graph_clustering import GraphClusteringApp, GCTask
from repro.apps.graphlet_counting import GraphletCountingApp, GLTask

__all__ = [
    "TriangleCountingApp",
    "TCTask",
    "MaxCliqueApp",
    "MCFTask",
    "GraphMatchingApp",
    "GMTask",
    "CommunityDetectionApp",
    "CDTask",
    "GraphClusteringApp",
    "GCTask",
    "GraphletCountingApp",
    "GLTask",
]
