"""Vertex-centric BSP systems: the Giraph-like and GraphX-like models.

Captures why the paper's Tables 1 and 3 look the way they do:

* **BSP barriers** — every superstep ends with a global barrier, so
  per-superstep time is the *maximum* over workers (stragglers), and
  CPU utilisation is the ratio of useful work to barrier-stretched
  makespan.
* **Message/state materialisation** — TC materialises per-vertex
  neighbour messages; MCF must construct *all* 1-hop neighbourhood
  subgraphs before computation (§3).  Memory is charged with a
  per-element object overhead typical of JVM dataflow systems, which
  is what makes these systems OOM on graphs whose raw size would fit.
* **Expressiveness** — GM/CD/GC cannot be written in the model at all
  (§2); those runs raise :class:`UnsupportedWorkload`.

Flavours differ in constants and in spill behaviour:

* ``giraph`` — in-memory messages: exceeding the node memory limit is
  an OOM (the paper's "x" entries).
* ``graphx`` — dataflow shuffles spill to disk instead of OOM-ing, but
  at a much higher constant overhead (the paper's "-" entries come
  from this: GraphX grinds past 24 hours rather than dying).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.common import GraphView, UnsupportedWorkload, make_result
from repro.core.job import JobResult, JobStatus
from repro.graph.graph import Graph
from repro.mining.cliques import SharedBound, max_clique_in_candidates
from repro.mining.cost import Budget, BudgetExceeded, WorkMeter
from repro.mining.triangles import triangles_for_seed
from repro.partitioning import HashPartitioner
from repro.sim.cluster import ClusterSpec


@dataclass(frozen=True)
class _Flavor:
    """Constants separating the two vertex-centric systems."""

    name: str
    overhead: float  # multiplier on useful work (framework tax)
    bytes_per_element: int  # materialised element size incl. object headers
    barrier_seconds: float  # fixed synchronisation cost per superstep
    spills_to_disk: bool  # GraphX sheds memory pressure to disk


FLAVORS = {
    "giraph": _Flavor(
        name="giraph",
        overhead=6.0,
        bytes_per_element=56,
        barrier_seconds=0.02,
        spills_to_disk=False,
    ),
    "graphx": _Flavor(
        name="graphx",
        overhead=14.0,
        bytes_per_element=64,
        barrier_seconds=0.05,
        spills_to_disk=True,
    ),
}


class VertexCentricSystem:
    """BSP vertex-centric execution of TC and MCF."""

    def __init__(self, flavor: str, spec: Optional[ClusterSpec] = None,
                 time_limit: Optional[float] = None) -> None:
        if flavor not in FLAVORS:
            raise ValueError(f"unknown flavor {flavor!r}; known: {sorted(FLAVORS)}")
        self.flavor = FLAVORS[flavor]
        self.spec = spec or ClusterSpec()
        self.time_limit = time_limit

    @property
    def name(self) -> str:
        return self.flavor.name

    # ------------------------------------------------------------------

    def run(self, app: str, graph: Graph) -> JobResult:
        if app not in ("tc", "mcf"):
            raise UnsupportedWorkload(self.name, app)
        view = GraphView.of(graph)
        owner = HashPartitioner().partition(graph, self.spec.num_nodes).owner_of
        budget = self._budget()
        try:
            if app == "tc":
                result = self._run_tc(view, owner, budget)
            else:
                result = self._run_mcf(view, owner, budget)
            if self.time_limit is not None and result.total_seconds > self.time_limit:
                return make_result(
                    status=JobStatus.TIMEOUT,
                    app_name=app,
                    total_seconds=self.time_limit,
                    cpu_utilization=result.cpu_utilization,
                    peak_memory_bytes=result.peak_memory_bytes,
                    network_bytes=result.network_bytes,
                )
            return result
        except BudgetExceeded:
            return make_result(
                status=JobStatus.TIMEOUT,
                app_name=app,
                total_seconds=self.time_limit or 0.0,
                cpu_utilization=self._timeout_utilization(),
                network_bytes=self._message_bytes_estimate(view),
            )
        except _SimOOM as oom:
            return make_result(
                status=JobStatus.OOM,
                app_name=app,
                total_seconds=oom.at_seconds,
                peak_memory_bytes=oom.peak_bytes,
                cpu_utilization=self._timeout_utilization(),
                network_bytes=self._message_bytes_estimate(view),
            )

    # ------------------------------------------------------------------

    def _budget(self) -> WorkMeter:
        if self.time_limit is None:
            return WorkMeter()
        total_speed = self.spec.core_speed * self.spec.total_cores
        # the framework overhead burns budget too, so the useful-work
        # allowance is the limit divided by the overhead factor
        return Budget(limit=self.time_limit * total_speed / self.flavor.overhead)

    def _timeout_utilization(self) -> float:
        # barriers + stragglers leave most cores idle most of the time
        return 0.15 / self.flavor.overhead * 6.0

    def _message_bytes_estimate(self, view: GraphView) -> int:
        return sum(8 * len(ns) for ns in view.adjacency.values())

    def _check_memory(self, elements_per_worker: int, at_seconds: float) -> int:
        """Charge materialised elements against the node memory limit."""
        nbytes = elements_per_worker * self.flavor.bytes_per_element
        if not self.flavor.spills_to_disk and nbytes > self.spec.memory_per_node:
            raise _SimOOM(at_seconds=at_seconds, peak_bytes=nbytes * self.spec.num_nodes)
        return nbytes

    def _superstep_time(
        self, per_worker_work: List[float], shuffle_bytes: int = 0
    ) -> float:
        """Barrier semantics: the slowest worker sets the pace, then the
        message shuffle serialises over the cluster's NICs."""
        per_core = [
            w * self.flavor.overhead / (self.spec.core_speed * self.spec.cores_per_node)
            for w in per_worker_work
        ]
        shuffle = shuffle_bytes / (self.spec.net_bandwidth * self.spec.num_nodes)
        return max(per_core, default=0.0) + shuffle + self.flavor.barrier_seconds

    # ------------------------------------------------------------------

    def _run_tc(self, view: GraphView, owner, budget: WorkMeter) -> JobResult:
        """BSP TC: superstep 1 ships Γ⁺(v) to higher neighbours,
        superstep 2 intersects received lists with local adjacency."""
        workers = self.spec.num_nodes
        # superstep 1: message generation (work ∝ messages sent)
        send_work = [0.0] * workers
        recv_elements = [0] * workers
        message_bytes = 0
        for v, neighbors in view.adjacency.items():
            higher = [u for u in neighbors if u > v]
            cost = len(higher) * len(higher)
            send_work[owner(v)] += len(higher)
            budget.charge(len(higher) + 1)
            for u in higher:
                recv_elements[owner(u)] += len(higher)
                message_bytes += 8 * len(higher)
        t1 = self._superstep_time(send_work, shuffle_bytes=message_bytes)
        peak = 0
        for w in range(workers):
            peak += self._check_memory(recv_elements[w], at_seconds=t1)
        # superstep 2: intersection (the real kernel, per receiving vertex)
        compute_work = [0.0] * workers
        total = 0
        for v in sorted(view.adjacency):
            meter = WorkMeter()
            higher_adj = {
                u: view.adjacency[u] for u in view.adjacency[v] if u > v
            }
            total += triangles_for_seed(v, view.adjacency[v], higher_adj, meter)
            budget.charge(meter.units)
            compute_work[owner(v)] += meter.units
        t2 = self._superstep_time(compute_work)
        elapsed = t1 + t2
        useful = sum(send_work) + sum(compute_work)
        utilization = min(
            1.0,
            useful / (self.spec.core_speed * self.spec.total_cores * elapsed),
        )
        return make_result(
            status=JobStatus.OK,
            app_name="tc",
            value=total,
            total_seconds=elapsed,
            cpu_utilization=utilization,
            peak_memory_bytes=peak + self._graph_bytes(view),
            network_bytes=message_bytes,
            stats={"supersteps": 2, "work_units": useful},
        )

    def _run_mcf(self, view: GraphView, owner, budget: WorkMeter) -> JobResult:
        """BSP MCF: materialise every 1-hop neighbourhood subgraph, then
        search per-vertex with only superstep-granularity bound sharing
        (i.e. none within the single compute superstep)."""
        workers = self.spec.num_nodes
        # phase 1: neighbourhood construction — Σ_u deg(u)² elements
        build_work = [0.0] * workers
        stored_elements = [0] * workers
        message_bytes = 0
        for v, neighbors in view.adjacency.items():
            elements = sum(len(view.adjacency[u]) for u in neighbors)
            budget.charge(len(neighbors) + 1)
            build_work[owner(v)] += elements
            stored_elements[owner(v)] += elements
            message_bytes += 8 * elements
        t1 = self._superstep_time(build_work, shuffle_bytes=message_bytes)
        peak = 0
        for w in range(workers):
            peak += self._check_memory(stored_elements[w], at_seconds=t1)
        # phase 2: per-vertex clique search; bounds shared only within a
        # worker (no mid-superstep global aggregation)
        compute_work = [0.0] * workers
        worker_bounds = [SharedBound() for _ in range(workers)]
        best: Tuple[int, ...] = ()
        for v in sorted(view.adjacency, key=lambda x: (-len(view.adjacency[x]), x)):
            w = owner(v)
            bound = worker_bounds[w]
            higher = [u for u in view.adjacency[v] if u > v]
            meter = WorkMeter()
            if 1 + len(higher) > bound.value:
                higher_set = set(higher)
                local = {u: set(view.adjacency[u]) & higher_set for u in higher}
                local[v] = higher_set
                max_clique_in_candidates([v], higher, local, bound, meter)
            budget.charge(meter.units + 1)
            compute_work[w] += meter.units
        for bound in worker_bounds:
            if len(bound.best_clique) > len(best):
                best = bound.best_clique
        t2 = self._superstep_time(compute_work)
        elapsed = t1 + t2
        useful = sum(build_work) + sum(compute_work)
        utilization = min(
            1.0,
            useful / (self.spec.core_speed * self.spec.total_cores * elapsed),
        )
        disk_bytes = 0
        if self.flavor.spills_to_disk:
            disk_bytes = sum(stored_elements) * self.flavor.bytes_per_element
        return make_result(
            status=JobStatus.OK,
            app_name="mcf",
            value=best,
            total_seconds=elapsed,
            cpu_utilization=utilization,
            peak_memory_bytes=peak + self._graph_bytes(view),
            network_bytes=message_bytes,
            disk_bytes=disk_bytes,
            stats={"supersteps": 2, "work_units": useful},
        )

    def _graph_bytes(self, view: GraphView) -> int:
        return sum(
            self.flavor.bytes_per_element * (1 + len(ns))
            for ns in view.adjacency.values()
        )


class _SimOOM(Exception):
    def __init__(self, at_seconds: float, peak_bytes: int):
        self.at_seconds = at_seconds
        self.peak_bytes = peak_bytes
        super().__init__("baseline out of memory")
