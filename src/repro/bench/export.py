"""Exporting job results and experiment reports as JSON.

Serialisation now lives on the result types themselves —
:meth:`repro.core.job.JobResult.to_dict` and
:meth:`repro.bench.report.ExperimentReport.to_dict` — so results
round-trip without importing this module.  What remains here is
:func:`save_json`/:func:`save_report`, the pieces genuinely about
files; the deprecated :func:`job_result_to_dict` path has completed
its cycle and now raises ``TypeError`` naming the replacement.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

from repro.bench.report import ExperimentReport
from repro.core.job import JobResult, jsonable

#: Deprecated alias of :func:`repro.core.job.jsonable`.
_jsonable = jsonable


def job_result_to_dict(result: JobResult, bins: int = 20) -> Dict[str, Any]:
    """Removed: use :meth:`JobResult.to_dict` instead."""
    raise TypeError(
        "job_result_to_dict() has been removed; call "
        "JobResult.to_dict(bins=...) on the result instead"
    )


def experiment_report_to_dict(report: ExperimentReport) -> Dict[str, Any]:
    """Flatten an experiment report (delegates to
    :meth:`ExperimentReport.to_dict`)."""
    return report.to_dict()


def save_json(record: Dict[str, Any], path: str) -> str:
    """Write a record as pretty JSON, creating parent directories."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def save_report(report: ExperimentReport, directory: str = "results") -> Dict[str, str]:
    """Archive a report as both ``<id>.txt`` and ``<id>.json``.

    The text file is the human-readable rendering EXPERIMENTS.md is
    assembled from; the JSON sibling carries the same experiment as
    structured data (:meth:`ExperimentReport.to_dict`).  Neither
    includes the host-accounting footer, so artifacts stay
    byte-identical across worker counts and cache states.  Returns the
    paths written, keyed by format.
    """
    txt_path = report.save(directory)
    json_path = os.path.join(directory, f"{report.experiment_id}.json")
    save_json(report.to_dict(), json_path)
    return {"txt": txt_path, "json": json_path}
