"""Unit tests for work metering and budgets."""

import pytest

from repro.mining.cost import Budget, BudgetExceeded, WorkMeter


class TestWorkMeter:
    def test_accumulates(self):
        m = WorkMeter()
        m.charge()
        m.charge(4.5)
        assert m.units == pytest.approx(5.5)

    def test_take_resets(self):
        m = WorkMeter()
        m.charge(10)
        assert m.take() == 10
        assert m.units == 0


class TestBudget:
    def test_raises_past_limit(self):
        b = Budget(limit=10, check_interval=1)
        b.charge(5)
        with pytest.raises(BudgetExceeded):
            b.charge(6)

    def test_check_interval_amortises(self):
        b = Budget(limit=10, check_interval=100)
        # single large overshoot not yet checked...
        b.charge(50)
        with pytest.raises(BudgetExceeded):
            b.check()

    def test_exception_carries_amounts(self):
        b = Budget(limit=10, check_interval=1)
        try:
            b.charge(20)
        except BudgetExceeded as e:
            assert e.spent == 20
            assert e.limit == 10
        else:
            pytest.fail("should have raised")

    def test_remaining(self):
        b = Budget(limit=10, check_interval=1)
        b.charge(3)
        assert b.remaining == pytest.approx(7)

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            Budget(limit=0)

    def test_within_limit_never_raises(self):
        b = Budget(limit=1000, check_interval=1)
        for _ in range(999):
            b.charge()
        b.check()

    @pytest.mark.parametrize("batch", [1, 7, 64, 1000, 10_000])
    def test_bulk_overshoot_bounded(self, batch):
        # The countdown decrements by the charged amount, so a bulk
        # charge reaching the check interval is checked immediately:
        # whenever charge() returns normally, the overshoot past the
        # limit is below check_interval regardless of batch size.
        b = Budget(limit=500, check_interval=64)
        with pytest.raises(BudgetExceeded):
            while True:
                b.charge(batch)
                assert b.units < 500 + 64

    def test_bulk_charge_checked_like_unit_charges(self):
        # one charge(n) trips the budget exactly as n charge(1) calls do
        bulk = Budget(limit=100, check_interval=10)
        with pytest.raises(BudgetExceeded):
            bulk.charge(150)
        unit = Budget(limit=100, check_interval=10)
        with pytest.raises(BudgetExceeded):
            for _ in range(150):
                unit.charge()
