"""Ablation C — checkpointing overhead and worker-failure recovery
(paper §7).

Expected shape: checkpointing costs little; a killed worker recovers
from its snapshot and the job still produces the exact result."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_ablation_fault_tolerance(benchmark):
    report = run_experiment(benchmark, experiments.ablation_fault_tolerance)
    base = report.data["baseline"]
    ckpt = report.data["ckpt"]
    failure = report.data["failure"]
    assert ckpt.value == base.value
    assert failure.ok
    assert len(failure.value) == len(base.value)
    assert ckpt.total_seconds < base.total_seconds * 1.5
