"""Focused tests on worker/master mechanics through a real job,
inspecting internal state the coarse integration tests don't reach."""

import pytest

from repro.apps import MaxCliqueApp, TriangleCountingApp
from repro.core import JobStatus
from repro.core.task import TaskStatus
from repro.graph.algorithms import triangle_count_exact
from repro.sim.cluster import ClusterSpec
from tests.conftest import run_job


def run(app, graph, spec, **overrides):
    return run_job(app, graph, spec, expect_ok=False, **overrides)


class TestPipelineMechanics:
    def test_all_workers_participate(self, small_social_graph, small_spec):
        job, _ = run(TriangleCountingApp(), small_social_graph, small_spec)
        assert all(w.stats.tasks_seeded > 0 for w in job.workers)
        assert all(w.stats.rounds_executed > 0 for w in job.workers)

    def test_pulls_happen_and_are_served(self, small_social_graph, small_spec):
        job, result = run(TriangleCountingApp(), small_social_graph, small_spec)
        assert result.stats["vertices_pulled"] > 0
        assert sum(w.stats.pulls_sent for w in job.workers) > 0

    def test_pipeline_drained_at_finish(self, small_social_graph, small_spec):
        job, _ = run(TriangleCountingApp(), small_social_graph, small_spec)
        for w in job.workers:
            assert len(w.store) == 0
            assert not w.cmq
            assert not w.task_buffer
            assert not w.inflight
            assert w.node.cores.busy_cores == 0
            assert w.idle

    def test_cache_refs_all_released(self, small_social_graph, small_spec):
        job, _ = run(TriangleCountingApp(), small_social_graph, small_spec)
        for w in job.workers:
            for cache in w.caches:
                for vid in list(cache._entries):
                    assert cache.refs(vid) == 0

    def test_tasks_counted_consistently(self, small_social_graph, small_spec):
        job, result = run(TriangleCountingApp(), small_social_graph, small_spec)
        seeded = sum(w.stats.tasks_seeded for w in job.workers)
        completed = sum(w.stats.tasks_completed for w in job.workers)
        assert seeded == completed == result.stats["tasks_created"]

    def test_results_deduplicated_by_task(self, small_social_graph, small_spec):
        job, result = run(TriangleCountingApp(), small_social_graph, small_spec)
        ids = [tid for w in job.workers for tid in w.results]
        assert len(ids) == len(set(ids))


class TestStealingMechanics:
    def test_steals_move_load(self, small_social_graph, small_spec):
        # partition by BDG to create skew, then check migration balance
        job, result = run(
            TriangleCountingApp(), small_social_graph, small_spec,
            partitioner="bdg",
        )
        out = sum(w.stats.tasks_migrated_out for w in job.workers)
        into = sum(w.stats.tasks_migrated_in for w in job.workers)
        assert out == into  # nothing lost in transit

    def test_no_stealing_when_disabled(self, small_social_graph, small_spec):
        job, _ = run(
            TriangleCountingApp(), small_social_graph, small_spec,
            enable_stealing=False,
        )
        assert sum(w.stats.tasks_migrated_in for w in job.workers) == 0
        assert job.master.steals_brokered == 0

    def test_master_progress_table_populated(self, small_social_graph, small_spec):
        job, _ = run(TriangleCountingApp(), small_social_graph, small_spec)
        assert set(job.master.progress_table) == set(range(small_spec.num_nodes))


class TestAggregatorFlow:
    def test_bound_broadcast_reaches_workers(self, small_social_graph, small_spec):
        # sync aggressively so broadcasts land within the short job
        job, result = run(
            MaxCliqueApp(), small_social_graph, small_spec,
            agg_interval=0.001, progress_interval=0.001,
        )
        best = len(result.value)
        # at least one worker besides the finder learned the bound via
        # broadcast (global_value, not just local_partial)
        learned = [
            w for w in job.workers if w.agg.global_value == best
        ]
        assert learned

    def test_no_aggregator_for_tc(self, small_social_graph, small_spec):
        job, _ = run(TriangleCountingApp(), small_social_graph, small_spec)
        assert all(w.agg is None for w in job.workers)


class TestTimeLimit:
    def test_timeout_status(self, small_social_graph, small_spec):
        _, result = run(
            TriangleCountingApp(), small_social_graph, small_spec,
            time_limit=1e-6,
        )
        assert result.status is JobStatus.TIMEOUT

    def test_oom_status_with_tiny_memory(self, small_social_graph):
        spec = ClusterSpec(num_nodes=2, cores_per_node=2, memory_per_node=10_000)
        _, result = run(TriangleCountingApp(), small_social_graph, spec)
        assert result.status is JobStatus.OOM
