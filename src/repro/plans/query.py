"""The pattern-query vocabulary: what :func:`repro.mine` compiles.

A :class:`PatternQuery` wraps a :class:`~repro.mining.patterns.TreePattern`
skeleton (which fixes connectivity: every non-root node has a tree edge
to its parent) and adds the small constraint vocabulary the compiler
understands:

* **extra edges** — undirected edges between any two pattern nodes,
  turning the tree into an arbitrary connected motif (a triangle is a
  2-level star plus one extra edge);
* **order constraints** — ``image(a) < image(b)`` over data-vertex ids,
  the symmetric-pair-breaking primitive.  Usually derived automatically
  (``symmetry="auto"``), but explicit constraints compose with derived
  ones;
* **attribute predicates** — ``(node, "has-attr", value)`` restricts a
  node's image to vertices whose attribute list contains ``value``;
* **wildcard labels** — the label ``"*"`` matches any data vertex,
  labelled or not, so structural motifs run on unlabelled graphs.

Pattern nodes are addressed by **global index**: 0 is the root, then
levels in order, nodes in declaration order within a level.

:func:`motif` resolves a small registry of named motifs ("triangle",
"tailed-triangle", ...) to ready-made queries — these are what string
patterns passed to :func:`repro.mine` mean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mining.patterns import (
    PatternValidationError,
    TreePattern,
    make_pattern,
)

#: The label that matches any data vertex (labelled or not).
WILDCARD = "*"

#: Attribute-predicate operations the executor understands.
PREDICATE_OPS = ("has-attr",)

#: Symmetry-handling modes.  ``auto`` derives order constraints from the
#: pattern's automorphism group (each subgraph counted once per
#: automorphism orbit); ``none`` counts every embedding (the legacy
#: tree-matcher semantics, where sibling permutations are distinct).
SYMMETRY_MODES = ("auto", "none")


def flatten_pattern(pattern: TreePattern) -> Tuple[Tuple[str, ...], Tuple[Tuple[int, int], ...]]:
    """Global node labels and tree edges of a :class:`TreePattern`.

    Returns ``(labels, edges)`` where ``labels[i]`` is the label of
    global node ``i`` (0 = root, then level by level) and ``edges`` are
    the parent edges ``(parent_global, child_global)``.
    """
    labels: List[str] = [pattern.root_label]
    edges: List[Tuple[int, int]] = []
    prev_level_start = 0
    for level in pattern.levels:
        level_start = len(labels)
        for node in level:
            edges.append((prev_level_start + node.parent, len(labels)))
            labels.append(node.label)
        prev_level_start = level_start
    return tuple(labels), tuple(edges)


def _canonical_edge(a: int, b: int) -> Tuple[int, int]:
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class PatternQuery:
    """A motif query: tree skeleton + constraint vocabulary.

    ``edges`` are extra undirected edges as ``(a, b)`` global-index
    pairs; ``orders`` are explicit ``image(a) < image(b)`` constraints;
    ``predicates`` are ``(node, op, value)`` attribute filters;
    ``symmetry`` selects automatic symmetry breaking (``"auto"``) or
    raw embedding counting (``"none"``).  ``name`` is cosmetic — it
    tags the compiled plan and the job's app name.
    """

    pattern: TreePattern
    edges: Tuple[Tuple[int, int], ...] = ()
    orders: Tuple[Tuple[int, int], ...] = ()
    predicates: Tuple[Tuple[int, str, int], ...] = ()
    symmetry: str = "auto"
    name: str = "query"

    def __post_init__(self) -> None:
        # normalise list inputs so queries hash/compare structurally
        object.__setattr__(self, "edges", tuple(tuple(e) for e in self.edges))
        object.__setattr__(self, "orders", tuple(tuple(o) for o in self.orders))
        object.__setattr__(
            self, "predicates", tuple(tuple(p) for p in self.predicates)
        )

    @property
    def num_nodes(self) -> int:
        return self.pattern.num_nodes

    @classmethod
    def from_tree(cls, pattern: TreePattern, name: str = "tree") -> "PatternQuery":
        """Wrap a plain tree pattern with the legacy matcher semantics.

        ``symmetry="none"`` because the tree matcher counts sibling
        permutations as distinct embeddings — a compiled tree query
        must agree with :class:`~repro.apps.GraphMatchingApp` exactly.
        """
        return cls(pattern=pattern, symmetry="none", name=name)

    def node_labels(self) -> Tuple[str, ...]:
        return flatten_pattern(self.pattern)[0]

    def all_edges(self) -> Tuple[Tuple[int, int], ...]:
        """Tree edges plus extra edges, canonicalised ``(lo, hi)``."""
        _, tree = flatten_pattern(self.pattern)
        return tuple(
            sorted(
                {_canonical_edge(*e) for e in tree}
                | {_canonical_edge(*e) for e in self.edges}
            )
        )

    def validate(self) -> None:
        """Structural validation; raises
        :class:`~repro.mining.patterns.PatternValidationError` with all
        problems found (the tree skeleton is validated first)."""
        self.pattern.validate()
        k = self.num_nodes
        errors: List[Tuple[str, str]] = []
        _, tree_edges = flatten_pattern(self.pattern)
        tree_set = {_canonical_edge(*e) for e in tree_edges}
        seen_extra = set()
        for edge in self.edges:
            a, b = edge
            if not (0 <= a < k and 0 <= b < k):
                errors.append(
                    ("bad-edge", f"edge {edge!r} references a node outside 0..{k - 1}")
                )
                continue
            if a == b:
                errors.append(("bad-edge", f"edge {edge!r} is a self-loop"))
                continue
            canon = _canonical_edge(a, b)
            if canon in tree_set:
                errors.append(
                    ("duplicate-edge", f"edge {edge!r} duplicates a tree edge")
                )
            elif canon in seen_extra:
                errors.append(
                    ("duplicate-edge", f"edge {edge!r} appears more than once")
                )
            seen_extra.add(canon)
        seen_orders = set()
        for order in self.orders:
            a, b = order
            if not (0 <= a < k and 0 <= b < k) or a == b:
                errors.append(
                    ("bad-order", f"order constraint {order!r} is not between "
                                  f"two distinct nodes in 0..{k - 1}")
                )
                continue
            if (b, a) in seen_orders:
                errors.append(
                    ("contradictory-order",
                     f"order constraints {(b, a)!r} and {order!r} contradict")
                )
            elif order in seen_orders:
                errors.append(
                    ("duplicate-order", f"order constraint {order!r} repeats")
                )
            seen_orders.add(order)
        for pred in self.predicates:
            node, op, _value = pred
            if not (isinstance(node, int) and 0 <= node < k):
                errors.append(
                    ("bad-predicate",
                     f"predicate {pred!r} references a node outside 0..{k - 1}")
                )
            if op not in PREDICATE_OPS:
                errors.append(
                    ("bad-predicate",
                     f"predicate {pred!r} op must be one of {PREDICATE_OPS}")
                )
        if self.symmetry not in SYMMETRY_MODES:
            errors.append(
                ("bad-symmetry",
                 f"symmetry must be one of {SYMMETRY_MODES}, "
                 f"got {self.symmetry!r}")
            )
        if errors:
            raise PatternValidationError(errors)


# ----------------------------------------------------------------------
# Named motifs: what string patterns passed to repro.mine() resolve to.
# ----------------------------------------------------------------------


def _star(k: int) -> TreePattern:
    """A wildcard root with ``k - 1`` wildcard children."""
    return make_pattern(WILDCARD, [(WILDCARD, 0)] * (k - 1))


def _triangle() -> PatternQuery:
    return PatternQuery(_star(3), edges=((1, 2),), name="triangle")


def _tailed_triangle() -> PatternQuery:
    # nodes: 0 root, 1 and 2 its children, 3 the tail hanging off 2;
    # extra edge (1, 2) closes the triangle {0, 1, 2}.
    pattern = make_pattern(
        WILDCARD, [(WILDCARD, 0), (WILDCARD, 0)], [(WILDCARD, 1)]
    )
    return PatternQuery(pattern, edges=((1, 2),), name="tailed-triangle")


def _four_clique() -> PatternQuery:
    return PatternQuery(
        _star(4), edges=((1, 2), (1, 3), (2, 3)), name="4-clique"
    )


def _four_cycle() -> PatternQuery:
    # nodes: 0 root, children 1 and 2, node 3 under 1; edge (2, 3)
    # closes the cycle 0-1-3-2-0.
    pattern = make_pattern(
        WILDCARD, [(WILDCARD, 0), (WILDCARD, 0)], [(WILDCARD, 0)]
    )
    return PatternQuery(pattern, edges=((2, 3),), name="4-cycle")


def _diamond() -> PatternQuery:
    # K4 minus one edge: root adjacent to all, plus (1, 2) and (2, 3) —
    # nodes 0 and 2 are the degree-3 pair.
    return PatternQuery(_star(4), edges=((1, 2), (2, 3)), name="diamond")


def _three_path() -> PatternQuery:
    # path on 3 vertices, centre at the root
    return PatternQuery(_star(3), name="3-path")


def _three_star() -> PatternQuery:
    return PatternQuery(_star(4), name="3-star")


def _paper() -> PatternQuery:
    from repro.mining.patterns import PAPER_PATTERN

    return PatternQuery.from_tree(PAPER_PATTERN, name="paper-figure1")


#: Named motif registry: name -> zero-arg factory.
MOTIFS = {
    "triangle": _triangle,
    "tailed-triangle": _tailed_triangle,
    "4-clique": _four_clique,
    "4-cycle": _four_cycle,
    "diamond": _diamond,
    "3-path": _three_path,
    "3-star": _three_star,
    "paper-figure1": _paper,
}


def motif(name: str) -> PatternQuery:
    """Resolve a named motif to its :class:`PatternQuery`.

    Raises ``ValueError`` listing the known names for anything else —
    the error :func:`repro.mine` surfaces for unknown string patterns.
    """
    try:
        factory = MOTIFS[name]
    except KeyError:
        known = ", ".join(sorted(MOTIFS))
        raise ValueError(
            f"unknown pattern {name!r}; known named motifs: {known}"
        ) from None
    return factory()
