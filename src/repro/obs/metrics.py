"""Labelled metrics: counters, gauges and fixed-bucket histograms.

The :class:`MetricsRegistry` is the one sink every instrumented
component writes to.  Series are identified by a dotted lowercase name
plus a sorted label set (``gminer.rounds{worker="3"}``), mirroring the
Prometheus data model so the text exposition in
:mod:`repro.obs.exporters` is a direct rendering.

Determinism is a hard requirement (same seed → byte-identical
snapshot), so the registry stores no wall-clock state and
:meth:`MetricsRegistry.snapshot` emits series in sorted key order.
Snapshots are plain dicts of primitives: picklable across the parallel
runner's process pool and merge-able with
:meth:`MetricsRegistry.merge_snapshots`.

Instrument handles (:class:`Counter`, :class:`Gauge`,
:class:`Histogram`) are meant to be created once, at attach time, and
cached by the instrumented component — the hot path then pays one
method call per event.  The module-level ``_series_created`` counter
backs the zero-overhead test: a run with observability disabled must
not create a single series.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Tuple

_NAME_RE = re.compile(r"[a-z][a-z0-9_.]*\Z")

#: Default histogram buckets, tuned for simulated-seconds latencies
#: (pull round trips are ~1e-3 s at the scaled network speed).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0,
)

#: Series created since process start — the zero-overhead probe.
_series_created = 0


def series_created() -> int:
    """Process-wide count of metric series ever created (test hook)."""
    return _series_created


def series_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Canonical series key: ``name`` or ``name{k="v",...}`` (sorted)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        global _series_created
        _series_created += 1
        self.key = key
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease (inc {amount})")
        self.value += amount


class Gauge:
    """Last-set value."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        global _series_created
        _series_created += 1
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the tail.  ``counts[i]`` is the number of observations ``<=
    buckets[i]`` exclusive of earlier buckets (per-bucket counts, made
    cumulative at exposition time).
    """

    __slots__ = ("key", "buckets", "counts", "sum", "count")

    def __init__(self, key: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        global _series_created
        _series_created += 1
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"histogram {key} buckets must be strictly increasing")
        self.key = key
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1


class MetricsRegistry:
    """Get-or-create registry of labelled series.

    ``counter``/``gauge``/``histogram`` return the same instrument for
    the same ``(name, labels)``, so call sites can either cache the
    handle (hot paths) or re-look it up (setup code).
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- series creation ------------------------------------------------

    @staticmethod
    def _key(name: str, labels: Dict[str, Any]) -> str:
        if not _NAME_RE.match(name):
            raise ValueError(
                f"metric name {name!r} must be dotted lowercase "
                "([a-z][a-z0-9_.]*), e.g. 'gminer.rounds'"
            )
        return series_key(
            name, tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        )

    def counter(self, name: str, **labels: Any) -> Counter:
        key = self._key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(key)
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = self._key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(key)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = self._key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(key, buckets)
        elif instrument.buckets != tuple(float(b) for b in buckets):
            raise ValueError(
                f"histogram {key} re-registered with different buckets"
            )
        return instrument

    # -- snapshot / merge ----------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic plain-dict snapshot (sorted series keys)."""
        return {
            "counters": {
                k: c.value for k, c in sorted(self._counters.items())
            },
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for k, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
        """Merge snapshot dicts: counters and histograms sum, gauges
        keep the maximum (documented convention — gauges here are
        run-level summaries like makespan, where max is the
        conservative cross-run aggregate)."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for snap in snapshots:
            for key, value in snap.get("counters", {}).items():
                counters[key] = counters.get(key, 0.0) + value
            for key, value in snap.get("gauges", {}).items():
                gauges[key] = max(gauges.get(key, value), value)
            for key, hist in snap.get("histograms", {}).items():
                merged = histograms.get(key)
                if merged is None:
                    histograms[key] = {
                        "buckets": list(hist["buckets"]),
                        "counts": list(hist["counts"]),
                        "sum": hist["sum"],
                        "count": hist["count"],
                    }
                    continue
                if merged["buckets"] != list(hist["buckets"]):
                    raise ValueError(
                        f"cannot merge histogram {key}: bucket mismatch"
                    )
                merged["counts"] = [
                    a + b for a, b in zip(merged["counts"], hist["counts"])
                ]
                merged["sum"] += hist["sum"]
                merged["count"] += hist["count"]
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": dict(sorted(histograms.items())),
        }
