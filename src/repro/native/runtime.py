"""In-process task execution for the native engine.

Runs G-Miner tasks *for real* against full read-only graph access: no
pulls, no RCV cache, no simulated cluster.  Work accounting reproduces
the simulator's exactly — the task generator charges
``app.seed_cost(vertex)`` for every vertex it scans (whether or not
the vertex seeds a task) and every ``run_round`` call contributes the
units the task charged — so a native run's total work equals the
simulated run's whenever the schedule cannot change per-task charges
(DESIGN.md's sim-vs-native equivalence contract).

Tasks execute *pure*: ``env.aggregated`` stays ``None`` (so MCF's
branch-and-bound bound starts at 0 and never tightens across tasks)
and aggregator offers are collected in seed order and merged by the
parent.  Per-chunk outcomes are therefore a function of the chunk's
vertices alone — independent of worker count, steal schedule and
completion order, which is what makes the engine's bit-identity
guarantees hold by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.graph import Graph, VertexData


@dataclass
class ChunkOutcome:
    """Everything one seed chunk produced, in deterministic seed order.

    ``results`` keeps only non-``None`` task results (the same rule the
    simulated worker applies when recording a dead task), ordered by
    seed vertex then spawn order — a total order that never depends on
    which pool worker executed the chunk or when.
    """

    chunk_id: int
    work_units: float = 0.0
    rounds: int = 0
    tasks_created: int = 0
    results: List[Any] = field(default_factory=list)
    offers: List[Any] = field(default_factory=list)


def make_data_source(graph: Graph) -> Callable[[int], VertexData]:
    """Memoised ``graph.vertex_data`` for one worker process.

    ``Graph.vertex_data`` packages a fresh :class:`VertexData` per
    call, which would defeat the per-backend ``neighbors_array()``
    conversion cache every single round; sharing one instance per
    vertex across every task a worker runs amortises those conversions
    exactly like the simulator's RCV cache does.  Read-only data, so
    sharing cannot change any result or charge.
    """
    memo: Dict[int, VertexData] = {}
    vertex_data = graph.vertex_data

    def data_of(vid: int) -> VertexData:
        data = memo.get(vid)
        if data is None:
            data = vertex_data(vid)
            memo[vid] = data
        return data

    return data_of


def run_task(
    task: Task, data_of: Callable[[int], VertexData], env: TaskEnv
) -> Tuple[List[Any], float, int, int]:
    """Drive one task (and anything it spawns) to completion.

    Returns ``(results, work_units, rounds, spawned)``.  Each round
    gathers the task's candidate vertices straight from the graph —
    the native equivalent of the simulator's pull/cache path, which by
    construction always delivers exactly the requested vertices — and
    calls the same ``run_round`` the simulated executor calls.
    """
    results: List[Any] = []
    work = 0.0
    rounds = 0
    spawned = 0
    pending = [task]
    while pending:
        current = pending.pop(0)
        while not current.finished:
            cand_objs = {vid: data_of(vid) for vid in current.candidates}
            work += current.run_round(cand_objs, env)
            rounds += 1
            children = current.spawn()
            if children:
                spawned += len(children)
                pending.extend(children)
        if current.result is not None:
            results.append(current.result)
    return results, work, rounds, spawned


def execute_chunk(
    app: GMinerApp,
    graph: Graph,
    chunk_id: int,
    vids: Sequence[int],
    data_of: Optional[Callable[[int], VertexData]] = None,
) -> ChunkOutcome:
    """Seed and run every task of one chunk of seed vertices.

    Mirrors the simulated task generator: every vertex is scanned (and
    its ``seed_cost`` charged) even when ``make_task`` declines it.
    ``data_of`` is the (usually per-worker memoised) vertex source;
    ``None`` falls back to uncached ``graph.vertex_data``.
    """
    outcome = ChunkOutcome(chunk_id=chunk_id)
    env = TaskEnv(worker_id=0, aggregated=None, push=outcome.offers.append)
    if data_of is None:
        data_of = graph.vertex_data
    for vid in vids:
        vertex = data_of(vid)
        outcome.work_units += app.seed_cost(vertex)
        task = app.make_task(vertex)
        if task is None:
            continue
        outcome.tasks_created += 1
        results, work, rounds, spawned = run_task(task, data_of, env)
        outcome.results.extend(results)
        outcome.work_units += work
        outcome.rounds += rounds
        outcome.tasks_created += spawned
    return outcome
