"""Vectorised set-operation kernels for the mining hot paths.

Every mining kernel in :mod:`repro.mining` reduces to a handful of
primitives over **sorted, duplicate-free integer arrays** — adjacency
lists, candidate sets, attribute lists:

* ``intersect`` / ``intersect_count`` — the primitive that decides
  graph-pattern-mining throughput (G²Miner, ProbGraph);
* ``difference`` / ``union`` — candidate filtering and attribute
  similarity;
* ``contains`` — bulk membership probes;
* ``slice_gt`` — the ubiquitous "higher-ID neighbours" restriction.

Three interchangeable backends implement them:

* ``reference`` — pure Python.  Adaptive: two-pointer merge for
  similar sizes, galloping (exponential + binary search) when one side
  is much smaller.  Always available; the semantics oracle.
* ``numpy`` — vectorised via ``searchsorted``/``intersect1d``.
  Selected automatically when numpy is importable.
* ``bitset`` — Python big-int bitsets (one ``&`` + ``bit_count`` per
  intersection), the G²Miner trick for dense neighbourhoods.

Backends are *value-identical*: any program using only this API
computes the same results (and kernels charge the same work units)
whichever backend is active — the property tests in
``tests/test_kernels.py`` enforce it.

Selection: the ``REPRO_KERNEL_BACKEND`` environment variable
(``auto``/``reference``/``numpy``/``bitset``) picks the process-wide
default at import; :func:`set_backend` / :func:`use_backend` switch at
runtime; ``GMinerConfig(kernel_backend=...)`` scopes a choice to one
job.  ``auto`` means "numpy if importable, else reference" — a missing
numpy degrades cleanly, it never breaks.

Array handles returned by :func:`as_array` are backend-specific and
opaque; convert with :func:`tolist` at boundaries.  ``len()`` works on
every handle.  Passing a handle from backend A to backend B is
undefined — convert via :func:`tolist` when switching.
"""

from __future__ import annotations

import contextlib
import os
import warnings
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.kernels import reference as _reference_mod

__all__ = [
    "as_array",
    "tolist",
    "intersect",
    "intersect_count",
    "difference",
    "union",
    "contains",
    "slice_gt",
    "intersect_count_many",
    "unique_sorted",
    "available_backends",
    "get_backend",
    "set_backend",
    "use_backend",
    "set_metering_hook",
    "DEFAULT_BACKEND_ENV",
]

#: Optional observability hook ``hook(op: str, items: int)`` invoked
#: once per vectorised batch with the number of elements scanned.
#: ``None`` (the default) costs one branch per batch call; installed by
#: :class:`repro.core.job.GMinerJob` when observability is on.
_metering_hook = None


def set_metering_hook(hook):
    """Install (or with ``None`` clear) the kernel batch metering hook.

    Returns the previous hook so callers can restore it (the job wraps
    its run in a ``try/finally`` doing exactly that).  Process-wide, so
    two concurrently instrumented jobs in one process would interleave
    counts — the runner never does that.
    """
    global _metering_hook
    previous = _metering_hook
    _metering_hook = hook
    return previous

#: Environment variable consulted once, at import, for the default.
DEFAULT_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

_BACKEND_NAMES = ("reference", "numpy", "bitset")


def _load_backend(name: str):
    if name == "reference":
        return _reference_mod
    if name == "numpy":
        from repro.kernels import numpy_backend

        if not numpy_backend.AVAILABLE:
            raise ValueError(
                "kernel backend 'numpy' requested but numpy is not importable"
            )
        return numpy_backend
    if name == "bitset":
        from repro.kernels import bitset

        return bitset
    raise ValueError(
        f"unknown kernel backend {name!r}; expected one of "
        f"{('auto',) + _BACKEND_NAMES}"
    )


def available_backends() -> Tuple[str, ...]:
    """Backends importable in this environment, reference first."""
    names = ["reference"]
    try:
        from repro.kernels import numpy_backend

        if numpy_backend.AVAILABLE:
            names.append("numpy")
    except ImportError:  # pragma: no cover - numpy import never raises here
        pass
    names.append("bitset")
    return tuple(names)


def _resolve_auto() -> str:
    return "numpy" if "numpy" in available_backends() else "reference"


def set_backend(name: Optional[str]) -> str:
    """Activate a backend process-wide; returns the resolved name.

    ``None`` or ``"auto"`` resolves to numpy when importable, else
    reference.  Explicitly naming an unavailable backend raises
    ``ValueError`` (auto-selection never does).
    """
    global _active, _active_name
    resolved = _resolve_auto() if name in (None, "auto") else name
    _active = _load_backend(resolved)
    _active_name = resolved
    return resolved


def get_backend() -> str:
    """Name of the active backend."""
    return _active_name


@contextlib.contextmanager
def use_backend(name: Optional[str]) -> Iterator[str]:
    """Context manager scoping a backend choice (restores on exit)."""
    previous = _active_name
    try:
        yield set_backend(name)
    finally:
        set_backend(previous)


def _initial_backend() -> str:
    requested = os.environ.get(DEFAULT_BACKEND_ENV, "auto").strip().lower()
    if requested in ("", "auto"):
        return _resolve_auto()
    try:
        _load_backend(requested)
        return requested
    except ValueError as exc:
        warnings.warn(
            f"{DEFAULT_BACKEND_ENV}={requested!r} unavailable ({exc}); "
            "falling back to the reference backend",
            RuntimeWarning,
            stacklevel=2,
        )
        return "reference"


_active_name = _initial_backend()
_active = _load_backend(_active_name)


# ----------------------------------------------------------------------
# The primitive API.  Inputs to the binary operations must be handles
# from as_array() (idempotent: feeding a handle back is free).
# ----------------------------------------------------------------------


def as_array(seq: Iterable[int]) -> Any:
    """Backend handle for a sorted duplicate-free integer sequence.

    Unsorted or duplicated input is normalised (sorted, deduplicated),
    so any integer iterable is safe; already-sorted tuples — the
    repo-wide adjacency representation — take the fast path.
    """
    return _active.as_array(seq)


def tolist(arr: Any) -> List[int]:
    """Plain ``list[int]`` of a handle (ascending order)."""
    return _active.tolist(arr)


def intersect(a: Any, b: Any) -> Any:
    """Sorted intersection ``a ∩ b`` as a new handle."""
    return _active.intersect(a, b)


def intersect_count(a: Any, b: Any) -> int:
    """``|a ∩ b|`` without materialising the intersection."""
    return _active.intersect_count(a, b)


def difference(a: Any, b: Any) -> Any:
    """Sorted difference ``a \\ b`` as a new handle."""
    return _active.difference(a, b)


def union(a: Any, b: Any) -> Any:
    """Sorted union ``a ∪ b`` as a new handle."""
    return _active.union(a, b)


def contains(hay: Any, needles: Sequence[int]) -> Sequence[bool]:
    """Bulk membership: truthy flag per needle, aligned with input.

    ``needles`` is any plain integer sequence (need not be sorted).
    """
    return _active.contains(hay, needles)


def slice_gt(arr: Any, x: int) -> Any:
    """Elements of ``arr`` strictly greater than ``x`` (a view/copy)."""
    return _active.slice_gt(arr, x)


def intersect_count_many(
    arrays: Sequence[Any], thresholds: Sequence[int], target: Any
) -> Tuple[int, int]:
    """Batched thresholded intersection count.

    Returns ``(count, scanned)`` where ``count`` is
    ``sum(|{w ∈ a ∩ target : w > t}|)`` over the paired ``(a, t)`` in
    ``zip(arrays, thresholds)`` and ``scanned`` is the total number of
    array elements examined (``Σ len(a)``) — the quantity bulk work
    metering charges.  Equivalent to calling
    ``intersect_count(slice_gt(a, t), slice_gt(target, t))`` per pair,
    but a backend can fuse the whole batch into one pass — the
    triangle kernel's per-seed hot path.  ``arrays`` items may be raw
    sorted sequences or handles; they are normalised internally.
    """
    count, scanned = _active.intersect_count_many(arrays, thresholds, target)
    if _metering_hook is not None:
        _metering_hook("intersect_count_many", scanned)
    return count, scanned


def unique_sorted(seq: Iterable[int]) -> Any:
    """Sort + deduplicate an arbitrary integer iterable into a handle."""
    return _active.unique_sorted(seq)
