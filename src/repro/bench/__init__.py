"""Benchmark harness: regenerate every table and figure of the paper.

:func:`repro.bench.run` is the single entrypoint for running any
workload on any system (G-Miner or a baseline) with the scaled
experiment defaults; batches of cells fan out over host cores via
:mod:`repro.parallel` (``python -m repro.bench run all --workers N``).
:mod:`repro.bench.report` renders rows the way the paper's tables do
("x" for OOM, "-" for over the time limit);
:mod:`repro.bench.experiments` defines one function per table/figure,
each returning an :class:`ExperimentReport` that the ``benchmarks/``
suite executes and EXPERIMENTS.md records.

The pre-``run()`` shims (``run_system``/``run_gminer``) are removed:
the names survive only in :mod:`repro.bench.runner` as tombstones that
raise ``TypeError`` pointing at :func:`run`.
"""

from repro.bench.runner import (
    EXPERIMENT_SPEC,
    DEFAULT_TIME_LIMIT,
    SYSTEMS,
    build_app,
    execute_request,
    prepare_dataset,
    run,
    run_many,
)
from repro.bench.report import ExperimentReport, format_cell, render_table
from repro.bench import experiments

__all__ = [
    "EXPERIMENT_SPEC",
    "DEFAULT_TIME_LIMIT",
    "SYSTEMS",
    "build_app",
    "execute_request",
    "prepare_dataset",
    "run",
    "run_many",
    "ExperimentReport",
    "format_cell",
    "render_table",
    "experiments",
]
