"""Unit tests for attribute spaces and similarity measures."""

import pytest

from repro.graph.attributes import (
    AttributeSpace,
    infer_attribute_weights,
    jaccard_similarity,
    overlap_count,
    weighted_similarity,
)


class TestAttributeSpace:
    def test_encode_decode_roundtrip(self):
        space = AttributeSpace(dimensions=5, values_per_dimension=10)
        for dim in range(5):
            for value in (1, 5, 10):
                attr = space.encode(dim, value)
                assert space.decode(attr) == (dim, value)

    def test_describe(self):
        space = AttributeSpace()
        assert space.describe(space.encode(0, 7)) == "A7"
        assert space.describe(space.encode(4, 10)) == "E10"

    def test_bounds_checked(self):
        space = AttributeSpace(dimensions=2, values_per_dimension=3)
        with pytest.raises(ValueError):
            space.encode(2, 1)
        with pytest.raises(ValueError):
            space.encode(0, 0)
        with pytest.raises(ValueError):
            space.encode(0, 4)

    def test_total_values(self):
        assert AttributeSpace(dimensions=4, values_per_dimension=20).total_values == 80


class TestJaccard:
    def test_identical(self):
        assert jaccard_similarity([1, 2, 3], [3, 2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity([1, 2], [3, 4]) == 0.0

    def test_partial(self):
        assert jaccard_similarity([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 1.0

    def test_overlap_count(self):
        assert overlap_count([1, 2, 3], [2, 3, 9]) == 2


class TestWeightedSimilarity:
    def test_only_weighted_attrs_count(self):
        weights = {1: 1.0}
        # unfocused 2 and 3 dilute the denominator slightly
        assert weighted_similarity([1, 2], [1, 3], weights) == pytest.approx(
            1.0 / 1.06, abs=1e-6
        )

    def test_mismatched_weighted_attr_penalises(self):
        weights = {1: 0.5, 2: 0.5}
        # share 1, differ on 2 (9 is unfocused: denominator-only)
        assert weighted_similarity([1, 2], [1, 9], weights) == pytest.approx(
            0.5 / 1.03, abs=1e-6
        )

    def test_unfocused_shared_attrs_score_nothing(self):
        # identical attribute lists outside the focus: similarity 0
        assert weighted_similarity([8, 9], [8, 9], {1: 1.0}) == 0.0

    def test_no_weights_zero(self):
        assert weighted_similarity([1], [1], {}) == 0.0


class TestInferWeights:
    def test_consensus_attribute_dominates(self):
        exemplars = [[1, 2], [1, 3], [1, 4]]
        weights = infer_attribute_weights(exemplars)
        assert weights[1] > weights[2]
        assert weights[1] > weights[3]

    def test_weights_normalised(self):
        weights = infer_attribute_weights([[1, 2], [2, 3]])
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_empty_exemplars(self):
        assert infer_attribute_weights([]) == {}

    def test_exemplars_without_attributes(self):
        assert infer_attribute_weights([[], []]) == {}
