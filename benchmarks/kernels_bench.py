"""Microbenchmarks for the set-operation kernel layer.

Measures wall-clock of the vectorised triangle kernel under every
available :mod:`repro.kernels` backend against a frozen copy of the
historical per-probe implementation, on a ~50k-edge scale-free graph,
plus raw intersection-throughput numbers per backend.  Every timed run
is also checked for the work-unit-invariance contract: identical
triangle count and identical work units as the frozen baseline.

Run directly (``PYTHONPATH=src python benchmarks/kernels_bench.py``)
or via ``benchmarks/test_kernels_micro.py``; both write
``results/BENCH_kernels.json``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, Mapping, Sequence, Set

from repro import kernels
from repro.graph.generators import preferential_attachment_graph
from repro.mining.cost import WorkMeter
from repro.mining.triangles import triangle_count_sequential
from repro.obs.env import environment_metadata

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "results", "BENCH_kernels.json"
)

#: ~50k edges at dense-social-network degree (average ~100, the
#: regime TC's intersections actually stress): 1k vertices attaching
#: 50 edges each.
GRAPH_N = 1_000
GRAPH_M = 50
GRAPH_SEED = 7


def seed_triangles_for_seed(
    seed: int,
    seed_neighbors: Sequence[int],
    neighbor_adjacency: Mapping[int, Iterable[int]],
    meter: WorkMeter,
) -> int:
    """The per-probe triangle kernel as it shipped before the kernel
    layer — frozen verbatim as the benchmark baseline."""
    higher = [u for u in seed_neighbors if u > seed]
    higher_set: Set[int] = set(higher)
    count = 0
    for u in higher:
        gamma_u = neighbor_adjacency[u]
        for w in gamma_u:
            meter.charge()
            if w > u and w in higher_set:
                count += 1
    return count


def seed_triangle_count_sequential(
    adjacency: Mapping[int, Sequence[int]], meter: WorkMeter
) -> int:
    total = 0
    for v in sorted(adjacency):
        total += seed_triangles_for_seed(v, adjacency[v], adjacency, meter)
    return total


def _time(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _intersection_throughput(repeats: int = 200) -> Dict[str, float]:
    """Ops/second for one skewed + one balanced intersection pair."""
    small = tuple(range(0, 4_000, 40))
    large = tuple(range(0, 120_000, 3))
    balanced_a = tuple(range(0, 60_000, 2))
    balanced_b = tuple(range(1, 60_000, 2000))
    out: Dict[str, float] = {}
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            ia, ib = kernels.as_array(small), kernels.as_array(large)
            ic, id_ = kernels.as_array(balanced_a), kernels.as_array(balanced_b)
            start = time.perf_counter()
            for _ in range(repeats):
                kernels.intersect_count(ia, ib)
                kernels.intersect_count(ic, id_)
            elapsed = time.perf_counter() - start
            out[backend] = 2 * repeats / elapsed
    return out


def bench_kernels(n: int = GRAPH_N, m: int = GRAPH_M) -> Dict[str, object]:
    graph = preferential_attachment_graph(n, m, seed=GRAPH_SEED)
    adjacency = {v: tuple(graph.neighbors(v)) for v in graph.vertices()}
    num_edges = sum(len(ns) for ns in adjacency.values()) // 2

    baseline_meter = WorkMeter()
    baseline_count, baseline_seconds = _time(
        lambda: seed_triangle_count_sequential(adjacency, baseline_meter)
    )

    backends: Dict[str, Dict[str, float]] = {}
    for backend in kernels.available_backends():
        with kernels.use_backend(backend):
            meter = WorkMeter()
            count, seconds = _time(
                lambda: triangle_count_sequential(adjacency, meter)
            )
        if count != baseline_count:
            raise AssertionError(
                f"{backend}: count {count} != baseline {baseline_count}"
            )
        if meter.units != baseline_meter.units:
            raise AssertionError(
                f"{backend}: work units {meter.units} != "
                f"baseline {baseline_meter.units}"
            )
        backends[backend] = {
            "seconds": seconds,
            "speedup_vs_seed": baseline_seconds / seconds,
        }

    report = {
        "benchmark": "triangle-count microbench",
        "env": environment_metadata(),
        "graph": {
            "generator": "preferential_attachment",
            "n": n,
            "m": m,
            "seed": GRAPH_SEED,
            "edges": num_edges,
        },
        "triangles": baseline_count,
        "work_units": baseline_meter.units,
        "seed_kernel_seconds": baseline_seconds,
        "backends": backends,
        "intersect_ops_per_second": _intersection_throughput(),
    }
    return report


def save_report(report: Dict[str, object], path: str = RESULTS_PATH) -> str:
    path = os.path.abspath(path)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main() -> None:
    report = bench_kernels()
    path = save_report(report)
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"saved {path}")


if __name__ == "__main__":
    main()
