"""End-to-end job tests: the distributed pipeline must compute exactly
what the sequential kernels compute, for every application."""

import pytest

from repro.apps import (
    CommunityDetectionApp,
    GraphClusteringApp,
    GraphMatchingApp,
    MaxCliqueApp,
    TriangleCountingApp,
)
from repro.core import JobStatus
from repro.graph.algorithms import is_clique, triangle_count_exact
from repro.graph.datasets import load_dataset
from repro.mining.clustering import FocusParams, focused_clustering_sequential
from repro.mining.community import CommunityParams, community_detection_sequential
from repro.mining.cost import WorkMeter
from repro.mining.matching import graph_matching_sequential
from repro.mining.patterns import PAPER_PATTERN
from tests.conftest import adjacency_of, attributes_of, labels_of, run_job


class TestTriangleCounting:
    def test_exact_count(self, small_social_graph, small_spec):
        _, result = run_job(TriangleCountingApp(), small_social_graph, small_spec)
        assert result.value == triangle_count_exact(small_social_graph)

    def test_dataset_scale(self, small_spec):
        g = load_dataset("skitter-s").graph
        _, result = run_job(TriangleCountingApp(), g, small_spec)
        assert result.value == triangle_count_exact(g)

    def test_every_partitioner(self, small_social_graph, small_spec):
        expected = triangle_count_exact(small_social_graph)
        for partitioner in ("bdg", "hash"):
            _, result = run_job(
                TriangleCountingApp(), small_social_graph, small_spec,
                partitioner=partitioner,
            )
            assert result.value == expected


class TestMaxClique:
    def test_finds_maximum_clique(self, small_social_graph, small_spec):
        from repro.mining.cliques import max_clique_sequential

        expected = max_clique_sequential(
            adjacency_of(small_social_graph), WorkMeter()
        )
        _, result = run_job(MaxCliqueApp(), small_social_graph, small_spec)
        assert len(result.value) == len(expected)
        assert is_clique(small_social_graph, result.value)
        assert result.aggregated == len(expected)

    def test_aggregator_bound_propagates(self, small_social_graph, small_spec):
        job, result = run_job(MaxCliqueApp(), small_social_graph, small_spec)
        # every worker's view of the bound converged to the true value
        for worker in job.workers:
            assert worker.agg.best_known <= len(result.value)


class TestGraphMatching:
    def test_count_matches_sequential(self, small_labeled_graph, small_spec):
        expected = graph_matching_sequential(
            PAPER_PATTERN,
            labels_of(small_labeled_graph),
            adjacency_of(small_labeled_graph),
            WorkMeter(),
        )
        _, result = run_job(GraphMatchingApp(), small_labeled_graph, small_spec)
        assert result.value == expected

    def test_with_splitting_enabled(self, small_labeled_graph, small_spec):
        expected = graph_matching_sequential(
            PAPER_PATTERN,
            labels_of(small_labeled_graph),
            adjacency_of(small_labeled_graph),
            WorkMeter(),
        )
        _, result = run_job(
            GraphMatchingApp(), small_labeled_graph, small_spec,
            enable_splitting=True, split_candidate_threshold=8,
        )
        assert result.value == expected


class TestCommunityDetection:
    def test_matches_sequential(self, small_spec):
        g = load_dataset("dblp-s").graph
        expected = community_detection_sequential(
            CommunityParams(), attributes_of(g), adjacency_of(g), WorkMeter()
        )
        _, result = run_job(CommunityDetectionApp(), g, small_spec)
        assert result.value == expected


class TestGraphClustering:
    def test_matches_sequential(self, small_spec):
        built = load_dataset("dblp-s")
        g = built.graph
        exemplars = sorted(g.vertices())[:5]
        attrs = attributes_of(g)
        expected = focused_clustering_sequential(
            exemplars, FocusParams(), attrs, adjacency_of(g), WorkMeter()
        )
        app = GraphClusteringApp([attrs[e] for e in exemplars])
        _, result = run_job(app, g, small_spec)
        assert result.value == expected


class TestJobAccounting:
    def test_result_metrics_populated(self, small_social_graph, small_spec):
        job, result = run_job(TriangleCountingApp(), small_social_graph, small_spec)
        assert result.total_seconds > 0
        assert result.mining_seconds > 0
        assert result.setup_seconds > 0
        assert 0 < result.cpu_utilization <= 1
        assert result.peak_memory_bytes > small_social_graph.estimate_size() // 2
        assert result.network_bytes > 0
        assert result.stats["tasks_created"] > 0
        assert result.stats["rounds_executed"] >= result.stats["tasks_created"]

    def test_memory_freed_at_end(self, small_social_graph, small_spec):
        job, _ = run_job(TriangleCountingApp(), small_social_graph, small_spec)
        for worker in job.workers:
            # tasks and overflow slots are gone; what remains is the
            # vertex table plus cached vertices
            assert not worker.live_tasks
            assert not worker.overflow
            table = sum(v.estimate_size() for v in worker.vertex_table.values())
            assert worker.node.memory.current <= table + worker.cache.used_bytes + 1

    def test_utilization_timeline_available(self, small_social_graph, small_spec):
        _, result = run_job(TriangleCountingApp(), small_social_graph, small_spec)
        times, series = result.utilization_series(bins=10)
        assert len(times) == 10
        assert set(series) == {"cpu", "network", "disk"}
        assert max(series["cpu"]) > 0

    def test_single_node_cluster_works(self, small_social_graph, small_spec):
        spec = small_spec.with_nodes(1)
        _, result = run_job(TriangleCountingApp(), small_social_graph, spec)
        assert result.value == triangle_count_exact(small_social_graph)
        # nothing is remote: no vertex ever pulled; only worker->master
        # control traffic crosses the (loopback) network
        assert result.stats["vertices_pulled"] == 0
        assert result.network_bytes < 10_000


class TestFeatureToggles:
    @pytest.mark.parametrize("enable_lsh", [True, False])
    @pytest.mark.parametrize("enable_stealing", [True, False])
    def test_correctness_independent_of_features(
        self, small_social_graph, small_spec, enable_lsh, enable_stealing
    ):
        expected = triangle_count_exact(small_social_graph)
        _, result = run_job(
            TriangleCountingApp(), small_social_graph, small_spec,
            enable_lsh=enable_lsh, enable_stealing=enable_stealing,
        )
        assert result.value == expected

    @pytest.mark.parametrize("policy", ["rcv", "lru", "fifo"])
    def test_correctness_under_cache_policies(
        self, small_social_graph, small_spec, policy
    ):
        expected = triangle_count_exact(small_social_graph)
        _, result = run_job(
            TriangleCountingApp(), small_social_graph, small_spec,
            cache_policy=policy,
        )
        assert result.value == expected

    def test_tiny_cache_still_correct(self, small_social_graph, small_spec):
        """A cache big enough for only a couple of vertices forces the
        overflow path; results must not change."""
        expected = triangle_count_exact(small_social_graph)
        _, result = run_job(
            TriangleCountingApp(), small_social_graph, small_spec,
            cache_capacity_bytes=1024,
        )
        assert result.value == expected

    def test_tiny_store_blocks_still_correct(self, small_social_graph, small_spec):
        expected = triangle_count_exact(small_social_graph)
        _, result = run_job(
            TriangleCountingApp(), small_social_graph, small_spec,
            store_block_tasks=2, task_buffer_batch=2,
        )
        assert result.value == expected
        # forcing tiny blocks must actually exercise the disk path
        assert result.stats["disk_loads"] > 0
