"""Process-pool fan-out of independent experiment cells.

:class:`ParallelRunner` maps a list of :class:`RunRequest` cells over a
``concurrent.futures.ProcessPoolExecutor``.  Because every cell is a
pure function of its request (the cluster is a deterministic
simulation), results are collected back **in request order**, making a
``workers=N`` run byte-identical to the serial one — the pool changes
wall-clock time, never results.

The ambient context (:func:`parallel_context` / :func:`current_runner`)
lets deep call sites — the per-table experiment functions — fan out
through whatever runner the CLI installed, without threading a
``workers=`` parameter through every signature.  With no context
installed, :func:`current_runner` returns a serial runner, so library
users and the test suite see unchanged behaviour.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.parallel.cache import BuildCache, get_build_cache, set_build_cache
from repro.parallel.request import CellOutcome, RunRequest, execute_request_timed


def default_workers() -> int:
    """The default pool size: every core the host has."""
    return os.cpu_count() or 1


def _pool_init(cache_dir: Optional[str], persist: bool) -> None:
    """Pool-worker initializer: give each child its own build cache.

    Children share the *disk* level of the cache (same directory), so a
    dataset built by one worker is a disk hit for every other worker
    and for later invocations; the memory level is per-process.
    """
    if cache_dir is None:
        set_build_cache(None)
    else:
        set_build_cache(BuildCache(directory=cache_dir, persist=persist))


class ParallelRunner:
    """Fan independent experiment cells out over a process pool.

    ``workers=1`` (or a single-cell batch) executes inline in this
    process — no pool, no pickling — which keeps small runs and the
    test suite fast.  ``cache=None`` leaves whatever build cache is
    already active untouched (and gives pool children none).
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: Optional[BuildCache] = None,
    ) -> None:
        self.workers = max(1, workers if workers is not None else default_workers())
        self.cache = cache
        #: Accounting for every cell this runner has executed, in
        #: execution-batch order (report footers read this).
        self.outcomes: List[CellOutcome] = []
        # Cache accounting baseline: serial cells and non-cell builds
        # (e.g. Table 2's dataset table) hit the parent-process cache
        # directly, so totals are its delta since construction plus the
        # deltas pool children shipped back in their outcomes.
        self._pool_hits = 0
        self._pool_misses = 0
        parent = cache if cache is not None else get_build_cache()
        self._cache_baseline = (
            (parent.hits, parent.misses) if parent is not None else (0, 0)
        )

    # -- execution -----------------------------------------------------

    def map(self, requests: Sequence[RunRequest]) -> List[Any]:
        """Execute every cell; results in request order (None allowed)."""
        requests = list(requests)
        if not requests:
            return []
        if self.workers == 1 or len(requests) == 1:
            outcomes = self._map_serial(requests)
        else:
            outcomes = self._map_pool(requests)
        self.outcomes.extend(outcomes)
        return [outcome.result for outcome in outcomes]

    def _map_serial(self, requests: List[RunRequest]) -> List[CellOutcome]:
        if self.cache is not None:
            previous = set_build_cache(self.cache)
            try:
                return [execute_request_timed(r) for r in requests]
            finally:
                set_build_cache(previous)
        return [execute_request_timed(r) for r in requests]

    def _map_pool(self, requests: List[RunRequest]) -> List[CellOutcome]:
        cache_dir = self.cache.directory if self.cache is not None else None
        persist = self.cache.persist if self.cache is not None else False
        outcomes: List[Optional[CellOutcome]] = [None] * len(requests)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(requests)),
            initializer=_pool_init,
            initargs=(cache_dir, persist),
        ) as pool:
            pending = {
                pool.submit(execute_request_timed, request): index
                for index, request in enumerate(requests)
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    outcome = future.result()
                    outcomes[pending.pop(future)] = outcome
                    self._pool_hits += outcome.cache_hits
                    self._pool_misses += outcome.cache_misses
        return outcomes  # type: ignore[return-value]

    # -- accounting ----------------------------------------------------

    def reset_outcomes(self) -> None:
        self.outcomes.clear()

    def cache_stats(self) -> Dict[str, int]:
        """Total build-cache hits/misses attributable to this runner:
        the parent cache's delta since construction (serial cells, plus
        builds outside any cell) plus pool children's shipped deltas."""
        parent = self.cache if self.cache is not None else get_build_cache()
        base_hits, base_misses = self._cache_baseline
        parent_hits = parent.hits - base_hits if parent is not None else 0
        parent_misses = parent.misses - base_misses if parent is not None else 0
        return {
            "hits": parent_hits + self._pool_hits,
            "misses": parent_misses + self._pool_misses,
        }

    def footer_summary(self, per_cell: bool = True) -> Optional[str]:
        """Human-readable host-level accounting for report footers.

        Covers per-cell wall clock and build-cache hit counters; None
        when this runner executed no cells (e.g. Table 2).
        """
        if not self.outcomes:
            return None
        total = sum(o.wall_seconds for o in self.outcomes)
        slowest = max(self.outcomes, key=lambda o: o.wall_seconds)
        stats = self.cache_stats()
        hits, misses = stats["hits"], stats["misses"]
        lines = [
            f"host: {len(self.outcomes)} cells, {total:.2f}s cell wall-clock "
            f"(slowest {slowest.label}: {slowest.wall_seconds:.2f}s), "
            f"workers={self.workers}, build cache: {hits} hits / {misses} misses",
        ]
        if per_cell:
            for outcome in self.outcomes:
                lines.append(
                    f"  {outcome.label}: {outcome.wall_seconds:.2f}s"
                    f" (cache {outcome.cache_hits}h/{outcome.cache_misses}m)"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Ambient runner
# ----------------------------------------------------------------------

_current: Optional[ParallelRunner] = None


def current_runner() -> ParallelRunner:
    """The ambient runner, or a fresh serial one when none is installed."""
    if _current is not None:
        return _current
    return ParallelRunner(workers=1, cache=None)


@contextmanager
def parallel_context(
    workers: Optional[int] = None,
    cache: Optional[BuildCache] = None,
) -> Iterator[ParallelRunner]:
    """Install a :class:`ParallelRunner` as the ambient runner.

    Also installs ``cache`` (when given) as the process-wide build
    cache so serial cells and non-cell builds (e.g. ``table2``'s
    dataset table) share it.  Restores both on exit.
    """
    global _current
    runner = ParallelRunner(workers=workers, cache=cache)
    previous_runner = _current
    previous_cache = get_build_cache()
    _current = runner
    if cache is not None:
        set_build_cache(cache)
    try:
        yield runner
    finally:
        _current = previous_runner
        set_build_cache(previous_cache)
