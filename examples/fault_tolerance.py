#!/usr/bin/env python
"""Scenario: surviving worker failures (paper §7).

Runs the same max-clique job three times:

1. clean — no checkpoints, no failures (the reference result);
2. checkpointed — periodic snapshots to (simulated) HDFS, to see the
   overhead;
3. under fire — a worker is killed mid-job and recovers from its last
   checkpoint while the remaining workers keep mining; task stealing
   re-spreads the recovered load.

The job must finish with the exact same clique in all three runs.

Run:  python examples/fault_tolerance.py
"""

from repro.apps import MaxCliqueApp
from repro.core import GMinerConfig, GMinerJob
from repro.graph.datasets import load_dataset
from repro.sim.cluster import ClusterSpec
from repro.sim.failures import FailurePlan


def run(label, graph, config, failure_plan=None):
    job = GMinerJob(MaxCliqueApp(), graph, config, failure_plan=failure_plan)
    result = job.run()
    migrated = int(result.stats["tasks_migrated"])
    print(f"{label:<22} {result.status.value:<8} "
          f"time {result.total_seconds:>6.3f}s  "
          f"clique size {len(result.value):>2}  "
          f"checkpoints {int(result.stats['checkpoints']):>2}  "
          f"tasks migrated {migrated:>3}")
    return result


def main() -> None:
    graph = load_dataset("orkut-s").graph
    spec = ClusterSpec(num_nodes=15, cores_per_node=4)
    print(f"dataset: {graph}\n")

    clean = run("clean", graph, GMinerConfig(cluster=spec))

    ckpt_config = GMinerConfig(cluster=spec, checkpoint_interval=0.05)
    run("with checkpoints", graph, ckpt_config)

    # kill worker 3 mid-mining; it comes back 50 simulated ms later
    kill_at = clean.setup_seconds + clean.mining_seconds * 0.5
    plan = FailurePlan().kill(node_id=3, at_time=kill_at, recovery_delay=0.05)
    fire_config = GMinerConfig(
        cluster=spec, checkpoint_interval=0.05, time_limit=60.0
    )
    under_fire = run("worker 3 killed", graph, fire_config, plan)

    assert len(under_fire.value) == len(clean.value), "result changed!"
    print("\nthe failed run recovered and produced the identical clique.")


if __name__ == "__main__":
    main()
