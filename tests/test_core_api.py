"""Unit tests for the user-facing GMinerApp base class."""

import pytest

from repro.core.api import GMinerApp
from repro.graph.graph import VertexData


class TestDefaults:
    def test_vtx_parser_uses_text_format(self):
        app = GMinerApp()
        data = app.vtx_parser("5\t1 2\tL=a")
        assert data == VertexData(vid=5, neighbors=(1, 2), label="a")

    def test_make_task_abstract(self):
        with pytest.raises(NotImplementedError):
            GMinerApp().make_task(VertexData(vid=0, neighbors=()))

    def test_default_aggregator_none(self):
        assert GMinerApp().make_aggregator() is None

    def test_combine_sorts_orderable_results(self):
        assert GMinerApp().combine_results([3, None, 1, 2]) == [1, 2, 3]

    def test_combine_handles_unorderable(self):
        mixed = [1, "a", (2,)]
        out = GMinerApp().combine_results(mixed)
        assert sorted(map(str, out)) == sorted(map(str, mixed))

    def test_seed_cost_positive(self):
        assert GMinerApp().seed_cost(VertexData(vid=0, neighbors=())) > 0


class TestOverflowPath:
    def test_tiny_cache_routes_through_overflow(self, small_social_graph, small_spec):
        """When the cache cannot hold pulled vertices, the worker's
        overflow slots keep the pipeline alive (no deadlock)."""
        from repro.apps import TriangleCountingApp
        from repro.core import GMinerConfig, GMinerJob, JobStatus
        from repro.graph.algorithms import triangle_count_exact

        config = GMinerConfig(cluster=small_spec, cache_capacity_bytes=600)
        result = GMinerJob(TriangleCountingApp(), small_social_graph, config).run()
        assert result.status is JobStatus.OK
        assert result.value == triangle_count_exact(small_social_graph)
        assert result.stats["overflow_inserts"] > 0
