"""Triangle counting kernel (the paper's TC application).

Uses the standard ordered-intersection decomposition: the task seeded
at vertex ``v`` counts triangles ``v < u < w`` where ``u, w ∈ Γ(v)``
and ``(u, w) ∈ E``.  Summing over all seeds counts every triangle
exactly once, so per-seed results are independent — the property that
lets TC run as one G-Miner task per vertex.

The whole seed is one :func:`repro.kernels.intersect_count_many`
call: the batch of ``|Γ(u) ∩ Γ⁺(v)|`` counts restricted to ids above
each ``u``, fused into a single pass by backends that support it.
Work is charged in bulk — ``Σ|Γ(u)|`` units per seed, the same total
the historical per-probe loop charged one unit at a time — so
simulated times are unchanged while the Python-level per-probe
overhead disappears.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro import kernels
from repro.mining.cost import WorkMeter


def triangles_for_seed(
    seed: int,
    seed_neighbors: Sequence[int],
    neighbor_adjacency: Mapping[int, Iterable[int]],
    meter: WorkMeter,
) -> int:
    """Count triangles whose minimum vertex is ``seed``.

    ``neighbor_adjacency`` must provide ``Γ(u)`` for every neighbor
    ``u > seed`` (the task pulls these as its candidates); values may
    be plain sequences or :func:`repro.kernels.as_array` handles.  One
    work unit is charged per adjacency element probed, in one bulk
    charge per seed.
    """
    higher = kernels.slice_gt(kernels.as_array(seed_neighbors), seed)
    higher_list = kernels.tolist(higher)
    if not higher_list:
        return 0
    arrays = [neighbor_adjacency[u] for u in higher_list]
    count, scanned = kernels.intersect_count_many(arrays, higher_list, higher)
    meter.charge(scanned)
    return count


def triangle_count_sequential(
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
) -> int:
    """Whole-graph triangle count (single-thread baseline kernel).

    Converts the adjacency to kernel arrays once, up front, and shares
    that view across every seed.
    """
    view = {v: kernels.as_array(ns) for v, ns in adjacency.items()}
    total = 0
    for v in sorted(view):
        total += triangles_for_seed(v, view[v], view, meter)
    return total


def local_adjacency(
    vertex_ids: Iterable[int],
    adjacency: Mapping[int, Sequence[int]],
) -> Dict[int, Tuple[int, ...]]:
    """Materialise the sub-mapping ``{v: Γ(v)}`` for the given vertices."""
    return {v: tuple(adjacency[v]) for v in vertex_ids}
