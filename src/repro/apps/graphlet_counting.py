"""Size-k graphlet counting (GL) on G-Miner.

A sixth application beyond the paper's five, straight from its §4.1
taxonomy (category 1 lists "size-k graphlets" [2]): count all connected
induced k-vertex subgraphs, classified by isomorphism type.

The task seeded at ``v`` enumerates graphlets whose minimum vertex is
``v``.  It needs the (k-1)-hop higher neighbourhood, pulled breadth-
first: round r pulls the vertices discovered in round r-1, and the
final round runs the ESU enumeration.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.graph import VertexData
from repro.mining.graphlets import graphlets_for_seed, merge_histograms


class GLTask(Task):
    """Pulls k-1 hops of higher neighbours, then enumerates."""

    def __init__(self, seed: VertexData, k: int, classify: bool) -> None:
        super().__init__(seed)
        self.k = k
        self.classify = classify
        self.known: Dict[int, VertexData] = {seed.vid: seed}
        self.pull(u for u in seed.neighbors if u > seed.vid)

    def context_size(self) -> int:
        return sum(16 + 8 * len(d.neighbors) for d in self.known.values())

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        self.known.update(cand_objs)
        if self.round < self.k - 1:
            frontier: Set[int] = set()
            for data in cand_objs.values():
                self.charge(len(data.neighbors))
                frontier.update(u for u in data.neighbors if u > self.seed.vid)
            needed = frontier - set(self.known)
            if needed:
                self.pull(needed)
                return
        adjacency = {vid: data.neighbors for vid, data in self.known.items()}
        counts = graphlets_for_seed(
            self.seed.vid, self.k, adjacency, meter=self, classify=self.classify
        )
        self.subgraph.add_nodes(adjacency)
        self.finish(counts if counts else None)


class GraphletCountingApp(GMinerApp):
    """Histogram of connected k-graphlets by isomorphism class."""

    name = "gl"

    def __init__(self, k: int = 4, classify: bool = True) -> None:
        if k < 2:
            raise ValueError("graphlets need k >= 2")
        self.k = k
        self.classify = classify

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        if not any(u > vertex.vid for u in vertex.neighbors):
            return None
        return GLTask(vertex, self.k, self.classify)

    def combine_results(self, results) -> Dict[str, int]:
        return merge_histograms(r for r in results if r is not None)
