"""Maximum-clique kernels (the paper's MCF application).

Implements the branch-and-bound search of Tomita & Seki [33] that the
paper uses: expand the current clique with pivot-free greedy-colouring
bounds, pruning any branch that cannot beat the best clique found so
far.  The *shared* bound object is how the paper's superlinear speedup
arises (§3): every worker prunes with the globally best clique size, so
parallel search shrinks everyone's search space.

For G-Miner, the task seeded at vertex ``v`` searches cliques whose
minimum vertex is ``v`` (candidates are the higher-ID neighbours), so
each maximum clique is found exactly once and per-seed tasks stay
independent.

Candidate ordering and filtering run on :mod:`repro.kernels` sorted
arrays (``intersect_count`` for degree-within-candidates, ``contains``
for bulk adjacency masks); the ``adjacency`` argument accepts either
plain sets — the historical contract — or kernel array handles, and
is normalised once at entry.  Work charges are unchanged from the
per-probe era: totals stay bit-identical.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import kernels
from repro.mining.cost import WorkMeter


class SharedBound:
    """The globally-best clique size, shared for pruning.

    In distributed runs the aggregator periodically synchronises worker
    copies (so a worker may briefly prune with a stale bound — exactly
    the paper's semantics).  ``record`` keeps the best clique itself for
    reporting.
    """

    def __init__(self, initial: int = 0) -> None:
        self.value = initial
        self.best_clique: Tuple[int, ...] = ()

    def record(self, clique: Sequence[int]) -> bool:
        """Offer a clique; returns True when it improves the bound."""
        if len(clique) > self.value:
            self.value = len(clique)
            self.best_clique = tuple(sorted(clique))
            return True
        return False

    def merge(self, other: "SharedBound") -> None:
        if other.value > self.value:
            self.value = other.value
            self.best_clique = other.best_clique


def _greedy_color_bound(
    candidates: List[int],
    adj_sets: Mapping[int, Set[int]],
    meter: WorkMeter,
) -> int:
    """Greedy colouring upper bound on the clique number of ``candidates``."""
    color_classes: List[Set[int]] = []
    for v in candidates:
        placed = False
        for cls in color_classes:
            meter.charge()
            if adj_sets[v].isdisjoint(cls):
                cls.add(v)
                placed = True
                break
        if not placed:
            color_classes.append({v})
    return len(color_classes)


def max_clique_in_candidates(
    required: Sequence[int],
    candidates: Iterable[int],
    adjacency: Mapping[int, Iterable[int]],
    bound: SharedBound,
    meter: WorkMeter,
) -> Optional[Tuple[int, ...]]:
    """Find the largest clique = ``required`` + subset of ``candidates``.

    ``adjacency`` must cover every candidate (restricted adjacency is
    fine as long as it is symmetric within the candidate set); values
    may be sets, sequences, or kernel array handles.  Updates
    ``bound`` as better cliques are found; returns the best clique this
    call discovered, or ``None`` if pruned everywhere.
    """
    base = list(required)
    best_found: Optional[Tuple[int, ...]] = None
    # Normalise once: sorted arrays for the kernel ops, hash sets for
    # the colouring bound's disjointness probes.
    adj_arr = {v: kernels.as_array(ns) for v, ns in adjacency.items()}
    adj_sets = {
        v: ns if isinstance(ns, (set, frozenset)) else set(kernels.tolist(adj_arr[v]))
        for v, ns in adjacency.items()
    }

    def expand(current: List[int], cand: List[int]) -> None:
        nonlocal best_found
        meter.charge(len(cand) + 1)
        if not cand:
            if bound.record(current):
                best_found = tuple(sorted(current))
            return
        # bound: even taking every candidate cannot beat the best
        if len(current) + len(cand) <= bound.value:
            return
        # tighter colouring bound, worth computing on larger branches
        if len(cand) > 4:
            if len(current) + _greedy_color_bound(cand, adj_sets, meter) <= bound.value:
                return
        # order candidates by degree within the candidate set (descending)
        cand_arr = kernels.as_array(cand)
        ordered = sorted(
            cand, key=lambda v: (-kernels.intersect_count(adj_arr[v], cand_arr), v)
        )
        while ordered:
            if len(current) + len(ordered) <= bound.value:
                return
            v = ordered.pop(0)
            mask = kernels.contains(adj_arr[v], ordered)
            next_cand = [u for u, hit in zip(ordered, mask) if hit]
            meter.charge(len(ordered))
            current.append(v)
            expand(current, next_cand)
            current.pop()

    expand(base, list(candidates))
    return best_found


def max_clique_sequential(
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
    bound: Optional[SharedBound] = None,
) -> Tuple[int, ...]:
    """Whole-graph maximum clique (single-thread baseline kernel).

    Iterates seeds in degeneracy-friendly order (descending degree) so
    the bound tightens early, mirroring an optimised sequential solver.
    The per-seed restricted adjacency is built with vectorised
    intersections against one shared sorted view of the graph.
    """
    bound = bound or SharedBound()
    view = {v: kernels.as_array(ns) for v, ns in adjacency.items()}
    seeds = sorted(view, key=lambda v: (-len(view[v]), v))
    for v in seeds:
        # Candidate order feeds the (order-sensitive) greedy colouring
        # bound; iterate a hash set exactly as this kernel always has,
        # so pruning decisions — and hence work totals — stay
        # bit-identical to the per-probe implementation.
        higher = [u for u in set(adjacency[v]) if u > v]
        if 1 + len(higher) <= bound.value:
            meter.charge()
            continue
        higher_arr = kernels.as_array(higher)
        local = {u: kernels.intersect(view[u], higher_arr) for u in higher}
        local[v] = higher_arr
        max_clique_in_candidates([v], higher, local, bound, meter)
    return bound.best_clique


def maximal_cliques(
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
    min_size: int = 1,
) -> List[Tuple[int, ...]]:
    """Enumerate all maximal cliques (Bron–Kerbosch with pivoting).

    Used by tests as a ground-truth oracle and by the Arabesque-like
    baseline model, whose embedding exploration effectively enumerates
    cliques level by level.  Deliberately stays on hash sets: the
    recursion mutates ``p``/``x`` at every level, which is exactly the
    access pattern sorted arrays are worst at, and as the oracle it is
    worth keeping textbook-shaped.
    """
    adj: Dict[int, Set[int]] = {v: set(ns) for v, ns in adjacency.items()}
    out: List[Tuple[int, ...]] = []

    def bk(r: Set[int], p: Set[int], x: Set[int]) -> None:
        meter.charge(len(p) + len(x) + 1)
        if not p and not x:
            if len(r) >= min_size:
                out.append(tuple(sorted(r)))
            return
        pivot_pool = p | x
        pivot = max(pivot_pool, key=lambda v: (len(adj[v] & p), -v))
        for v in sorted(p - adj[pivot]):
            bk(r | {v}, p & adj[v], x & adj[v])
            p = p - {v}
            x = x | {v}

    bk(set(), set(adj), set())
    return sorted(out)
