"""Simulated network fabric.

Models a switched Gigabit-Ethernet-style cluster network: every message
pays a fixed latency plus a serialisation delay at the sender's NIC
(``size / bandwidth``).  Each node's NIC transmits one message at a
time, so bursts queue — this is what makes batch-style systems (whose
communication all lands at a barrier) show long network-bound stalls,
while G-Miner's pipeline spreads pulls across the whole run.

Messages destined for the local node are delivered immediately with no
cost, matching the paper's local/remote candidate distinction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.metrics import ByteCounter, ResourceMeter


@dataclass
class Message:
    src: int
    dst: int
    size_bytes: int
    payload: Any


class _Nic:
    """One node's transmit queue: serialises outgoing messages."""

    def __init__(self, sim: Simulator, node_id: int, bandwidth: float) -> None:
        self.sim = sim
        self.node_id = node_id
        self.bandwidth = bandwidth
        self.meter = ResourceMeter(name=f"nic-{node_id}", capacity=1)
        self._queue: Deque = deque()
        self._sending = False

    def enqueue(self, size_bytes: int, on_sent: Callable[[], None]) -> None:
        self._queue.append((size_bytes, on_sent))
        self._pump()

    def _pump(self) -> None:
        if self._sending or not self._queue:
            return
        size_bytes, on_sent = self._queue.popleft()
        self._sending = True
        duration = size_bytes / self.bandwidth
        token = self.meter.begin(self.sim.now)

        def finish():
            self._sending = False
            self.meter.end(self.sim.now, token)
            on_sent()
            self._pump()

        self.sim.schedule(duration, finish)


class Network:
    """Cluster-wide message fabric with per-node NIC serialisation.

    Parameters
    ----------
    latency:
        One-way propagation + switching delay in seconds.
    bandwidth:
        Per-NIC bandwidth in bytes/second (default ~1 GbE).
    """

    def __init__(
        self,
        sim: Simulator,
        num_nodes: int,
        latency: float = 1e-4,
        bandwidth: float = 125e6,
    ) -> None:
        self.sim = sim
        self.latency = latency
        self.bandwidth = bandwidth
        self._nics: Dict[int, _Nic] = {
            node_id: _Nic(sim, node_id, bandwidth) for node_id in range(num_nodes)
        }
        self._handlers: Dict[int, Callable[[Message], None]] = {}
        self._down: set = set()
        self.bytes_counter = ByteCounter(name="network")
        self.messages_sent = 0

    def register_handler(self, node_id: int, handler: Callable[[Message], None]) -> None:
        """Install the receive callback for ``node_id``."""
        self._handlers[node_id] = handler

    def set_node_down(self, node_id: int, down: bool = True) -> None:
        """Mark a node unreachable (failure injection drops its traffic)."""
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def node_meter(self, node_id: int) -> ResourceMeter:
        return self._nics[node_id].meter

    def aggregate_utilization(self, start: float, end: float) -> float:
        """Mean NIC utilisation across the cluster over a window."""
        if not self._nics:
            return 0.0
        total = sum(nic.meter.utilization(start, end) for nic in self._nics.values())
        return total / len(self._nics)

    def send(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        payload: Any,
        on_delivered: Optional[Callable[[Message], None]] = None,
    ) -> None:
        """Transmit ``payload`` from ``src`` to ``dst``.

        Delivery invokes ``dst``'s registered handler (and optionally
        ``on_delivered``).  Local messages bypass the NIC entirely.
        """
        if size_bytes < 0:
            raise ValueError("message size cannot be negative")
        message = Message(src=src, dst=dst, size_bytes=size_bytes, payload=payload)
        if src in self._down or dst in self._down:
            return  # dropped: sender or receiver is dead
        self.messages_sent += 1
        if src == dst:
            self._deliver(message, on_delivered)
            return
        self.bytes_counter.add(size_bytes)

        def after_serialise():
            self.sim.schedule(self.latency, lambda: self._deliver(message, on_delivered))

        self._nics[src].enqueue(size_bytes, after_serialise)

    def _deliver(self, message: Message, on_delivered) -> None:
        if message.dst in self._down:
            return
        handler = self._handlers.get(message.dst)
        if handler is not None:
            handler(message)
        if on_delivered is not None:
            on_delivered(message)
