"""Built-in workload plans: the paper's six applications as plans.

A :class:`BuiltinPlan` is a declarative record binding a workload name
to the application the legacy grower implements, plus — where the
pattern vocabulary can express the workload — the equivalent
:class:`~repro.plans.query.PatternQuery`.  ``repro.mine(workload=...)``
resolves here and builds the *legacy* application, so built-in
workloads are bit-identical to the hand-written growers by
construction: same results, same work-unit totals, same golden pins.

The ``query`` field is what the plan-vs-legacy differential axis
exercises: compiling it and running the generic executor must agree
with the legacy grower's value (``tc`` and ``gm`` carry queries; the
clique search, community/cluster growth and graphlet enumeration are
not fixed-pattern computations, so they have none).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.api import GMinerApp
from repro.graph.graph import Graph
from repro.mining.patterns import PAPER_PATTERN, TreePattern
from repro.plans.query import PatternQuery, motif


def _tc_app(graph: Graph, options: Dict[str, Any]) -> GMinerApp:
    from repro.apps import TriangleCountingApp

    return TriangleCountingApp()


def _mcf_app(graph: Graph, options: Dict[str, Any]) -> GMinerApp:
    from repro.apps import MaxCliqueApp

    return MaxCliqueApp()


def _gm_app(graph: Graph, options: Dict[str, Any]) -> GMinerApp:
    from repro.apps import GraphMatchingApp

    return GraphMatchingApp(options.pop("pattern", PAPER_PATTERN))


def _gl_app(graph: Graph, options: Dict[str, Any]) -> GMinerApp:
    from repro.apps import GraphletCountingApp

    return GraphletCountingApp(
        k=options.pop("k", 4), classify=options.pop("classify", True)
    )


def _cd_app(graph: Graph, options: Dict[str, Any]) -> GMinerApp:
    from repro.apps import CommunityDetectionApp

    return CommunityDetectionApp(options.pop("params", None))


def _gc_app(graph: Graph, options: Dict[str, Any]) -> GMinerApp:
    from repro.apps import GraphClusteringApp

    attrs = options.pop("exemplar_attributes", None)
    if attrs is None:
        exemplars = options.pop("exemplars", None)
        if exemplars is None:
            # the repo-wide small-graph convention (cf. the fuzzer):
            # focus on the first three vertices
            exemplars = sorted(graph.vertices())[:3]
        attrs = [graph.attributes(v) for v in exemplars]
    return GraphClusteringApp(attrs, params=options.pop("params", None))


def _gm_query(options: Dict[str, Any]) -> PatternQuery:
    pattern = options.get("pattern", PAPER_PATTERN)
    return PatternQuery.from_tree(pattern, name="gm")


@dataclass(frozen=True)
class BuiltinPlan:
    """One workload of the fixed menu, as a resolvable plan."""

    workload: str
    summary: str
    option_names: Tuple[str, ...]
    _app_factory: Callable[[Graph, Dict[str, Any]], GMinerApp]
    _query_factory: Optional[Callable[[Dict[str, Any]], PatternQuery]] = None

    def build_app(self, graph: Graph, **options: Any) -> GMinerApp:
        """Instantiate the legacy application for this workload."""
        unknown = set(options) - set(self.option_names)
        if unknown:
            accepted = ", ".join(self.option_names) or "none"
            raise TypeError(
                f"unknown option(s) {sorted(unknown)} for workload "
                f"{self.workload!r}; accepted: {accepted}"
            )
        return self._app_factory(graph, dict(options))

    def query(self, **options: Any) -> Optional[PatternQuery]:
        """The pattern-vocabulary equivalent, or ``None`` when the
        workload is not a fixed-pattern computation."""
        if self._query_factory is None:
            return None
        return self._query_factory(dict(options))


BUILTIN_PLANS: Dict[str, BuiltinPlan] = {
    "tc": BuiltinPlan(
        "tc", "exact triangle count", (), _tc_app,
        lambda options: motif("triangle"),
    ),
    "mcf": BuiltinPlan(
        "mcf", "maximum clique (branch-and-bound with global bound)",
        (), _mcf_app,
    ),
    "gm": BuiltinPlan(
        "gm", "labelled tree-pattern embedding count",
        ("pattern",), _gm_app, _gm_query,
    ),
    "gl": BuiltinPlan(
        "gl", "size-k graphlet histogram", ("k", "classify"), _gl_app,
    ),
    "cd": BuiltinPlan(
        "cd", "attribute-coherent community detection", ("params",), _cd_app,
    ),
    "gc": BuiltinPlan(
        "gc", "focused clustering around exemplars",
        ("exemplars", "exemplar_attributes", "params"), _gc_app,
    ),
}


def builtin_plan(workload: str) -> BuiltinPlan:
    """Resolve a workload name; ``ValueError`` lists the menu."""
    try:
        return BUILTIN_PLANS[workload]
    except KeyError:
        known = ", ".join(sorted(BUILTIN_PLANS))
        raise ValueError(
            f"unknown workload {workload!r}; built-in workloads: {known}"
        ) from None
