"""Native execution: run G-Miner jobs for real on a process pool.

The bridge from "models the paper's cluster" to "is itself fast":
``GMinerConfig(execution="native")`` (or ``repro.mine(...,
execution="native")``) routes a job through :func:`run_native`, which
executes the same tasks the simulator models across a multiprocess
pool — per-worker chunk queues with seeded work stealing, the graph
pickled once per worker, candidate-set work on the configured
:mod:`repro.kernels` backend — and merges per-chunk outcomes by chunk
id so results and total work-unit charges are bit-identical at any
worker count, and (for every schedule-independent workload) to the
simulated run itself.  ``python -m repro.verify.fuzz --native-axis``
enforces the contract differentially; DESIGN.md states it precisely.
"""

from repro.native.engine import (
    STEAL_SEED,
    default_native_workers,
    graph_payload,
    run_native,
    seed_chunks,
)
from repro.native.runtime import (
    ChunkOutcome,
    execute_chunk,
    make_data_source,
    run_task,
)

__all__ = [
    "ChunkOutcome",
    "STEAL_SEED",
    "default_native_workers",
    "execute_chunk",
    "graph_payload",
    "make_data_source",
    "run_native",
    "run_task",
    "seed_chunks",
]
