"""``repro.mine`` — the one public mining entrypoint.

Everything the six hand-written applications did, plus arbitrary
motifs, behind a single keyword-only call::

    import repro

    repro.mine(graph, workload="tc")                  # built-in plan
    repro.mine(graph, pattern="tailed-triangle")      # named motif
    repro.mine(graph, pattern=my_tree_pattern)        # tree matching
    repro.mine(graph, pattern=PatternQuery(...))      # full vocabulary

Workload names resolve to the legacy applications (bit-identical to
the historical entry points); every other pattern spelling goes
through the plan compiler and the generic executor.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro import kernels
from repro.core.config import GMinerConfig
from repro.core.job import GMinerJob, JobResult
from repro.graph.graph import Graph
from repro.mining.patterns import TreePattern
from repro.plans.builtins import builtin_plan
from repro.plans.compiler import ExecutionPlan, compile_pattern
from repro.plans.executor import PlanApp, select_step_backends
from repro.plans.query import PatternQuery, motif

_BACKEND_CHOICES = (None, "auto", "reference", "numpy", "bitset")


def resolve_pattern(pattern: Any) -> ExecutionPlan:
    """Turn any accepted pattern spelling into an execution plan.

    Strings name motifs (``ValueError`` for unknown names); a
    :class:`TreePattern` compiles with the legacy matcher semantics; a
    :class:`PatternQuery` compiles as-is; an :class:`ExecutionPlan`
    passes through.
    """
    if isinstance(pattern, ExecutionPlan):
        return pattern
    if isinstance(pattern, str):
        return compile_pattern(motif(pattern))
    if isinstance(pattern, (TreePattern, PatternQuery)):
        return compile_pattern(pattern)
    raise TypeError(
        "pattern must be a motif name, TreePattern, PatternQuery or "
        f"ExecutionPlan, got {type(pattern).__name__}"
    )


def _explain_text(
    describe: str,
    config: GMinerConfig,
    backend: Optional[str],
    step_backends: Optional[Tuple[str, ...]],
) -> str:
    """The ``explain=True`` report: plan text + execution/backend lines."""
    lines = [describe]
    if config.execution == "native":
        from repro.native import default_native_workers

        workers = config.native_workers or default_native_workers()
        lines.append(
            f"execution: native (workers={workers}, "
            f"chunk_size={config.native_chunk_size})"
        )
    else:
        lines.append("execution: sim")
    if step_backends is not None:
        lines.append("backend: auto (per-step: " + ", ".join(step_backends) + ")")
    elif backend == "auto":
        lines.append("backend: auto")
    else:
        lines.append(
            f"backend: {backend or config.kernel_backend or kernels.get_backend()}"
        )
    return "\n".join(lines)


def mine(
    graph: Graph,
    *,
    pattern: Any = None,
    workload: Optional[str] = None,
    config: Optional[GMinerConfig] = None,
    failure_plan: Any = None,
    execution: Optional[str] = None,
    backend: Optional[str] = None,
    explain: bool = False,
    **options: Any,
) -> Any:
    """Mine ``graph`` for a pattern or a built-in workload.

    At least one of ``pattern`` and ``workload`` must be given
    (keyword-only); when both are, ``pattern`` parameterises the
    workload (only ``gm`` accepts that).  ``workload`` is one of the
    six built-ins
    (``tc``/``mcf``/``gm``/``gl``/``cd``/``gc``), executed by the
    legacy grower — results and work units are bit-identical to the
    historical per-app entry points.  ``pattern`` is a named motif, a
    :class:`~repro.mining.patterns.TreePattern`, a
    :class:`~repro.plans.query.PatternQuery` or a pre-compiled
    :class:`~repro.plans.compiler.ExecutionPlan`, run by the generic
    plan executor; the job value is the embedding count.

    ``execution`` overrides ``config.execution`` (``"sim"`` runs the
    modelled cluster, ``"native"`` runs the multiprocess engine —
    bit-identical per DESIGN.md's equivalence contract).  ``backend``
    picks the kernel backend: an explicit name pins every level (exact
    legacy behaviour); ``"auto"`` lets the compiler choose per plan
    step from candidate-set density (pattern path) or defers to the
    runtime's density heuristic (workload path).  Explicit backends
    and ``backend=None`` are untouched by the auto machinery.

    ``explain=True`` runs *nothing*: it returns the compiled plan
    description (or a one-line note for plan-less legacy workloads)
    plus the execution mode and backend choice as a string.

    Extra keyword ``options`` parameterise built-in workloads (e.g.
    ``pattern=`` for ``gm``, ``k=`` for ``gl``, ``exemplars=`` for
    ``gc``); the pattern path accepts none.  ``config`` defaults to
    :class:`~repro.core.config.GMinerConfig`'s single-job defaults;
    ``failure_plan`` is forwarded to the job untouched.  Returns the
    :class:`~repro.core.job.JobResult` (or the explain string).
    """
    if pattern is None and workload is None:
        raise TypeError(
            "mine() needs exactly one of pattern= or workload= "
            "(both are keyword-only)"
        )
    if backend not in _BACKEND_CHOICES:
        raise ValueError(
            f"unknown backend {backend!r}: expected one of "
            f"{[b for b in _BACKEND_CHOICES if b]} or None"
        )
    if config is None:
        config = GMinerConfig()
    if execution is not None:
        config = config.replace(execution=execution)
    if backend is not None and backend != "auto":
        config = config.replace(kernel_backend=backend)

    step_backends: Optional[Tuple[str, ...]] = None
    if workload is not None:
        if pattern is not None:
            # alongside workload=, pattern= is a workload option (gm's
            # tree pattern); workloads that take none reject it by name
            options["pattern"] = pattern
        bp = builtin_plan(workload)
        app = bp.build_app(graph, **options)
        if backend == "auto":
            # the legacy growers run one kernel level; defer to the
            # runtime's own density-based auto resolution
            config = config.replace(kernel_backend="auto")
        if explain:
            query = bp.query(**options)
            if query is not None:
                describe = compile_pattern(query).describe()
            else:
                describe = (
                    f"workload {workload!r}: legacy grower "
                    "(no fixed-pattern plan)"
                )
            return _explain_text(describe, config, backend, None)
    else:
        if options:
            raise TypeError(
                f"unknown option(s) {sorted(options)}: pattern queries "
                "take no extra options — encode constraints in the "
                "PatternQuery itself"
            )
        plan = resolve_pattern(pattern)
        if backend == "auto":
            step_backends = select_step_backends(plan, graph)
        app = PlanApp(plan, step_backends=step_backends)
        if explain:
            return _explain_text(plan.describe(), config, backend, step_backends)
    job = GMinerJob(app, graph, config, failure_plan)
    return job.run()
