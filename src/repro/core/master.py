"""The G-Miner master (paper §5.1).

The master owns cluster-wide coordination: the progress collector and
scheduler (driving task stealing), the global aggregator merge and
broadcast, periodic checkpoint commands, and failure handling.  It is a
network endpoint without a modelled core pool — its work is negligible
next to mining.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set

from repro.core.aggregator import Aggregator
from repro.core.config import GMinerConfig
from repro.core.messages import (
    AggBroadcast,
    AggReport,
    CheckpointCommand,
    MigrateCommand,
    NoTask,
    ProgressReport,
    StealRequest,
    WorkerDown,
    WorkerUp,
)
from repro.sim.cluster import Cluster


class Master:
    """Coordinator for one G-Miner job."""

    def __init__(
        self,
        cluster: Cluster,
        config: GMinerConfig,
        num_workers: int,
        endpoint: int,
        aggregator: Optional[Aggregator],
        controller,
    ) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = config
        self.num_workers = num_workers
        self.endpoint = endpoint
        self.aggregator = aggregator
        self.controller = controller
        self.progress_table: Dict[int, ProgressReport] = {}
        self.agg_partials: Dict[int, Any] = {}
        self.down_workers: Set[int] = set()
        self.steals_brokered = 0
        self.no_task_replies = 0
        self.checkpoint_epoch = 0
        cluster.network.register_handler(endpoint, self._on_message)

    # ------------------------------------------------------------------
    # periodic coordination loops
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic aggregation and checkpoint loops."""
        if self.aggregator is not None:
            self.sim.schedule(self.config.agg_interval, self._agg_tick)
        if self.config.checkpoint_interval is not None:
            self.sim.schedule(self.config.checkpoint_interval, self._checkpoint_tick)

    def _agg_tick(self) -> None:
        if self.controller.finished:
            return
        if self.agg_partials:
            merged = self.aggregator.merge_all(self.agg_partials.values())
            broadcast = AggBroadcast(value=merged)
            for worker in range(self.num_workers):
                if worker not in self.down_workers:
                    self.cluster.network.send(
                        self.endpoint, worker, broadcast.size_bytes(), broadcast
                    )
        self.sim.schedule(self.config.agg_interval, self._agg_tick)

    def _checkpoint_tick(self) -> None:
        if self.controller.finished:
            return
        self.checkpoint_epoch += 1
        command = CheckpointCommand(epoch=self.checkpoint_epoch)
        for worker in range(self.num_workers):
            if worker not in self.down_workers:
                self.cluster.network.send(
                    self.endpoint, worker, command.size_bytes(), command
                )
        self.sim.schedule(self.config.checkpoint_interval, self._checkpoint_tick)

    # ------------------------------------------------------------------
    # task stealing: the progress scheduler (§6.2)
    # ------------------------------------------------------------------

    def _handle_steal_request(self, request: StealRequest) -> None:
        victim = self._most_loaded_worker(exclude=request.worker)
        if victim is None:
            self.no_task_replies += 1
            reply = NoTask(source=-1)
            self.cluster.network.send(
                self.endpoint, request.worker, reply.size_bytes(), reply
            )
            return
        self.steals_brokered += 1
        command = MigrateCommand(dest=request.worker, count=self.config.steal_batch)
        self.cluster.network.send(
            self.endpoint, victim, command.size_bytes(), command
        )

    def _most_loaded_worker(self, exclude: int) -> Optional[int]:
        best: Optional[int] = None
        best_load = 0
        for worker, report in self.progress_table.items():
            if worker == exclude or worker in self.down_workers:
                continue
            load = report.store_size
            if load > best_load:
                best_load = load
                best = worker
        return best

    # ------------------------------------------------------------------
    # failure handling (§7)
    # ------------------------------------------------------------------

    def handle_worker_failure(self, worker: int) -> None:
        self.down_workers.add(worker)
        self.progress_table.pop(worker, None)
        notice = WorkerDown(worker=worker)
        for other in range(self.num_workers):
            if other != worker and other not in self.down_workers:
                self.cluster.network.send(
                    self.endpoint, other, notice.size_bytes(), notice
                )

    def handle_worker_recovery(self, worker: int) -> None:
        self.down_workers.discard(worker)
        notice = WorkerUp(worker=worker)
        for other in range(self.num_workers):
            if other != worker and other not in self.down_workers:
                self.cluster.network.send(
                    self.endpoint, other, notice.size_bytes(), notice
                )

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def _on_message(self, message) -> None:
        payload = message.payload
        if isinstance(payload, ProgressReport):
            self.progress_table[payload.worker] = payload
        elif isinstance(payload, AggReport):
            self.agg_partials[payload.worker] = payload.partial
        elif isinstance(payload, StealRequest):
            self._handle_steal_request(payload)
        else:
            raise TypeError(f"master cannot handle {type(payload).__name__}")
