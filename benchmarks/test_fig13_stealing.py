"""Figure 13 — the task-stealing ablation.

Expected shape: dynamic load balancing helps (or at worst is neutral)
on the skew that BDG-partitioned mining produces."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_fig13_stealing(benchmark):
    report = run_experiment(benchmark, experiments.fig13_stealing)
    helped = sum(
        1 for d in report.data.values()
        if d["en"].total_seconds <= d["dis"].total_seconds * 1.05
    )
    assert helped >= 4
    migrated = sum(d["en"].stats["tasks_migrated"] for d in report.data.values())
    assert migrated > 0
    # the task-rich TC workload shows the paper's clear speedup
    tc = report.data["tc-orkut-s"]
    assert tc["dis"].total_seconds > tc["en"].total_seconds * 1.2
