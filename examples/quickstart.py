#!/usr/bin/env python
"""Quickstart: count triangles with G-Miner in ~30 lines.

Builds a small social-network-like graph, runs the TriangleCounting
application on a simulated 4-node cluster, and prints the result along
with the resource metrics the system tracks for every job.

Run:  python examples/quickstart.py
"""

from repro.apps import TriangleCountingApp
from repro.core import GMinerConfig, GMinerJob
from repro.graph.generators import preferential_attachment_graph
from repro.sim.cluster import ClusterSpec


def main() -> None:
    # 1. A graph.  Any repro.graph.Graph works: load one from text with
    #    repro.graph.load_adjacency_text, pick a scaled paper dataset
    #    from repro.graph.load_dataset, or generate one:
    graph = preferential_attachment_graph(
        n=500, m=8, triangle_prob=0.6, seed=7, max_degree=60
    )
    print(f"input graph: {graph}")

    # 2. A cluster.  This is the simulated testbed: nodes, cores per
    #    node, memory, network and disk speeds all live in the spec.
    config = GMinerConfig(cluster=ClusterSpec(num_nodes=4, cores_per_node=4))

    # 3. An application + a job.  TriangleCountingApp seeds one task
    #    per vertex; each task pulls its higher neighbours' adjacency
    #    and counts the triangles it is responsible for.
    job = GMinerJob(TriangleCountingApp(), graph, config)
    result = job.run()

    # 4. The result object carries everything the paper's tables report.
    print(f"status            : {result.status.value}")
    print(f"triangles         : {result.value}")
    print(f"simulated time    : {result.total_seconds:.3f}s "
          f"(setup {result.setup_seconds:.3f}s + mining {result.mining_seconds:.3f}s)")
    print(f"CPU utilisation   : {100 * result.cpu_utilization:.1f}%")
    print(f"peak memory       : {result.peak_memory_bytes / 1e6:.2f} MB")
    print(f"network traffic   : {result.network_bytes / 1e6:.2f} MB")
    print(f"tasks executed    : {int(result.stats['tasks_created'])}")
    print(f"cache hit rate    : {result.stats['cache_hit_rate']:.2f}")


if __name__ == "__main__":
    main()
