"""Content-keyed build cache for expensive experiment inputs.

Every experiment cell starts by materialising the same few inputs — a
generated dataset (``repro.graph.datasets.load_dataset``) and a
partition assignment (BDG or hash) — and a full bench invocation
repeats those builds dozens of times.  :class:`BuildCache` memoises
them under a *content key*: a hash of every parameter that can change
the built value (dataset name, decoration seeds, a fingerprint of the
builder's source, the graph fingerprint for partitions).  Entries live
in an in-process dict and, when persistence is on, as pickle files
under ``.repro-cache/`` so repeated invocations skip graph generation
entirely.

The cache is *correctness-neutral*: builders are deterministic, so a
hit returns exactly what a rebuild would.  Editing a generator (or its
seeds) changes the source fingerprint and invalidates the entry.

A module-global "active" cache is what the rest of the system consults
(:func:`get_build_cache`); ``repro.graph.datasets`` and
``repro.core.job`` look it up lazily so nothing changes when no cache
is active.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
from typing import Any, Callable, Dict, Optional

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump to invalidate every persisted entry (e.g. when the pickle
#: layout of cached values changes incompatibly).
CACHE_FORMAT_VERSION = 1


def content_key(kind: str, params: Dict[str, Any]) -> str:
    """Stable hex digest of a parameter dict (the cache key)."""
    payload = json.dumps(
        {"kind": kind, "v": CACHE_FORMAT_VERSION, "params": params},
        sort_keys=True,
        default=repr,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def source_fingerprint(obj: Any) -> str:
    """Hash of an object's source code (falls back to its repr).

    Used to key cached values on the *code* that built them, so editing
    a generator or partitioner invalidates its entries.
    """
    try:
        text = inspect.getsource(obj)
    except (OSError, TypeError):
        text = repr(obj)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class BuildCache:
    """Two-level (memory + disk) cache of deterministic build outputs.

    ``persist=False`` keeps the cache purely in-process (no
    ``.repro-cache/`` directory is created).  Hit/miss counters power
    the report footers; ``disk_hits`` counts the subset of hits served
    from a previous invocation's persisted entry.
    """

    def __init__(
        self,
        directory: str = DEFAULT_CACHE_DIR,
        persist: bool = True,
    ) -> None:
        self.directory = directory
        self.persist = persist
        self._memory: Dict[str, Any] = {}
        self.hits = 0
        self.disk_hits = 0
        self.misses = 0

    # -- stats ---------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Counters as a plain dict (report footers, tests)."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "entries": len(self._memory),
        }

    # -- core ----------------------------------------------------------

    def _path(self, kind: str, key: str) -> str:
        return os.path.join(self.directory, f"{kind}-{key}.pkl")

    def lookup(self, kind: str, params: Dict[str, Any], build: Callable[[], Any]) -> Any:
        """Return the cached value for ``(kind, params)``, building on miss."""
        key = content_key(kind, params)
        if key in self._memory:
            self.hits += 1
            return self._memory[key]
        if self.persist:
            path = self._path(kind, key)
            if os.path.exists(path):
                try:
                    with open(path, "rb") as fh:
                        value = pickle.load(fh)
                except Exception:
                    pass  # corrupt/stale entry: fall through and rebuild
                else:
                    self.hits += 1
                    self.disk_hits += 1
                    self._memory[key] = value
                    return value
        self.misses += 1
        value = build()
        self._memory[key] = value
        if self.persist:
            self._write(kind, key, value)
        return value

    def _write(self, kind: str, key: str, value: Any) -> None:
        """Persist one entry; atomic so concurrent workers never read a
        half-written pickle (os.replace is atomic on POSIX)."""
        try:
            os.makedirs(self.directory, exist_ok=True)
            path = self._path(kind, key)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            pass  # persistence is best-effort; the value is still returned

    def clear_memory(self) -> None:
        """Drop the in-process level (disk entries survive)."""
        self._memory.clear()

    def __repr__(self) -> str:
        return (
            f"BuildCache(dir={self.directory!r}, persist={self.persist}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# ----------------------------------------------------------------------
# The active cache: what load_dataset / GMinerJob consult.
# ----------------------------------------------------------------------

_active: Optional[BuildCache] = None


def set_build_cache(cache: Optional[BuildCache]) -> Optional[BuildCache]:
    """Install ``cache`` as the process-wide active build cache.

    Returns the previously active cache so callers can restore it.
    """
    global _active
    previous = _active
    _active = cache
    return previous


def get_build_cache() -> Optional[BuildCache]:
    """The process-wide active build cache, or None when caching is off."""
    return _active
