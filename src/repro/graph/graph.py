"""Core graph structure.

A :class:`Graph` stores, per vertex: an integer ID, a sorted adjacency
tuple ``Γ(v)``, an optional label (single character/str, used by graph
matching) and an optional attribute tuple ``a(v)`` (used by community
detection and clustering).  This mirrors the paper's vertex state
``(id(v), Γ(v), a(v))`` (§4, graph notations).

Adjacency is undirected and deduplicated; self-loops are dropped at
construction.  Vertices are exposed both in bulk (for partitioners and
generators) and as :class:`VertexData` records (the unit that G-Miner
workers pull over the network), with a byte-size estimate used by the
memory and network cost models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import kernels

#: Estimated bytes per vertex-ID / per attribute element in serialised
#: form; used uniformly by the memory gauge and the network model.
ID_BYTES = 8
LABEL_BYTES = 4
ATTR_BYTES = 8
VERTEX_OVERHEAD_BYTES = 16


@dataclass(frozen=True)
class VertexData:
    """The transferable state of one vertex: ``(id, Γ(v), label, a(v))``.

    This is what a remote pull returns and what the RCV cache stores.
    """

    vid: int
    neighbors: Tuple[int, ...]
    label: Optional[str] = None
    attributes: Tuple[int, ...] = ()

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def neighbors_array(self) -> Any:
        """Γ(v) as a kernel-backend array handle, cached per backend.

        The handle feeds :mod:`repro.kernels` set operations directly,
        so tasks probing the same pulled vertex repeatedly (every seed
        whose neighbourhood overlaps) skip the per-call conversion.
        """
        backend = kernels.get_backend()
        cached = self.__dict__.get("_neighbors_array")
        if cached is not None and cached[0] == backend:
            return cached[1]
        arr = kernels.as_array(self.neighbors)
        object.__setattr__(self, "_neighbors_array", (backend, arr))
        return arr

    def estimate_size(self) -> int:
        """Serialised size estimate in bytes (network/memory cost model)."""
        size = VERTEX_OVERHEAD_BYTES + ID_BYTES * (1 + len(self.neighbors))
        if self.label is not None:
            size += LABEL_BYTES
        size += ATTR_BYTES * len(self.attributes)
        return size


class Graph:
    """Undirected graph with optional labels and attributes."""

    def __init__(self) -> None:
        self._adj: Dict[int, Tuple[int, ...]] = {}
        self._labels: Dict[int, str] = {}
        self._attrs: Dict[int, Tuple[int, ...]] = {}
        # CSR-style cached views: backend name -> {vid: array handle}.
        # Adjacency is immutable after construction (labels/attributes
        # attach separately), so views never need invalidation.
        self._adj_views: Dict[str, Dict[int, Any]] = {}

    # -- construction -------------------------------------------------

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[int, int]],
        vertices: Optional[Iterable[int]] = None,
    ) -> "Graph":
        """Build from an edge list (undirected, self-loops dropped)."""
        neighbor_sets: Dict[int, set] = {}
        if vertices is not None:
            for v in vertices:
                neighbor_sets.setdefault(v, set())
        for u, v in edges:
            if u == v:
                continue
            neighbor_sets.setdefault(u, set()).add(v)
            neighbor_sets.setdefault(v, set()).add(u)
        graph = cls()
        graph._adj = {v: tuple(sorted(ns)) for v, ns in neighbor_sets.items()}
        return graph

    @classmethod
    def from_adjacency(cls, adj: Dict[int, Sequence[int]]) -> "Graph":
        """Build from an adjacency mapping; symmetrised and deduplicated."""
        edges = [(u, v) for u, ns in adj.items() for v in ns]
        return cls.from_edges(edges, vertices=adj.keys())

    def set_label(self, vid: int, label: str) -> None:
        """Attach a mining label (graph matching) to a vertex."""
        self._require(vid)
        self._labels[vid] = label

    def set_labels(self, labels: Dict[int, str]) -> None:
        """Attach labels in bulk."""
        for vid, label in labels.items():
            self.set_label(vid, label)

    def set_attributes(self, vid: int, attributes: Sequence[int]) -> None:
        """Attach an attribute list ``a(v)`` to a vertex."""
        self._require(vid)
        self._attrs[vid] = tuple(attributes)

    def set_all_attributes(self, attrs: Dict[int, Sequence[int]]) -> None:
        """Attach attribute lists in bulk."""
        for vid, a in attrs.items():
            self.set_attributes(vid, a)

    def _require(self, vid: int) -> None:
        if vid not in self._adj:
            raise KeyError(f"vertex {vid} not in graph")

    # -- accessors -----------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """|V|."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """|E| (undirected edges)."""
        return sum(len(ns) for ns in self._adj.values()) // 2

    def vertices(self) -> Iterator[int]:
        """Vertex ids in ascending order."""
        return iter(sorted(self._adj))

    def has_vertex(self, vid: int) -> bool:
        """True when ``vid`` is a vertex of this graph."""
        return vid in self._adj

    def has_edge(self, u: int, v: int) -> bool:
        """True when the undirected edge (u, v) exists."""
        ns = self._adj.get(u)
        if ns is None:
            return False
        # adjacency tuples are sorted; use binary search for large lists
        import bisect

        i = bisect.bisect_left(ns, v)
        return i < len(ns) and ns[i] == v

    def neighbors(self, vid: int) -> Tuple[int, ...]:
        """Γ(v): the sorted adjacency tuple of ``vid``."""
        self._require(vid)
        return self._adj[vid]

    def neighbors_array(self, vid: int) -> Any:
        """Γ(v) as a kernel-backend array handle (cached).

        Built lazily per vertex and memoised per active kernel backend,
        so mining kernels stop rebuilding ``set(...)``/array copies of
        the same adjacency on every seed.
        """
        self._require(vid)
        view = self._adj_views.setdefault(kernels.get_backend(), {})
        arr = view.get(vid)
        if arr is None:
            arr = kernels.as_array(self._adj[vid])
            view[vid] = arr
        return arr

    def adjacency_view(self) -> Dict[int, Any]:
        """The whole adjacency as kernel-backend array handles.

        A CSR-style snapshot ``{v: Γ(v) handle}`` covering every
        vertex, cached per active backend; sequential kernels and
        oracles iterate this instead of converting per seed.
        """
        view = self._adj_views.setdefault(kernels.get_backend(), {})
        if len(view) != len(self._adj):
            for vid, ns in self._adj.items():
                if vid not in view:
                    view[vid] = kernels.as_array(ns)
        return view

    def degree(self, vid: int) -> int:
        """|Γ(v)|."""
        self._require(vid)
        return len(self._adj[vid])

    def max_degree(self) -> int:
        """The largest vertex degree (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(ns) for ns in self._adj.values())

    def avg_degree(self) -> float:
        """Mean vertex degree, 2|E|/|V|."""
        if not self._adj:
            return 0.0
        return 2.0 * self.num_edges / self.num_vertices

    def label(self, vid: int) -> Optional[str]:
        """The vertex's label, or None when unlabelled."""
        return self._labels.get(vid)

    def attributes(self, vid: int) -> Tuple[int, ...]:
        """The vertex's attribute list ``a(v)`` (empty when absent)."""
        return self._attrs.get(vid, ())

    @property
    def is_attributed(self) -> bool:
        """True when any vertex carries attributes."""
        return bool(self._attrs)

    @property
    def is_labeled(self) -> bool:
        """True when any vertex carries a label."""
        return bool(self._labels)

    def attribute_dimensions(self) -> int:
        """Number of distinct attribute values used (|Attr| in Table 2)."""
        values = set()
        for attrs in self._attrs.values():
            values.update(attrs)
        return len(values)

    def vertex_data(self, vid: int) -> VertexData:
        """Package a vertex's full transferable state."""
        self._require(vid)
        return VertexData(
            vid=vid,
            neighbors=self._adj[vid],
            label=self._labels.get(vid),
            attributes=self._attrs.get(vid, ()),
        )

    def estimate_size(self) -> int:
        """Serialised size estimate of the whole graph in bytes."""
        return sum(self.vertex_data(v).estimate_size() for v in self._adj)

    def fingerprint(self) -> str:
        """Stable content hash of the full graph state.

        Covers adjacency, labels and attributes, so any two graphs with
        the same fingerprint produce identical partition assignments
        and mining results; used as a build-cache key component.
        """
        import hashlib

        h = hashlib.sha256()
        for v in sorted(self._adj):
            h.update(str(v).encode())
            h.update(b"|")
            h.update(",".join(map(str, self._adj[v])).encode())
            label = self._labels.get(v)
            if label is not None:
                h.update(b"L" + str(label).encode())
            attrs = self._attrs.get(v)
            if attrs:
                h.update(b"A" + ",".join(map(str, attrs)).encode())
            h.update(b"\n")
        return h.hexdigest()[:24]

    # -- transformations -----------------------------------------------

    def subgraph(self, vertex_ids: Iterable[int]) -> "Graph":
        """Induced subgraph on ``vertex_ids`` (labels/attrs carried over)."""
        keep = set(vertex_ids)
        sub = Graph()
        sub._adj = {
            v: tuple(n for n in self._adj[v] if n in keep)
            for v in keep
            if v in self._adj
        }
        sub._labels = {v: l for v, l in self._labels.items() if v in keep}
        sub._attrs = {v: a for v, a in self._attrs.items() if v in keep}
        return sub

    def relabeled(self) -> Tuple["Graph", Dict[int, int]]:
        """Return a copy with vertices renumbered 0..n-1, plus the mapping."""
        mapping = {vid: i for i, vid in enumerate(sorted(self._adj))}
        out = Graph()
        out._adj = {
            mapping[v]: tuple(sorted(mapping[n] for n in ns))
            for v, ns in self._adj.items()
        }
        out._labels = {mapping[v]: l for v, l in self._labels.items()}
        out._attrs = {mapping[v]: a for v, a in self._attrs.items()}
        return out, mapping

    def __repr__(self) -> str:
        return (
            f"Graph(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"labeled={self.is_labeled}, attributed={self.is_attributed})"
        )
