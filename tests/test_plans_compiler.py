"""Unit tests for the pattern-plan compiler (repro.plans).

Covers the query vocabulary (motifs, PatternQuery, tree flattening),
automorphism enumeration, Grochow–Kellis symmetry breaking, greedy
extension-order derivation, and the structured fail-fast validation
shared with TreePattern.
"""

import pytest

from repro.mining.patterns import (
    PAPER_PATTERN,
    PatternNode,
    PatternValidationError,
    TreePattern,
    make_pattern,
)
from repro.plans import (
    MOTIFS,
    PatternQuery,
    automorphisms,
    break_symmetry,
    compile_pattern,
    flatten_pattern,
    motif,
)

# |Aut| of each named motif, independently known
MOTIF_AUTOMORPHISMS = {
    "triangle": 6,
    "tailed-triangle": 2,
    "4-clique": 24,
    "4-cycle": 8,
    "diamond": 4,
    "3-path": 2,
    "3-star": 6,
    "paper-figure1": 1,  # five distinct labels: only the identity
}


class TestQueryVocabulary:
    def test_flatten_pattern_global_indexing(self):
        labels, edges = flatten_pattern(PAPER_PATTERN)
        assert labels == ("a", "b", "c", "d", "e")
        # root -> level 1, then level-2 nodes under their parents
        # (d and e hang off the level-1 node at position 1, i.e. "c")
        assert set(edges) == {(0, 1), (0, 2), (2, 3), (2, 4)}

    def test_every_motif_compiles(self):
        for name in MOTIFS:
            plan = compile_pattern(motif(name))
            assert plan.num_nodes == len(plan.order) == len(plan.steps) + 1

    def test_unknown_motif_lists_menu(self):
        with pytest.raises(ValueError, match="tailed-triangle"):
            motif("pentagon")

    def test_from_tree_keeps_legacy_sibling_semantics(self):
        query = PatternQuery.from_tree(PAPER_PATTERN)
        assert query.symmetry == "none"


class TestAutomorphisms:
    @pytest.mark.parametrize("name,expected", sorted(MOTIF_AUTOMORPHISMS.items()))
    def test_motif_automorphism_counts(self, name, expected):
        query = motif(name)
        perms = automorphisms(query.node_labels(), query.all_edges())
        assert len(perms) == expected
        assert compile_pattern(query).num_automorphisms == expected

    def test_labels_restrict_automorphisms(self):
        # an a-b edge has no nontrivial label-preserving automorphism
        query = PatternQuery(pattern=make_pattern("a", [("b", 0)]))
        perms = automorphisms(query.node_labels(), query.all_edges())
        assert list(perms) == [(0, 1)]

    def test_break_symmetry_kills_all_nontrivial_perms(self):
        query = motif("4-clique")
        perms = automorphisms(query.node_labels(), query.all_edges())
        constraints = break_symmetry(perms)
        # enough constraints to pin a total order on the 4 clique nodes
        assert len(constraints) >= 3
        identity = tuple(range(4))
        survivors = [
            p
            for p in perms
            if all(p[a] < p[b] for a, b in constraints)
        ]
        assert survivors == [identity]

    def test_asymmetric_pattern_needs_no_constraints(self):
        plan = compile_pattern(PatternQuery.from_tree(PAPER_PATTERN))
        assert plan.num_automorphisms == 1
        assert plan.orders == ()


class TestExtensionOrder:
    def test_order_starts_at_root_and_stays_connected(self):
        for name in MOTIFS:
            plan = compile_pattern(motif(name))
            assert plan.order[0] == 0
            adjacency = {i: set() for i in range(plan.num_nodes)}
            for a, b in plan.edges:
                adjacency[a].add(b)
                adjacency[b].add(a)
            placed = {plan.order[0]}
            for node in plan.order[1:]:
                assert adjacency[node] & placed, f"{name}: {node} disconnected"
                placed.add(node)

    def test_tailed_triangle_grows_triangle_first(self):
        # degree-greedy: both triangle partners placed before the tail
        plan = compile_pattern(motif("tailed-triangle"))
        assert plan.order == (0, 2, 1, 3)

    def test_final_step_is_fused_count(self):
        for name in MOTIFS:
            plan = compile_pattern(motif(name))
            assert plan.steps[-1].counting
            assert not any(step.counting for step in plan.steps[:-1])

    def test_describe_mentions_symmetry_and_steps(self):
        text = compile_pattern(motif("triangle")).describe()
        assert "|Aut| = 6" in text
        assert "count" in text


class TestTreePatternValidation:
    def test_make_pattern_validates(self):
        with pytest.raises(PatternValidationError, match="empty-label"):
            make_pattern("", [("b", 0)])

    def test_bad_parent_index(self):
        with pytest.raises(PatternValidationError) as info:
            make_pattern("a", [("b", 0)], [("c", 7)])
        assert "bad-parent" in info.value.codes

    def test_all_errors_collected(self):
        pattern = TreePattern(root_label="", levels=((PatternNode("b", 3),),))
        with pytest.raises(PatternValidationError) as info:
            pattern.validate()
        assert set(info.value.codes) == {"empty-label", "bad-parent"}

    def test_unreachable_level(self):
        pattern = TreePattern(root_label="a", levels=((), (PatternNode("b", 0),)))
        with pytest.raises(PatternValidationError) as info:
            pattern.validate()
        assert "empty-level" in info.value.codes
        assert "unreachable-level" in info.value.codes

    def test_duplicate_siblings_stay_legal(self):
        # the legacy matcher counts sibling permutations: (b,b) under one
        # root is a meaningful pattern, not an error
        make_pattern("a", [("b", 0), ("b", 0)]).validate()


class TestPatternQueryValidation:
    def test_single_node_pattern_rejected_by_compiler(self):
        with pytest.raises(PatternValidationError, match="pattern-too-small"):
            compile_pattern(make_pattern("a"))

    def test_edge_out_of_range(self):
        query = PatternQuery(pattern=PAPER_PATTERN, edges=((0, 9),))
        with pytest.raises(PatternValidationError) as info:
            query.validate()
        assert "bad-edge" in info.value.codes

    def test_duplicate_edge(self):
        query = PatternQuery(pattern=PAPER_PATTERN, edges=((1, 0),))
        with pytest.raises(PatternValidationError) as info:
            query.validate()
        assert "duplicate-edge" in info.value.codes

    def test_contradictory_order(self):
        query = PatternQuery(pattern=PAPER_PATTERN, orders=((0, 1), (1, 0)))
        with pytest.raises(PatternValidationError) as info:
            query.validate()
        assert "contradictory-order" in info.value.codes

    def test_unknown_predicate_op(self):
        query = PatternQuery(pattern=PAPER_PATTERN, predicates=((1, "likes", 3),))
        with pytest.raises(PatternValidationError) as info:
            query.validate()
        assert "bad-predicate" in info.value.codes

    def test_bad_symmetry_mode(self):
        query = PatternQuery(pattern=PAPER_PATTERN, symmetry="most")
        with pytest.raises(PatternValidationError) as info:
            query.validate()
        assert "bad-symmetry" in info.value.codes

    def test_compile_rejects_unsupported_input(self):
        with pytest.raises(TypeError):
            compile_pattern(42)
