"""Unit tests for the five application Task classes, driven directly
(without the distributed runtime) through their round protocol."""

import pytest

from repro.apps.community_detection import CDTask, CommunityDetectionApp
from repro.apps.graph_clustering import GCTask, GraphClusteringApp
from repro.apps.graph_matching import GMTask, GraphMatchingApp
from repro.apps.maximal_clique import MCFTask, MaxCliqueApp
from repro.apps.triangle_counting import TCTask, TriangleCountingApp
from repro.core.task import TaskEnv
from repro.graph.graph import Graph, VertexData
from repro.mining.community import CommunityParams
from repro.mining.patterns import PAPER_PATTERN, make_pattern


def drive(task, graph, env=None, max_rounds=200):
    """Feed a task its pulled data straight from the graph until done."""
    env = env or TaskEnv(worker_id=0)
    rounds = 0
    while not task.finished:
        rounds += 1
        assert rounds <= max_rounds, "task did not terminate"
        cand_objs = {
            vid: graph.vertex_data(vid)
            for vid in task.candidates
            if graph.has_vertex(vid)
        }
        task.run_round(cand_objs, env)
    return task.result


class TestTCTask:
    def test_counts_seed_triangles(self, tiny_graph):
        task = TCTask(tiny_graph.vertex_data(0))
        assert drive(task, tiny_graph) == 1

    def test_single_round(self, tiny_graph):
        task = TCTask(tiny_graph.vertex_data(1))
        drive(task, tiny_graph)
        assert task.round == 1

    def test_app_skips_hopeless_seeds(self, tiny_graph):
        app = TriangleCountingApp()
        assert app.make_task(tiny_graph.vertex_data(5)) is None  # degree 1
        assert app.make_task(tiny_graph.vertex_data(0)) is not None

    def test_app_combination(self):
        assert TriangleCountingApp().combine_results([1, None, 2]) == 3


class TestMCFTask:
    def test_finds_clique_containing_seed(self, tiny_graph):
        task = MCFTask(tiny_graph.vertex_data(0))
        result = drive(task, tiny_graph)
        assert result == (0, 1, 2)

    def test_pruned_by_global_bound(self, tiny_graph):
        task = MCFTask(tiny_graph.vertex_data(0))
        env = TaskEnv(worker_id=0, aggregated=10)  # unbeatable bound
        result = drive(task, tiny_graph, env)
        assert result is None

    def test_pushes_improvement_to_aggregator(self, tiny_graph):
        pushed = []
        task = MCFTask(tiny_graph.vertex_data(0))
        env = TaskEnv(worker_id=0, aggregated=0, push=pushed.append)
        drive(task, tiny_graph, env)
        assert pushed == [3]

    def test_app_skips_max_vid(self, tiny_graph):
        app = MaxCliqueApp()
        assert app.make_task(tiny_graph.vertex_data(5)) is None

    def test_app_combination_picks_largest(self):
        app = MaxCliqueApp()
        assert app.combine_results([(1, 2), None, (3, 4, 5)]) == (3, 4, 5)


class TestGMTask:
    @pytest.fixture
    def labeled(self):
        g = Graph.from_edges([(0, 1), (0, 2), (2, 3), (2, 4)])
        g.set_labels({0: "a", 1: "b", 2: "c", 3: "d", 4: "e"})
        return g

    def test_full_pattern_match(self, labeled):
        task = GMTask(labeled.vertex_data(0), PAPER_PATTERN)
        assert drive(task, labeled) == 1

    def test_rounds_equal_pattern_depth(self, labeled):
        task = GMTask(labeled.vertex_data(0), PAPER_PATTERN)
        drive(task, labeled)
        assert task.round == PAPER_PATTERN.depth

    def test_dead_end_finishes_early(self, labeled):
        pattern = make_pattern("a", [("z", 0)])
        task = GMTask(labeled.vertex_data(0), pattern)
        assert drive(task, labeled) is None

    def test_app_seeds_only_root_label(self, labeled):
        app = GraphMatchingApp()
        assert app.make_task(labeled.vertex_data(0)) is not None
        assert app.make_task(labeled.vertex_data(1)) is None

    def test_split_preserves_total(self, labeled):
        # give the root two 'c' children paths so partials fan out
        g = Graph.from_edges([(0, 1), (0, 2), (0, 5), (2, 3), (2, 4), (5, 6), (5, 7)])
        g.set_labels({0: "a", 1: "b", 2: "c", 3: "d", 4: "e",
                      5: "c", 6: "d", 7: "e"})
        whole = GMTask(g.vertex_data(0), PAPER_PATTERN)
        drive(whole, g)
        total = whole.result

        task = GMTask(g.vertex_data(0), PAPER_PATTERN)
        env = TaskEnv(worker_id=0)
        cand = {v: g.vertex_data(v) for v in task.candidates}
        task.run_round(cand, env)  # round 1: partials fan out
        children = task.split()
        assert children and len(children) == 2
        child_total = 0
        for child in children:
            drive(child, g)
            child_total += child.result or 0
        assert child_total == total

    def test_split_refuses_single_partial(self, labeled):
        task = GMTask(labeled.vertex_data(0), PAPER_PATTERN)
        assert task.split() is None

    def test_context_size_grows_with_partials(self, labeled):
        task = GMTask(labeled.vertex_data(0), PAPER_PATTERN)
        before = task.context_size()
        env = TaskEnv(worker_id=0)
        cand = {v: labeled.vertex_data(v) for v in task.candidates}
        task.run_round(cand, env)
        assert task.context_size() > before


class TestCDTask:
    @pytest.fixture
    def clique_graph(self):
        g = Graph.from_edges([(i, j) for i in range(4) for j in range(i + 1, 4)])
        for v in g.vertices():
            g.set_attributes(v, [1, 2])
        return g

    def test_reports_community_at_min_seed(self, clique_graph):
        params = CommunityParams(tau=0.5, gamma=0.5, min_size=3, max_size=8)
        task = CDTask(clique_graph.vertex_data(0), params)
        assert drive(task, clique_graph) == (0, 1, 2, 3)

    def test_non_min_seed_reports_none(self, clique_graph):
        params = CommunityParams(tau=0.5, gamma=0.5, min_size=3, max_size=8)
        task = CDTask(clique_graph.vertex_data(2), params)
        assert drive(task, clique_graph) is None

    def test_app_skips_isolated(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        g.set_attributes(2, [1])
        assert CommunityDetectionApp().make_task(g.vertex_data(2)) is None


class TestGCTask:
    def test_focused_cluster_via_app(self):
        g = Graph.from_edges([(i, j) for i in range(5) for j in range(i + 1, 5)])
        for v in g.vertices():
            g.set_attributes(v, [1, 2])
        app = GraphClusteringApp([[1, 2], [1, 2]])
        task = app.make_task(g.vertex_data(0))
        result = drive(task, g)
        assert result == (0, 1, 2, 3, 4)

    def test_app_requires_exemplars(self):
        with pytest.raises(ValueError):
            GraphClusteringApp([])
