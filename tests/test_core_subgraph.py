"""Unit tests for the task subgraph structure."""

import pytest

from repro.core.subgraph import Subgraph


class TestMutation:
    def test_add_nodes(self):
        s = Subgraph()
        s.add_node(3)
        s.add_nodes([1, 2])
        assert list(s.nodes()) == [1, 2, 3]
        assert len(s) == 3

    def test_add_edge_adds_endpoints(self):
        s = Subgraph()
        s.add_edge(5, 2)
        assert s.has_node(5) and s.has_node(2)
        assert s.has_edge(2, 5)
        assert s.has_edge(5, 2)

    def test_self_loop_rejected(self):
        s = Subgraph()
        with pytest.raises(ValueError):
            s.add_edge(1, 1)

    def test_remove_node_drops_incident_edges(self):
        s = Subgraph()
        s.add_edge(1, 2)
        s.add_edge(2, 3)
        s.remove_node(2)
        assert not s.has_node(2)
        assert s.num_edges == 0
        assert s.has_node(1) and s.has_node(3)

    def test_duplicate_edges_idempotent(self):
        s = Subgraph()
        s.add_edge(1, 2)
        s.add_edge(2, 1)
        assert s.num_edges == 1


class TestSplit:
    def test_split_components(self):
        s = Subgraph()
        s.add_edge(1, 2)
        s.add_edge(3, 4)
        s.add_node(9)
        parts = s.split()
        node_sets = sorted(tuple(p.nodes()) for p in parts)
        assert node_sets == [(1, 2), (3, 4), (9,)]

    def test_split_preserves_edges(self):
        s = Subgraph()
        s.add_edge(1, 2)
        s.add_edge(2, 3)
        parts = s.split()
        assert len(parts) == 1
        assert parts[0].num_edges == 2

    def test_split_empty(self):
        assert Subgraph().split() == []


class TestAccessors:
    def test_min_node(self):
        s = Subgraph()
        assert s.min_node() is None
        s.add_nodes([5, 3, 9])
        assert s.min_node() == 3

    def test_contains(self):
        s = Subgraph()
        s.add_node(2)
        assert 2 in s
        assert 3 not in s

    def test_copy_is_independent(self):
        s = Subgraph()
        s.add_edge(1, 2)
        c = s.copy()
        c.add_node(99)
        assert not s.has_node(99)

    def test_estimate_size_grows(self):
        s = Subgraph()
        base = s.estimate_size()
        s.add_edge(1, 2)
        assert s.estimate_size() > base

    def test_edges_sorted(self):
        s = Subgraph()
        s.add_edge(5, 1)
        s.add_edge(2, 3)
        assert list(s.edges()) == [(1, 5), (2, 3)]

    def test_node_set_is_copy(self):
        s = Subgraph()
        s.add_node(1)
        ns = s.node_set()
        ns.add(99)
        assert not s.has_node(99)
