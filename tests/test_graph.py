"""Unit tests for the core Graph structure."""

import pytest

from repro.graph.graph import Graph, VertexData


class TestConstruction:
    def test_from_edges_symmetrises(self, tiny_graph):
        assert tiny_graph.has_edge(0, 1)
        assert tiny_graph.has_edge(1, 0)

    def test_self_loops_dropped(self):
        g = Graph.from_edges([(0, 0), (0, 1)])
        assert g.num_edges == 1
        assert not g.has_edge(0, 0)

    def test_duplicate_edges_dropped(self):
        g = Graph.from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_isolated_vertices_preserved(self):
        g = Graph.from_edges([(0, 1)], vertices=[0, 1, 2])
        assert g.num_vertices == 3
        assert g.degree(2) == 0

    def test_from_adjacency(self):
        g = Graph.from_adjacency({0: [1, 2], 1: [0], 2: []})
        assert g.num_edges == 2
        assert g.has_edge(0, 2)  # symmetrised from 0's list


class TestAccessors:
    def test_counts(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_edges == 7

    def test_neighbors_sorted(self, tiny_graph):
        assert tiny_graph.neighbors(1) == (0, 2, 3)

    def test_degree(self, tiny_graph):
        assert tiny_graph.degree(3) == 3
        assert tiny_graph.max_degree() == 3
        assert tiny_graph.avg_degree() == pytest.approx(14 / 6)

    def test_has_edge_binary_search(self, tiny_graph):
        assert tiny_graph.has_edge(3, 4)
        assert not tiny_graph.has_edge(0, 5)
        assert not tiny_graph.has_edge(99, 0)

    def test_missing_vertex_raises(self, tiny_graph):
        with pytest.raises(KeyError):
            tiny_graph.neighbors(42)

    def test_vertices_sorted(self, tiny_graph):
        assert list(tiny_graph.vertices()) == [0, 1, 2, 3, 4, 5]


class TestLabelsAndAttributes:
    def test_labels(self, tiny_graph):
        tiny_graph.set_label(0, "a")
        assert tiny_graph.label(0) == "a"
        assert tiny_graph.label(1) is None
        assert tiny_graph.is_labeled

    def test_label_on_missing_vertex_raises(self, tiny_graph):
        with pytest.raises(KeyError):
            tiny_graph.set_label(42, "a")

    def test_attributes(self, tiny_graph):
        tiny_graph.set_attributes(0, [3, 1, 2])
        assert tiny_graph.attributes(0) == (3, 1, 2)
        assert tiny_graph.attributes(1) == ()
        assert tiny_graph.is_attributed

    def test_attribute_dimensions(self, tiny_graph):
        tiny_graph.set_attributes(0, [1, 2])
        tiny_graph.set_attributes(1, [2, 3])
        assert tiny_graph.attribute_dimensions() == 3


class TestVertexData:
    def test_packaging(self, tiny_graph):
        tiny_graph.set_label(1, "b")
        tiny_graph.set_attributes(1, [7])
        data = tiny_graph.vertex_data(1)
        assert data == VertexData(vid=1, neighbors=(0, 2, 3), label="b", attributes=(7,))
        assert data.degree == 3

    def test_size_estimate_grows_with_degree(self, tiny_graph):
        small = tiny_graph.vertex_data(5)
        big = tiny_graph.vertex_data(1)
        assert big.estimate_size() > small.estimate_size()

    def test_graph_size_is_sum(self, tiny_graph):
        total = sum(
            tiny_graph.vertex_data(v).estimate_size() for v in tiny_graph.vertices()
        )
        assert tiny_graph.estimate_size() == total


class TestTransformations:
    def test_subgraph_induced(self, tiny_graph):
        sub = tiny_graph.subgraph([0, 1, 2, 3])
        assert sub.num_vertices == 4
        assert sub.num_edges == 5  # both triangles, no tail
        assert not sub.has_vertex(4)

    def test_subgraph_keeps_labels(self, tiny_graph):
        tiny_graph.set_label(0, "z")
        sub = tiny_graph.subgraph([0, 1])
        assert sub.label(0) == "z"

    def test_relabeled_compacts_ids(self):
        g = Graph.from_edges([(10, 20), (20, 30)])
        out, mapping = g.relabeled()
        assert sorted(mapping.values()) == [0, 1, 2]
        assert out.num_edges == 2
        assert out.has_edge(mapping[10], mapping[20])

    def test_repr(self, tiny_graph):
        assert "|V|=6" in repr(tiny_graph)
