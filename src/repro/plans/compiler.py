"""Compiling a :class:`~repro.plans.query.PatternQuery` into an
:class:`ExecutionPlan`.

The pipeline follows G²Miner's pattern-aware code generation, adapted
to G-Miner's pull-based task model:

1. **Flatten** the query to global node indices, labels, and the full
   undirected edge set (tree + extra edges).
2. **Automorphisms** — brute-force the label-, predicate- and
   edge-preserving permutations (patterns are tiny; guarded at
   ``MAX_AUTOMORPHISM_NODES``).
3. **Symmetry breaking** (``symmetry="auto"``) — the Grochow–Kellis
   scheme: repeatedly pick the smallest node in a nontrivial orbit,
   emit ``image(v) < image(u)`` for every other node ``u`` in its
   orbit, and restrict to the stabiliser; terminates with the trivial
   group, so each subgraph image is counted exactly once.
4. **Extension order** — greedy connected order from the root:
   always extend with the unplaced node with the most already-placed
   neighbours (ties: higher pattern degree, then lower index).  Every
   step therefore intersects at least one adjacency list.
5. **Per-level intersection steps** — each step records which earlier
   positions to intersect (``sources``), the order filters consuming
   symmetry constraints, the label/predicate filters, and whether the
   step is the fused final *count* (no materialisation).

The runtime half (input-aware choices) lives in the executor: sources
are intersected smallest-adjacency-first, the final step uses the
kernels' fused count, and the kernel backend itself comes from the job
config — compiled plans are backend-agnostic by construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.mining.patterns import PatternValidationError, TreePattern
from repro.plans.query import WILDCARD, PatternQuery

#: Brute-force automorphism guard: 8! = 40320 permutations is cheap,
#: beyond that ``symmetry="none"`` (or explicit orders) is required.
MAX_AUTOMORPHISM_NODES = 8


@dataclass(frozen=True)
class CompiledStep:
    """One extension level of the plan.

    ``node`` is the global pattern index matched at this step; every
    other field addresses *positions* in the extension order (indexes
    into the partial-embedding tuple), so the executor never maps back
    through global indices on the hot path.

    * ``sources`` — positions whose images' adjacency lists are
      intersected to form the candidate set (never empty: the
      extension order is connected);
    * ``greater_than`` / ``less_than`` — positions whose images bound
      the candidate id (consumed symmetry/order constraints);
    * ``label`` — required vertex label, or ``None`` for wildcard;
    * ``predicates`` — ``(op, value)`` attribute filters;
    * ``counting`` — final step: count candidates instead of
      materialising extended embeddings.
    """

    node: int
    sources: Tuple[int, ...]
    greater_than: Tuple[int, ...] = ()
    less_than: Tuple[int, ...] = ()
    label: Optional[str] = None
    predicates: Tuple[Tuple[str, int], ...] = ()
    counting: bool = False


@dataclass(frozen=True)
class ExecutionPlan:
    """A compiled pattern: extension order plus per-level steps.

    ``order[p]`` is the global pattern node matched at position ``p``
    (``order[0]`` is always the root, node 0).  ``orders`` carries the
    full set of ``image(a) < image(b)`` constraints (derived plus
    explicit, global indices) — the oracle and ``describe()`` read
    them; the steps have already consumed them as position filters.
    """

    query: PatternQuery
    labels: Tuple[str, ...]
    edges: Tuple[Tuple[int, int], ...]
    order: Tuple[int, ...]
    steps: Tuple[CompiledStep, ...]
    orders: Tuple[Tuple[int, int], ...]
    num_automorphisms: int
    name: str = "plan"

    @property
    def num_nodes(self) -> int:
        return len(self.labels)

    @property
    def root_label(self) -> Optional[str]:
        return None if self.labels[0] == WILDCARD else self.labels[0]

    @property
    def root_predicates(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(
            (op, value) for node, op, value in self.query.predicates
            if node == 0
        )

    @property
    def min_root_degree(self) -> int:
        """Pattern degree of the root — a data vertex with fewer
        neighbours cannot host any embedding, so seeding skips it."""
        return sum(1 for a, b in self.edges if a == 0 or b == 0)

    def describe(self) -> str:
        """Human-readable rendering of the plan (docs and debugging)."""
        lines = [
            f"plan {self.name!r}: {self.num_nodes} nodes, "
            f"|Aut| = {self.num_automorphisms}, "
            f"symmetry = {self.query.symmetry}"
        ]
        root = self.root_label or WILDCARD
        lines.append(f"  seed  p0 = v{self.order[0]} label={root}")
        for position, step in enumerate(self.steps, start=1):
            sources = " ∩ ".join(f"Γ(p{q})" for q in step.sources)
            filters = []
            for q in step.greater_than:
                filters.append(f"id > p{q}")
            for q in step.less_than:
                filters.append(f"id < p{q}")
            if step.label is not None:
                filters.append(f"label = {step.label}")
            for op, value in step.predicates:
                filters.append(f"{op} {value}")
            verb = "count" if step.counting else "extend"
            suffix = f"  [{', '.join(filters)}]" if filters else ""
            lines.append(
                f"  {verb} p{position} = v{step.node} ← {sources}{suffix}"
            )
        if self.orders:
            rendered = ", ".join(f"v{a} < v{b}" for a, b in self.orders)
            lines.append(f"  orders: {rendered}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# automorphisms and symmetry breaking
# ----------------------------------------------------------------------


def automorphisms(
    labels: Sequence[str],
    edges: Sequence[Tuple[int, int]],
    predicates: Sequence[Tuple[int, str, int]] = (),
    orders: Sequence[Tuple[int, int]] = (),
) -> List[Tuple[int, ...]]:
    """All label/predicate/edge/order-preserving permutations.

    Explicit order constraints distinguish nodes too: a permutation
    must map the constraint digraph onto itself, otherwise breaking
    symmetry on top of explicit orders would double-restrict.
    """
    k = len(labels)
    if k > MAX_AUTOMORPHISM_NODES:
        raise PatternValidationError([
            ("pattern-too-large",
             f"automatic symmetry breaking supports up to "
             f"{MAX_AUTOMORPHISM_NODES} nodes, got {k}; "
             f"use symmetry='none' or explicit order constraints")
        ])
    edge_set: FrozenSet[Tuple[int, int]] = frozenset(
        (min(a, b), max(a, b)) for a, b in edges
    )
    pred_sets: List[FrozenSet[Tuple[str, int]]] = [frozenset() for _ in range(k)]
    for node, op, value in predicates:
        pred_sets[node] = pred_sets[node] | {(op, value)}
    order_set = frozenset(tuple(o) for o in orders)
    found: List[Tuple[int, ...]] = []
    for perm in itertools.permutations(range(k)):
        if any(labels[perm[i]] != labels[i] for i in range(k)):
            continue
        if any(pred_sets[perm[i]] != pred_sets[i] for i in range(k)):
            continue
        mapped = {(min(perm[a], perm[b]), max(perm[a], perm[b])) for a, b in edge_set}
        if mapped != edge_set:
            continue
        if order_set and {(perm[a], perm[b]) for a, b in order_set} != order_set:
            continue
        found.append(perm)
    return found


def break_symmetry(perms: List[Tuple[int, ...]]) -> List[Tuple[int, int]]:
    """Grochow–Kellis symmetry-breaking constraints for an aut group.

    Returns ``(a, b)`` pairs meaning ``image(a) < image(b)``.  Exactly
    one member of each automorphism class of embeddings satisfies all
    of them, so counting constrained embeddings counts subgraph images
    once each.
    """
    constraints: List[Tuple[int, int]] = []
    group = list(perms)
    k = len(group[0]) if group else 0
    for v in range(k):
        if len(group) == 1:
            break
        orbit = {perm[v] for perm in group}
        for u in sorted(orbit - {v}):
            constraints.append((v, u))
        group = [perm for perm in group if perm[v] == v]
    return constraints


def _check_acyclic(orders: Sequence[Tuple[int, int]], k: int) -> None:
    """Reject order-constraint digraphs with cycles (unsatisfiable)."""
    succs: Dict[int, Set[int]] = {i: set() for i in range(k)}
    for a, b in orders:
        succs[a].add(b)
    state = [0] * k  # 0 unvisited, 1 on stack, 2 done
    def visit(node: int) -> bool:
        state[node] = 1
        for nxt in succs[node]:
            if state[nxt] == 1 or (state[nxt] == 0 and visit(nxt)):
                return True
        state[node] = 2
        return False
    for start in range(k):
        if state[start] == 0 and visit(start):
            raise PatternValidationError([
                ("contradictory-order",
                 f"order constraints {sorted(set(orders))!r} contain a cycle")
            ])


# ----------------------------------------------------------------------
# extension order and step construction
# ----------------------------------------------------------------------


def _extension_order(
    k: int, adjacency: Dict[int, Set[int]]
) -> Tuple[int, ...]:
    """Greedy connected extension order starting at the root."""
    order = [0]
    placed = {0}
    while len(order) < k:
        best = None
        best_key = None
        for node in range(k):
            if node in placed:
                continue
            connectivity = len(adjacency[node] & placed)
            if connectivity == 0:
                continue
            key = (connectivity, len(adjacency[node]), -node)
            if best_key is None or key > best_key:
                best, best_key = node, key
        if best is None:  # unreachable for tree-rooted queries
            raise PatternValidationError([
                ("disconnected-pattern",
                 "pattern has a node unreachable from the root")
            ])
        order.append(best)
        placed.add(best)
    return tuple(order)


def compile_pattern(
    query: "PatternQuery | TreePattern",
    *,
    name: Optional[str] = None,
) -> ExecutionPlan:
    """Compile a query (or bare tree pattern) into an execution plan.

    A bare :class:`TreePattern` gets the legacy matcher semantics
    (``symmetry="none"``, sibling permutations counted) via
    :meth:`PatternQuery.from_tree`.
    """
    if isinstance(query, TreePattern):
        query = PatternQuery.from_tree(query)
    if not isinstance(query, PatternQuery):
        raise TypeError(
            "compile_pattern() takes a PatternQuery or TreePattern, "
            f"got {type(query).__name__}"
        )
    query.validate()
    labels = query.node_labels()
    edges = query.all_edges()
    k = len(labels)
    if k < 2:
        raise PatternValidationError([
            ("pattern-too-small",
             "a mineable pattern needs at least two nodes (one edge)")
        ])
    adjacency: Dict[int, Set[int]] = {i: set() for i in range(k)}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)

    constraints: List[Tuple[int, int]] = list(query.orders)
    num_auts = 1
    if query.symmetry == "auto":
        perms = automorphisms(labels, edges, query.predicates, query.orders)
        num_auts = len(perms)
        constraints.extend(break_symmetry(perms))
    all_orders = tuple(sorted(set(constraints)))
    _check_acyclic(all_orders, k)

    order = _extension_order(k, adjacency)
    position_of = {node: position for position, node in enumerate(order)}
    node_predicates: Dict[int, List[Tuple[str, int]]] = {i: [] for i in range(k)}
    for node, op, value in query.predicates:
        node_predicates[node].append((op, value))

    steps: List[CompiledStep] = []
    for position in range(1, k):
        node = order[position]
        sources = tuple(
            sorted(position_of[other] for other in adjacency[node]
                   if position_of[other] < position)
        )
        greater_than = tuple(
            sorted(position_of[a] for a, b in all_orders
                   if b == node and position_of[a] < position)
        )
        less_than = tuple(
            sorted(position_of[b] for a, b in all_orders
                   if a == node and position_of[b] < position)
        )
        label = None if labels[node] == WILDCARD else labels[node]
        steps.append(CompiledStep(
            node=node,
            sources=sources,
            greater_than=greater_than,
            less_than=less_than,
            label=label,
            predicates=tuple(node_predicates[node]),
            counting=(position == k - 1),
        ))

    return ExecutionPlan(
        query=query,
        labels=labels,
        edges=edges,
        order=order,
        steps=tuple(steps),
        orders=all_orders,
        num_automorphisms=num_auts,
        name=name or query.name,
    )
