"""Exporting job results and experiment reports as JSON.

Benchmark pipelines want machine-readable artefacts next to the
rendered tables; :func:`job_result_to_dict` flattens a
:class:`~repro.core.job.JobResult` (dropping the non-serialisable
timeline/trace objects but keeping their summaries) and
:func:`save_json` writes any such record.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.bench.report import ExperimentReport
from repro.core.job import JobResult


def job_result_to_dict(result: JobResult, bins: int = 20) -> Dict[str, Any]:
    """Flatten a job result into JSON-serialisable primitives."""
    out: Dict[str, Any] = {
        "status": result.status.value,
        "app": result.app_name,
        "setup_seconds": result.setup_seconds,
        "partition_seconds": result.partition_seconds,
        "mining_seconds": result.mining_seconds,
        "total_seconds": result.total_seconds,
        "cpu_utilization": result.cpu_utilization,
        "peak_memory_bytes": result.peak_memory_bytes,
        "network_bytes": result.network_bytes,
        "disk_bytes": result.disk_bytes,
        "num_results": result.num_results,
        "stats": dict(result.stats),
    }
    out["value"] = _jsonable(result.value)
    out["aggregated"] = _jsonable(result.aggregated)
    if result.timeline is not None and result.mining_window[1] > result.mining_window[0]:
        times, series = result.utilization_series(bins=bins)
        out["utilization"] = {"times": times, **series}
    if result.trace is not None:
        out["trace_summary"] = result.trace.summary()
    return out


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of mining results to JSON primitives."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    return repr(value)


def experiment_report_to_dict(report: ExperimentReport) -> Dict[str, Any]:
    """Flatten an experiment report (nested JobResults included)."""
    def convert(value: Any) -> Any:
        if isinstance(value, JobResult):
            return job_result_to_dict(value)
        if isinstance(value, dict):
            return {str(k): convert(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [convert(v) for v in value]
        return _jsonable(value)

    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "rendered": report.rendered,
        "checks": list(report.checks),
        "notes": list(report.notes),
        "data": convert(report.data),
    }


def save_json(record: Dict[str, Any], path: str) -> str:
    """Write a record as pretty JSON, creating parent directories."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
