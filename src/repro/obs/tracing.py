"""Span-based tracing over the simulator's virtual clock.

A :class:`Span` is a named interval ``[start, end]`` of simulated time
on a logical thread (``tid`` — worker id, or :data:`MASTER_TID` for
the master), optionally nested under a parent span id.  The
:class:`Tracer` hands out monotonically increasing span ids, which —
together with the simulator's deterministic event order — makes two
same-seed runs produce identical span lists.

This subsumes :mod:`repro.core.tracing`'s flat task log: every task
lifecycle event can also be recorded as an instant, and the phases the
log only implied (pull wait, execute round, RPC round trip, recovery)
become real intervals that render as bars in ``chrome://tracing`` /
Perfetto.  The old :class:`~repro.core.tracing.TraceLog` remains the
cheap aggregate-query layer behind ``enable_tracing``.

Span taxonomy (category → names):

* ``job``    — ``job.setup``, ``job.partition``, ``job.mining``
* ``task``   — ``task.seed`` (per-worker generator scan),
  ``task.pull_wait`` (PULL_ISSUED → READY), ``task.round`` (one
  executor round; ``args.work`` carries the charged work units)
* ``rpc``    — ``rpc.pull`` (request → matching response),
  ``rpc.retry`` instants
* ``fault``  — ``checkpoint`` instants, ``worker.recovery`` intervals,
  suspect/confirm/readmit instants
* ``lifecycle`` — instants mirroring :class:`repro.core.tracing.TaskEvent`
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

#: Chrome-trace thread id used for master-side spans (workers use
#: their worker id; this sits above any realistic cluster size).
MASTER_TID = 10_000

#: Spans/instants created since process start — the zero-overhead probe.
_spans_created = 0


def spans_created() -> int:
    """Process-wide count of spans ever created (test hook)."""
    return _spans_created


class Span:
    """One traced interval.  ``end`` is ``None`` while open."""

    __slots__ = ("span_id", "name", "cat", "tid", "start", "end", "parent", "args")

    def __init__(
        self,
        span_id: int,
        name: str,
        cat: str,
        tid: int,
        start: float,
        parent: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        global _spans_created
        _spans_created += 1
        self.span_id = span_id
        self.name = name
        self.cat = cat
        self.tid = tid
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.args = args

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "id": self.span_id,
            "name": self.name,
            "cat": self.cat,
            "tid": self.tid,
            "start": self.start,
            "end": self.end,
        }
        if self.parent is not None:
            record["parent"] = self.parent
        if self.args:
            record["args"] = {k: self.args[k] for k in sorted(self.args)}
        return record


class Tracer:
    """Capacity-bounded span recorder bound to a clock function.

    ``clock`` returns the current simulated time; spans never touch the
    wall clock, which is what keeps traces deterministic.  Past
    ``capacity`` spans the tracer drops (and counts) instead of
    growing without bound — mirroring ``TraceLog``'s policy.
    """

    def __init__(self, clock: Callable[[], float], capacity: int = 500_000) -> None:
        self._clock = clock
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_id = 0

    def __len__(self) -> int:
        return len(self.spans)

    def _record(
        self,
        name: str,
        cat: str,
        tid: int,
        start: float,
        parent: Optional[int],
        args: Optional[Dict[str, Any]],
    ) -> Optional[Span]:
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return None
        span = Span(self._next_id, name, cat, tid, start, parent, args)
        self._next_id += 1
        self.spans.append(span)
        return span

    def begin(
        self,
        name: str,
        cat: str = "task",
        tid: int = 0,
        parent: Optional[int] = None,
        **args: Any,
    ) -> Optional[Span]:
        """Open a span at the current simulated time."""
        return self._record(name, cat, tid, self._clock(), parent, args or None)

    def finish(self, span: Optional[Span]) -> None:
        """Close a span at the current simulated time (None-safe, so
        call sites need no capacity-overflow branch)."""
        if span is not None:
            span.end = self._clock()

    def complete(
        self,
        name: str,
        cat: str,
        tid: int,
        start: float,
        end: float,
        parent: Optional[int] = None,
        **args: Any,
    ) -> Optional[Span]:
        """Record a span with explicit bounds (e.g. reconstructed phases)."""
        span = self._record(name, cat, tid, start, parent, args or None)
        if span is not None:
            span.end = end
        return span

    def instant(
        self,
        name: str,
        cat: str = "lifecycle",
        tid: int = 0,
        parent: Optional[int] = None,
        **args: Any,
    ) -> Optional[Span]:
        """Record a zero-length marker at the current simulated time."""
        now = self._clock()
        span = self._record(name, cat, tid, now, parent, args or None)
        if span is not None:
            span.end = now
        return span

    def close_open_spans(self, end: float) -> int:
        """Close every still-open span at ``end`` (finalize safety net:
        a span opened on a node that died mid-interval never saw its
        ``finish``).  Returns how many were closed."""
        closed = 0
        for span in self.spans:
            if span.end is None:
                span.end = end
                closed += 1
        return closed

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Serialise all spans (record order == creation order)."""
        return [span.to_dict() for span in self.spans]
