"""Table 5 — CD & GC, the heavy attributed workloads only G-Miner runs.

Expected shape: every run completes within the (proportionally longer)
budget and finds communities/clusters on the attributed datasets."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_table5_cd_gc(benchmark):
    report = run_experiment(benchmark, experiments.table5_cd_gc)
    data = report.data
    assert data["CD dblp-s"].ok and data["CD tencent-s"].ok
    assert len(data["CD dblp-s"].value) > 0
    assert len(data["CD tencent-s"].value) > 0
    assert data["GC dblp-s"].ok and len(data["GC dblp-s"].value) > 0
    completed = sum(1 for r in data.values() if r.ok)
    assert completed >= 7  # of 9 runs
