"""Discrete-event simulation substrate for the G-Miner reproduction.

The paper evaluates G-Miner on a real 15-node cluster.  This package
replaces that cluster with a deterministic discrete-event simulation:
simulated CPU cores, a network fabric with latency and bandwidth, and
per-node disks.  Mining algorithms execute for real; only *time* is
virtual, charged from explicit cost models.  This keeps every quantity
the paper reports (elapsed time, CPU/network/disk utilisation, memory
footprint, bytes transferred) well-defined and reproducible in Python,
where the GIL would otherwise make thread-level parallelism unfaithful.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.cluster import ClusterSpec, Node, build_cluster
from repro.sim.cpu import CorePool
from repro.sim.network import Network
from repro.sim.disk import Disk
from repro.sim.hdfs import SimulatedHDFS
from repro.sim.metrics import ResourceMeter, UtilizationTimeline
from repro.sim.failures import FailureInjector, FailurePlan
from repro.sim.errors import SimulatedOOMError, SimulatedTimeLimitExceeded

__all__ = [
    "Event",
    "Simulator",
    "ClusterSpec",
    "Node",
    "build_cluster",
    "CorePool",
    "Network",
    "Disk",
    "SimulatedHDFS",
    "ResourceMeter",
    "UtilizationTimeline",
    "FailureInjector",
    "FailurePlan",
    "SimulatedOOMError",
    "SimulatedTimeLimitExceeded",
]
