"""Recompute the golden tables pinned in ``test_golden_values.py``.

Run after an *intentional* result-affecting change and paste the
printed literals over the stale tables::

    PYTHONPATH=src python tests/regen_golden.py            # everything
    PYTHONPATH=src python tests/regen_golden.py groups     # one table

Group results (communities/clusters) are pinned as short digests of
their canonical form rather than as literal member lists — the digest
changes iff any community's membership changes, without burying the
test file under thousands of vertex ids.  ``group_digest`` is the one
true canonicalisation, imported by the test module.
"""

from __future__ import annotations

import hashlib
import json
import sys

from repro.verify.metamorphic import normalize_value

#: Datasets carrying native attributes (the CD/GC inputs).
ATTRIBUTED_DATASETS = ("dblp-s", "tencent-s")
#: Datasets for the non-attributed workloads.
PLAIN_DATASETS = ("skitter-s", "orkut-s", "btc-s", "friendster-s")


def group_digest(value) -> str:
    """Digest of a community/cluster result's canonical form."""
    canonical = normalize_value("cd", value)
    payload = json.dumps(canonical, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _spec():
    from repro.sim.cluster import ClusterSpec

    return ClusterSpec(num_nodes=4, cores_per_node=4)


def regen_non_attributed() -> None:
    from repro.bench.runner import run

    print("GOLDEN_NON_ATTRIBUTED = {")
    for dataset in PLAIN_DATASETS:
        values = []
        for workload in ("tc", "mcf", "gm"):
            result = run(
                workload=workload, dataset=dataset, spec=_spec(),
                time_limit=None,
            )
            assert result.ok, (workload, dataset, result.status)
            values.append(
                len(result.value) if workload == "mcf" else result.value
            )
        print(f"    {dataset!r}: ({values[0]}, {values[1]}, {values[2]}),")
    print("}")


def regen_groups() -> None:
    from repro.bench.runner import run

    counts, digests = {}, {}
    for dataset in ATTRIBUTED_DATASETS:
        for workload in ("cd", "gc"):
            result = run(
                workload=workload, dataset=dataset, spec=_spec(),
                time_limit=None,
            )
            assert result.ok, (workload, dataset, result.status)
            if workload == "cd":
                counts[dataset] = len(result.value)
            digests[f"{workload}/{dataset}"] = group_digest(result.value)
    print("GOLDEN_COMMUNITIES = {")
    for dataset, count in counts.items():
        print(f"    {dataset!r}: {count},")
    print("}")
    print("GOLDEN_GROUP_DIGESTS = {")
    for key in sorted(digests):
        print(f"    {key!r}: {digests[key]!r},")
    print("}")


def regen_work_units() -> None:
    from repro.bench.runner import run

    keys = [
        "tc/skitter-s", "tc/orkut-s", "tc/btc-s", "tc/friendster-s",
        "mcf/skitter-s", "mcf/btc-s", "gm/skitter-s", "gm/btc-s",
        "cd/dblp-s", "cd/tencent-s", "gc/dblp-s",
    ]
    print("WORK_UNIT_PINS = {")
    for key in keys:
        workload, dataset = key.split("/")
        result = run(system="single-thread", workload=workload, dataset=dataset)
        print(f"    {key!r}: {result.stats['work_units']},")
    print("}")


TABLES = {
    "non-attributed": regen_non_attributed,
    "groups": regen_groups,
    "work-units": regen_work_units,
}


def main(argv) -> int:
    wanted = argv or sorted(TABLES)
    for name in wanted:
        if name not in TABLES:
            print(f"unknown table {name!r}; pick from {sorted(TABLES)}")
            return 2
    for name in wanted:
        TABLES[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
