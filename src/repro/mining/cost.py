"""Work accounting: the bridge between real computation and virtual time.

Every kernel charges one *work unit* per basic operation (an adjacency
probe, a similarity evaluation, a candidate expansion).  The simulated
core pools retire work units at a fixed rate
(:data:`repro.sim.cluster.DEFAULT_CORE_SPEED`), so the units a kernel
reports become the simulated seconds the paper's tables report.

:class:`Budget` additionally enforces a ceiling, so model systems that
would run "longer than 24 hours" (the paper's "-" entries) abort early
instead of actually burning that much real CPU.
"""

from __future__ import annotations

from typing import Optional


class BudgetExceeded(Exception):
    """Raised when a kernel exceeds its work budget mid-computation."""

    def __init__(self, spent: float, limit: float):
        self.spent = spent
        self.limit = limit
        super().__init__(f"work budget exceeded: {spent:.3g} of {limit:.3g} units")


class WorkMeter:
    """Accumulates work units charged by kernels."""

    __slots__ = ("units",)

    def __init__(self) -> None:
        self.units = 0.0

    def charge(self, units: float = 1.0) -> None:
        self.units += units

    def take(self) -> float:
        """Return accumulated units and reset (per-round accounting)."""
        units = self.units
        self.units = 0.0
        return units


class Budget(WorkMeter):
    """A work meter that raises :class:`BudgetExceeded` past ``limit``.

    ``check_interval`` is denominated in *work units*, not calls: the
    countdown decrements by the charged amount, so a bulk
    ``charge(n)`` drains it by ``n`` and triggers the limit test the
    moment ``check_interval`` units have accumulated since the last
    test.  That keeps the undetected overshoot bounded by
    ``check_interval`` alone, independent of how work is batched —
    whenever ``charge`` returns normally, ``units < limit +
    check_interval``.  (Counting calls instead, as this class once
    did, let a kernel charging in batches of ``b`` overshoot by up to
    ``check_interval × b`` before the first test.)  For unit charges
    the two schemes are identical, so per-probe kernels see no
    behaviour change.
    """

    __slots__ = ("limit", "_check_every", "_until_check")

    def __init__(self, limit: float, check_interval: int = 1024) -> None:
        super().__init__()
        if limit <= 0:
            raise ValueError("budget limit must be positive")
        self.limit = limit
        self._check_every = max(1, check_interval)
        self._until_check = float(self._check_every)

    def charge(self, units: float = 1.0) -> None:
        self.units += units
        self._until_check -= units
        if self._until_check <= 0:
            self._until_check = float(self._check_every)
            if self.units > self.limit:
                raise BudgetExceeded(self.units, self.limit)

    def check(self) -> None:
        """Force an immediate limit test."""
        if self.units > self.limit:
            raise BudgetExceeded(self.units, self.limit)

    @property
    def remaining(self) -> float:
        return max(0.0, self.limit - self.units)
