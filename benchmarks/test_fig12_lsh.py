"""Figure 12 — the LSH-based task priority queue ablation.

Expected shape: disabling LSH ordering lowers the cache hit rate /
raises pull traffic and slows most cases (paper: up to 40% worse)."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_fig12_lsh(benchmark):
    report = run_experiment(benchmark, experiments.fig12_lsh)
    slower = sum(
        1 for d in report.data.values()
        if d["dis"].total_seconds > d["en"].total_seconds
    )
    more_pulls = sum(
        1 for d in report.data.values()
        if d["dis"].stats["vertices_pulled"] >= d["en"].stats["vertices_pulled"]
    )
    assert slower >= 3
    assert more_pulls >= 3
