"""Failure injection for fault-tolerance experiments.

The paper's recovery story (§7): when a slave dies, the master re-runs
the dead worker's tasks from the previous checkpoint while live workers
keep going, and task stealing re-spreads the recovered load.  A
:class:`FailurePlan` schedules node kills (and optional recoveries) at
chosen simulated times so those paths can be exercised and benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.cluster import Cluster


@dataclass(frozen=True)
class FailureEvent:
    """Kill ``node_id`` at ``at_time``; recover after ``recovery_delay``
    seconds unless it is ``None`` (permanent failure)."""

    node_id: int
    at_time: float
    recovery_delay: Optional[float] = None


@dataclass
class FailurePlan:
    """An ordered collection of failure events."""

    events: List[FailureEvent] = field(default_factory=list)

    def kill(self, node_id: int, at_time: float, recovery_delay: Optional[float] = None):
        self.events.append(FailureEvent(node_id, at_time, recovery_delay))
        return self

    def __iter__(self):
        return iter(sorted(self.events, key=lambda e: e.at_time))


class FailureInjector:
    """Arms a :class:`FailurePlan` against a built cluster.

    ``on_fail``/``on_recover`` hooks let the distributed system react
    (e.g. the G-Miner master noticing a missing progress report and
    triggering checkpoint recovery).
    """

    def __init__(
        self,
        cluster: Cluster,
        plan: FailurePlan,
        on_fail: Optional[Callable[[int], None]] = None,
        on_recover: Optional[Callable[[int], None]] = None,
    ) -> None:
        self.cluster = cluster
        self.plan = plan
        self.on_fail = on_fail
        self.on_recover = on_recover
        self.failures_triggered: List[FailureEvent] = []

    def arm(self) -> None:
        """Schedule every failure event on the cluster's simulator."""
        for event in self.plan:
            self.cluster.sim.schedule_at(
                event.at_time, lambda e=event: self._trigger(e)
            )

    def _trigger(self, event: FailureEvent) -> None:
        node = self.cluster.node(event.node_id)
        if not node.alive:
            return
        node.fail()
        self.cluster.network.set_node_down(event.node_id, True)
        self.failures_triggered.append(event)
        if self.on_fail is not None:
            self.on_fail(event.node_id)
        if event.recovery_delay is not None:
            self.cluster.sim.schedule(
                event.recovery_delay, lambda: self._recover(event.node_id)
            )

    def _recover(self, node_id: int) -> None:
        node = self.cluster.node(node_id)
        node.recover()
        self.cluster.network.set_node_down(node_id, False)
        if self.on_recover is not None:
            self.on_recover(node_id)
