"""Integration tests for ``repro.mine`` and the plan executor.

Three equivalence axes:

* built-in workloads through ``mine()`` are *bit-identical* to the
  legacy per-app job construction (full ``to_dict`` comparison, all
  three kernel backends);
* compiled plans agree with the legacy growers where the vocabulary
  overlaps (triangle count, tree-pattern matching);
* a non-built-in motif (the tailed triangle) runs end-to-end and
  agrees with the brute-force oracle, the sequential plan runner, and
  itself across backends — including under task splitting and under
  checkpointed worker failure.
"""

import pytest

from repro.apps import (
    CommunityDetectionApp,
    GraphClusteringApp,
    GraphletCountingApp,
    GraphMatchingApp,
    MaxCliqueApp,
    TriangleCountingApp,
    count_triangles,
    match_pattern,
)
from repro.core import GMinerConfig, GMinerJob, JobStatus
from repro.graph.generators import random_attributes
from repro.mining.patterns import PAPER_PATTERN
from repro.plans import (
    PatternQuery,
    compile_pattern,
    count_embeddings_bruteforce,
    count_plan_sequential,
    mine,
    motif,
)
from repro.sim.failures import FailurePlan

from tests.conftest import make_clustered_graph

BACKENDS = ("reference", "numpy", "bitset")


@pytest.fixture(scope="module")
def mining_graph():
    """Small labelled + attributed graph every workload can run on."""
    graph = make_clustered_graph(labeled=True, n=48, m=3)
    random_attributes(graph, seed=7)
    return graph


def _legacy_app(workload, graph):
    if workload == "tc":
        return TriangleCountingApp()
    if workload == "mcf":
        return MaxCliqueApp()
    if workload == "gm":
        return GraphMatchingApp(PAPER_PATTERN)
    if workload == "gl":
        return GraphletCountingApp(k=4, classify=True)
    if workload == "cd":
        return CommunityDetectionApp(None)
    assert workload == "gc"
    exemplars = sorted(graph.vertices())[:3]
    return GraphClusteringApp([graph.attributes(v) for v in exemplars])


class TestMineAPI:
    def test_positional_arguments_rejected(self, tiny_graph):
        with pytest.raises(TypeError):
            mine(tiny_graph, "tc")

    def test_neither_pattern_nor_workload(self, tiny_graph):
        with pytest.raises(TypeError, match="exactly one"):
            mine(tiny_graph)

    def test_pattern_alongside_workload_is_a_workload_option(self, tiny_graph):
        # gm takes pattern=; tc takes no options, so it rejects by name
        with pytest.raises(TypeError, match="pattern"):
            mine(tiny_graph, pattern="triangle", workload="tc")

    def test_unknown_workload_lists_menu(self, tiny_graph):
        with pytest.raises(ValueError, match="tc"):
            mine(tiny_graph, workload="pagerank")

    def test_unknown_motif_lists_names(self, tiny_graph):
        with pytest.raises(ValueError, match="tailed-triangle"):
            mine(tiny_graph, pattern="pentagon")

    def test_unsupported_pattern_type(self, tiny_graph):
        with pytest.raises(TypeError, match="pattern"):
            mine(tiny_graph, pattern=3.14)

    def test_pattern_path_rejects_workload_options(self, tiny_graph):
        with pytest.raises(TypeError, match="k"):
            mine(tiny_graph, pattern="triangle", k=4)

    def test_workload_rejects_unknown_option(self, tiny_graph):
        # the error names the rejected option and lists what is accepted
        with pytest.raises(TypeError, match="depth.*classify"):
            mine(tiny_graph, workload="gl", depth=2)


class TestBuiltinEquivalence:
    """mine(workload=...) must be bit-identical to the legacy job."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workload", ["tc", "mcf", "gm", "gl", "cd", "gc"])
    def test_workload_matches_legacy_job(
        self, workload, backend, mining_graph, small_spec
    ):
        config = GMinerConfig(cluster=small_spec, kernel_backend=backend)
        legacy = GMinerJob(
            _legacy_app(workload, mining_graph), mining_graph, config
        ).run()
        modern = mine(mining_graph, workload=workload, config=config)
        assert legacy.status is JobStatus.OK
        assert modern.to_dict() == legacy.to_dict()

    def test_app_wrappers_route_through_mine(self, mining_graph, small_spec):
        config = GMinerConfig(cluster=small_spec)
        direct = mine(mining_graph, workload="tc", config=config)
        wrapped = count_triangles(mining_graph, config=config)
        assert wrapped.to_dict() == direct.to_dict()
        matched = match_pattern(
            mining_graph, pattern=PAPER_PATTERN, config=config
        )
        assert matched.to_dict() == mine(
            mining_graph, workload="gm", pattern=PAPER_PATTERN, config=config
        ).to_dict()


class TestCompiledVsLegacy:
    def test_triangle_plan_matches_tc(self, mining_graph, small_spec):
        config = GMinerConfig(cluster=small_spec)
        legacy = mine(mining_graph, workload="tc", config=config)
        compiled = mine(mining_graph, pattern="triangle", config=config)
        assert compiled.value == (legacy.value or 0)

    def test_tree_pattern_plan_matches_gm(self, mining_graph, small_spec):
        config = GMinerConfig(cluster=small_spec)
        legacy = mine(mining_graph, workload="gm", config=config)
        compiled = mine(mining_graph, pattern=PAPER_PATTERN, config=config)
        assert compiled.value == (legacy.value or 0)
        # …and the PatternQuery spelling is the same computation
        query = PatternQuery.from_tree(PAPER_PATTERN)
        requeried = mine(mining_graph, pattern=query, config=config)
        assert requeried.value == compiled.value


class TestCustomMotifEndToEnd:
    """The acceptance scenario: a non-built-in 4-node pattern."""

    def test_tailed_triangle_all_backends_agree_with_oracles(
        self, mining_graph, small_spec
    ):
        query = motif("tailed-triangle")
        expected = count_embeddings_bruteforce(query, mining_graph)
        assert expected > 0
        assert count_plan_sequential(
            compile_pattern(query), mining_graph
        ) == expected
        for backend in BACKENDS:
            config = GMinerConfig(cluster=small_spec, kernel_backend=backend)
            result = mine(mining_graph, pattern=query, config=config)
            assert result.status is JobStatus.OK
            assert result.value == expected, backend

    def test_precompiled_plan_accepted(self, mining_graph, small_spec):
        plan = compile_pattern(motif("tailed-triangle"))
        config = GMinerConfig(cluster=small_spec)
        result = mine(mining_graph, pattern=plan, config=config)
        assert result.value == count_plan_sequential(plan, mining_graph)

    def test_plan_survives_task_splitting(self, mining_graph, small_spec):
        baseline = mine(
            mining_graph,
            pattern="tailed-triangle",
            config=GMinerConfig(cluster=small_spec),
        )
        split_config = GMinerConfig(
            cluster=small_spec,
            enable_splitting=True,
            split_candidate_threshold=4,
        )
        split = mine(
            mining_graph, pattern="tailed-triangle", config=split_config
        )
        assert split.value == baseline.value

    def test_all_motifs_match_bruteforce(self, mining_graph, small_spec):
        config = GMinerConfig(cluster=small_spec)
        for name in ("4-cycle", "diamond", "3-path"):
            expected = count_embeddings_bruteforce(motif(name), mining_graph)
            result = mine(mining_graph, pattern=name, config=config)
            assert (result.value or 0) == expected, name


class TestPlanFaultTolerance:
    """Regression: a checkpoint can land between a task's final round
    and its completion callback; the snapshot must record the task as
    completed, not re-execute it after recovery."""

    @pytest.mark.parametrize("kill_fraction", [0.3, 0.6])
    def test_plan_survives_worker_failure(
        self, kill_fraction, mining_graph, small_spec
    ):
        config = GMinerConfig(
            cluster=small_spec,
            checkpoint_interval=0.02,
            time_limit=120.0,
        )
        clean = mine(mining_graph, pattern="tailed-triangle", config=config)
        assert clean.status is JobStatus.OK
        kill_at = clean.setup_seconds + clean.mining_seconds * kill_fraction
        plan = FailurePlan().kill(
            node_id=1, at_time=kill_at, recovery_delay=0.05
        )
        result = mine(
            mining_graph,
            pattern="tailed-triangle",
            config=config,
            failure_plan=plan,
        )
        assert result.status is JobStatus.OK
        assert result.value == clean.value
