"""Smoke tests: the shipped examples and the bench CLI must run."""

import os
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_script(relpath, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(REPO, relpath)],
        capture_output=True,
        text=True,
        timeout=timeout,
        cwd=REPO,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_script("examples/quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "triangles" in proc.stdout
        assert "status            : ok" in proc.stdout

    def test_custom_application(self):
        proc = run_script("examples/custom_application.py")
        assert proc.returncode == 0, proc.stderr
        assert "true members missed           : 0" in proc.stdout

    def test_social_network_analysis(self):
        proc = run_script("examples/social_network_analysis.py")
        assert proc.returncode == 0, proc.stderr
        assert "max clique" in proc.stdout

    def test_fault_tolerance(self):
        proc = run_script("examples/fault_tolerance.py")
        assert proc.returncode == 0, proc.stderr
        assert "identical clique" in proc.stdout


class TestBenchCLI:
    def test_list(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", "list"],
            capture_output=True, text=True, cwd=REPO, timeout=60,
        )
        assert proc.returncode == 0
        assert "table1_motivation" in proc.stdout
        assert "fig13_stealing" in proc.stdout

    def test_run_unknown_experiment(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", "run", "nope"],
            capture_output=True, text=True, cwd=REPO, timeout=60,
        )
        assert proc.returncode == 2
        assert "unknown experiment" in proc.stderr

    def test_run_table2(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bench", "run", "table2_datasets",
             "-o", str(tmp_path)],
            capture_output=True, text=True, cwd=REPO, timeout=120,
        )
        assert proc.returncode == 0
        assert "orkut-s" in proc.stdout
        assert (tmp_path / "table2.txt").exists()
