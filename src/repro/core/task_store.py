"""The task store: a disk-backed, LSH-ordered task priority queue.

Paper §4.3/§7: inactive tasks are ordered by an LSH signature of their
remote-candidate sets, so consecutively dequeued tasks share pulls and
hit the RCV cache.  The queue is stored as fixed-capacity blocks —
only the head block lives in memory, the rest on (simulated) disk —
bounding memory while hiding block I/O under computation.

With ``enable_lsh=False`` (Figure 12's ablation) tasks are keyed by
insertion order, degrading the queue to FIFO.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Set, Tuple

from repro.core.lsh import MinHashLSH
from repro.core.task import Task, TaskStatus
from repro.sim.disk import Disk

#: Sort key: (LSH signature, insertion sequence).
_Key = Tuple[Tuple[int, ...], int]


@dataclass
class _Block:
    """One fixed-capacity run of key-ordered tasks."""

    entries: List[Tuple[_Key, Task]] = field(default_factory=list)
    in_memory: bool = True

    @property
    def size_bytes(self) -> int:
        return sum(task.estimate_size() for _, task in self.entries)

    @property
    def max_key(self) -> _Key:
        return self.entries[-1][0]


class TaskStore:
    """Priority queue of INACTIVE tasks with bounded memory."""

    def __init__(
        self,
        disk: Disk,
        block_tasks: int = 64,
        lsh: Optional[MinHashLSH] = None,
        on_alloc: Optional[Callable[[int], None]] = None,
        on_free: Optional[Callable[[int], None]] = None,
        notify: Optional[Callable[[], None]] = None,
        block_bytes: int = 262_144,
    ) -> None:
        if block_tasks < 1:
            raise ValueError("block capacity must be >= 1")
        if block_bytes < 1:
            raise ValueError("block byte capacity must be >= 1")
        self.disk = disk
        self.block_tasks = block_tasks
        self.block_bytes = block_bytes
        self.lsh = lsh
        self._on_alloc = on_alloc or (lambda n: None)
        self._on_free = on_free or (lambda n: None)
        self._notify = notify or (lambda: None)
        self._blocks: List[_Block] = []
        self._seq = 0
        self._size = 0
        self._loading = False
        self.disk_spills = 0
        self.disk_loads = 0

    # -- keys -------------------------------------------------------------

    def _key_for(self, task: Task) -> _Key:
        self._seq += 1
        if self.lsh is not None:
            return (self.lsh.signature(task.to_pull), self._seq)
        # LSH disabled (Figure 12 ablation): a concurrent pipeline's
        # dequeue order carries no locality at scale.  Our reduced-scale
        # simulation seeds tasks in vertex order, which would otherwise
        # hand the no-LSH store an artificial block-coherent order, so
        # orderlessness is represented by a hashed key.
        scrambled = (self._seq * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        return ((scrambled,), self._seq)

    # -- size --------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def loading(self) -> bool:
        return self._loading

    # -- insertion -------------------------------------------------------------

    def insert_batch(self, tasks: List[Task]) -> None:
        """Insert a flushed task-buffer batch, keyed and placed in order.

        Tasks landing in the in-memory head block are accounted as
        memory; tasks landing in later blocks are charged as a batched
        disk write.
        """
        spilled_bytes = 0
        for task in tasks:
            task.status = TaskStatus.INACTIVE
            key = self._key_for(task)
            spilled_bytes += self._insert_one(key, task)
        if spilled_bytes:
            self.disk_spills += 1
            self.disk.write(spilled_bytes, lambda: None)
        self._notify()

    def _insert_one(self, key: _Key, task: Task) -> int:
        """Place one task; returns bytes written to disk (0 if in-memory)."""
        self._size += 1
        if not self._blocks:
            self._blocks.append(_Block(entries=[(key, task)], in_memory=True))
            self._on_alloc(task.estimate_size())
            return 0
        index = self._find_block(key)
        block = self._blocks[index]
        keys = [k for k, _ in block.entries]
        pos = bisect.bisect_right(keys, key)
        block.entries.insert(pos, (key, task))
        written = 0
        if block.in_memory:
            self._on_alloc(task.estimate_size())
        else:
            written = task.estimate_size()
        if len(block.entries) > self.block_tasks or (
            len(block.entries) > 1 and block.size_bytes > self.block_bytes
        ):
            written += self._split_block(index)
        return written

    def _find_block(self, key: _Key) -> int:
        for i, block in enumerate(self._blocks):
            if block.entries and key <= block.max_key:
                return i
        return len(self._blocks) - 1

    def _split_block(self, index: int) -> int:
        """Split an overfull block; the upper half spills if splitting
        the head (only the head block stays in memory)."""
        block = self._blocks[index]
        mid = len(block.entries) // 2
        upper = _Block(entries=block.entries[mid:], in_memory=False)
        block.entries = block.entries[:mid]
        self._blocks.insert(index + 1, upper)
        written = 0
        if block.in_memory:
            # the upper half moves from memory to disk
            upper_bytes = upper.size_bytes
            self._on_free(upper_bytes)
            written = upper_bytes
        return written

    # -- dequeue ------------------------------------------------------------------

    def pop(self) -> Optional[Task]:
        """Dequeue the highest-priority task, or ``None`` when nothing
        is immediately available (empty, or the head block is still
        being loaded from disk — the caller re-pumps on notify)."""
        if self._loading or self._size == 0:
            return None
        head = self._head_in_memory()
        if head is None:
            return None  # load scheduled; notify will re-pump
        key, task = head.entries.pop(0)
        self._size -= 1
        self._on_free(task.estimate_size())
        if not head.entries:
            self._blocks.pop(0)
        return task

    def _head_in_memory(self) -> Optional[_Block]:
        while self._blocks and not self._blocks[0].entries:
            self._blocks.pop(0)
        if not self._blocks:
            return None
        head = self._blocks[0]
        if head.in_memory:
            return head
        # head block resides on disk: load it asynchronously
        self._loading = True
        load_bytes = head.size_bytes
        self.disk_loads += 1

        def loaded():
            self._loading = False
            if self._blocks and self._blocks[0] is head:
                head.in_memory = True
                self._on_alloc(head.size_bytes)
            self._notify()

        self.disk.read(load_bytes, loaded)
        return None

    # -- task stealing support (§6.2) ---------------------------------------------

    def steal_batch(
        self,
        limit: int,
        cost_threshold: float,
        local_rate_threshold: float,
        local_rate_fn: Callable[[Task], float],
    ) -> List[Task]:
        """Remove up to ``limit`` migratable tasks from the queue tail.

        A task migrates only when ``c(t) < Tc`` and ``lr(t) < Tr``
        (Eq. 2/3): cheap to ship and not strongly tied to the local
        partition.  Tail-first keeps the head (about to be pipelined)
        untouched.  On-disk victims are charged as a batched disk read.
        """
        stolen: List[Task] = []
        disk_bytes = 0
        # never touch the head block: it is about to enter the pipeline
        # (and may be mid-load from disk)
        for block in reversed(self._blocks[1:]):
            if len(stolen) >= limit:
                break
            kept: List[Tuple[_Key, Task]] = []
            for key, task in reversed(block.entries):
                if (
                    len(stolen) < limit
                    and task.migration_cost() < cost_threshold
                    and local_rate_fn(task) < local_rate_threshold
                ):
                    stolen.append(task)
                    self._size -= 1
                    if block.in_memory:
                        self._on_free(task.estimate_size())
                    else:
                        disk_bytes += task.estimate_size()
                else:
                    kept.append((key, task))
            kept.reverse()
            block.entries = kept
        if len(self._blocks) > 1:
            self._blocks = [self._blocks[0]] + [b for b in self._blocks[1:] if b.entries]
        if disk_bytes:
            self.disk.read(disk_bytes, lambda: None)
        return stolen

    def drain_all(self) -> List[Task]:
        """Remove everything (used for checkpoint inspection and failure)."""
        out: List[Task] = []
        for block in self._blocks:
            for _, task in block.entries:
                out.append(task)
                if block.in_memory:
                    self._on_free(task.estimate_size())
        self._blocks = []
        self._size = 0
        return out

    def peek_all(self) -> List[Task]:
        """Snapshot of queued tasks, head first (checkpointing)."""
        out: List[Task] = []
        for block in self._blocks:
            out.extend(task for _, task in block.entries)
        return out
