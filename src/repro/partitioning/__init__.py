"""Graph partitioning: static load balancing (paper §6.1).

Two strategies, matching the paper's Figure 11 comparison:

* :class:`HashPartitioner` — the default most systems use; destroys
  locality.
* :class:`BDGPartitioner` — Block-based Deterministic Greedy: BFS
  colouring into locality-preserving blocks, a Hash-Min fixup for tiny
  connected components, then deterministic greedy block assignment
  (Eq. 1).

Both produce a :class:`PartitionAssignment` mapping vertices to
workers, and report the (simulated) time the partitioning itself took,
since Figure 11 charges that against BDG.
"""

from repro.partitioning.assignment import PartitionAssignment
from repro.partitioning.hash_partitioner import HashPartitioner
from repro.partitioning.bdg import BDGPartitioner, Block, bfs_color_blocks

__all__ = [
    "PartitionAssignment",
    "HashPartitioner",
    "BDGPartitioner",
    "Block",
    "bfs_color_blocks",
]
