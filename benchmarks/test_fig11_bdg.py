"""Figure 11 — BDG vs hash partitioning on MCF.

Expected shape: BDG pays visible partitioning time but reduces network
traffic; mining time stays competitive.  (The paper's total-time win
is bounded at this scale — see the report's notes.)"""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_fig11_bdg(benchmark):
    report = run_experiment(benchmark, experiments.fig11_bdg)
    for dataset, runs in report.data.items():
        assert runs["bdg"].partition_seconds > runs["hash"].partition_seconds
        assert runs["bdg"].network_bytes < runs["hash"].network_bytes, dataset
