"""Unit tests for configuration validation and the message vocabulary."""

import pytest

from repro.core.config import GMinerConfig
from repro.core.messages import (
    AggBroadcast,
    AggReport,
    CheckpointCommand,
    MigrateCommand,
    NoTask,
    ProgressReport,
    PullRequest,
    PullResponse,
    StealRequest,
    TaskMigration,
    WorkerDown,
    WorkerUp,
)
from repro.core.task import Task
from repro.graph.graph import VertexData


class TestConfig:
    def test_defaults_validate(self):
        GMinerConfig().validate()

    def test_replace_returns_new_config(self):
        base = GMinerConfig()
        other = base.replace(enable_lsh=False)
        assert base.enable_lsh and not other.enable_lsh

    @pytest.mark.parametrize(
        "field,value",
        [
            ("partitioner", "random"),
            ("cache_policy", "mru"),
            ("store_block_tasks", 0),
            ("max_inflight_tasks", 0),
            ("steal_batch", 0),
            ("cache_capacity_bytes", -1),
        ],
    )
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            GMinerConfig().replace(**{field: value}).validate()


class _T(Task):
    def __init__(self):
        super().__init__(VertexData(vid=0, neighbors=(1, 2)))
        self.pull([1, 2])

    def update(self, cand_objs, env):
        self.finish()


class TestMessageSizes:
    def test_pull_request_scales_with_vids(self):
        small = PullRequest(requester=0, vids=(1,))
        big = PullRequest(requester=0, vids=tuple(range(100)))
        assert big.size_bytes() - small.size_bytes() == 99 * 8

    def test_pull_response_scales_with_vertex_sizes(self):
        v1 = VertexData(vid=1, neighbors=(2,))
        v2 = VertexData(vid=2, neighbors=tuple(range(50)))
        small = PullResponse(vertices=(v1,))
        big = PullResponse(vertices=(v1, v2))
        assert big.size_bytes() > small.size_bytes()

    def test_task_migration_scales_with_tasks(self):
        empty = TaskMigration(source=0, tasks=[])
        loaded = TaskMigration(source=0, tasks=[_T(), _T()])
        assert loaded.size_bytes() > empty.size_bytes()

    @pytest.mark.parametrize(
        "message",
        [
            AggReport(worker=0, partial=5),
            AggBroadcast(value=5),
            ProgressReport(0, 1, 2, 3, 4, 5, False),
            StealRequest(worker=0),
            MigrateCommand(dest=1, count=8),
            NoTask(source=0),
            CheckpointCommand(epoch=1),
            WorkerDown(worker=2),
            WorkerUp(worker=2),
        ],
    )
    def test_control_messages_are_small(self, message):
        assert 0 < message.size_bytes() <= 64
