"""Tests for the differential fuzzer (repro.verify.fuzz).

The headline requirement: a planted result-divergence bug — a triangle
count silently inflated for a sliver of seed vertices — must be caught
at a fixed fuzz seed and shrunk to a small (≤ 32 vertex) replayable
case.  Plus: clean runs find nothing, repro files round-trip through
``--replay``, and case generation is deterministic.
"""

import json

import pytest

from repro.apps.triangle_counting import TCTask
from repro.verify import fuzz
from repro.verify.metamorphic import normalize_value, permute_graph

pytestmark = pytest.mark.fuzz


# A seed whose generated case uses the tc workload.  Seeds with
# vid % 17 == 3 exist in every generated graph (16+ consecutive vids),
# so the planted mutant below fires on any tc case.
TC_SEED = next(
    seed for seed in range(100)
    if fuzz.generate_case(seed)["workload"] == "tc"
)


@pytest.fixture
def planted_divergence(monkeypatch):
    """Inflate the triangle count for seeds with vid % 17 == 3.

    Both distributed backends inherit the bug identically, so they agree
    with each other — only the sequential oracle exposes it.  Induced
    subgraphs keep original vertex ids, so the bug survives shrinking.
    """
    original = TCTask.update

    def tampered(self, cand_objs, env):
        original(self, cand_objs, env)
        if self.seed.vid % 17 == 3 and self.result is not None:
            self.result += 1

    monkeypatch.setattr(TCTask, "update", tampered)


class TestCaseGeneration:
    def test_deterministic(self):
        assert fuzz.generate_case(12) == fuzz.generate_case(12)
        assert fuzz.generate_case(12) != fuzz.generate_case(13)

    def test_case_is_json_round_trippable(self):
        case = fuzz.generate_case(5)
        assert json.loads(json.dumps(case)) == case

    def test_graph_reconstruction(self):
        case = fuzz.generate_case(7)
        graph = fuzz.graph_from_case(case)
        assert sorted(graph.vertices()) == case["vertices"]
        assert graph.num_edges == len(case["edges"])

    def test_all_workloads_reachable(self):
        seen = {fuzz.generate_case(s)["workload"] for s in range(60)}
        assert seen == {"tc", "mcf", "gm", "cd", "gc"}


class TestCleanRuns:
    def test_clean_case_has_no_mismatches(self):
        assert fuzz.check_case(fuzz.generate_case(TC_SEED)) == []

    def test_cli_smoke_clean(self, tmp_path, capsys):
        rc = fuzz.main([
            "--iterations", "5", "--seed", "3",
            "--out", str(tmp_path),
        ])
        assert rc == 0
        assert not list(tmp_path.glob("*.json"))
        assert "5 case(s), 0 failure(s)" in capsys.readouterr().out


class TestPlantedDivergence:
    def test_detected_at_fixed_seed(self, planted_divergence):
        mismatches = fuzz.check_case(fuzz.generate_case(TC_SEED))
        assert mismatches
        assert any("oracle" in m for m in mismatches)

    def test_shrinks_to_small_case(self, planted_divergence):
        case = fuzz.generate_case(TC_SEED)
        shrunk = fuzz.shrink_case(case)
        assert len(shrunk["vertices"]) <= 32
        assert fuzz.check_case(shrunk)  # still failing after shrink

    def test_repro_file_round_trip(self, planted_divergence, tmp_path):
        case = fuzz.generate_case(TC_SEED)
        mismatches = fuzz.check_case(case)
        path = fuzz.save_repro(case, mismatches, str(tmp_path))
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["schema"] == fuzz.SCHEMA
        assert doc["mismatches"] == mismatches
        # replay agrees the bug is still live
        assert fuzz.replay(path) == 1

    def test_cli_catches_and_persists(self, planted_divergence, tmp_path, capsys):
        rc = fuzz.main([
            "--iterations", str(TC_SEED + 1), "--seed", "0",
            "--out", str(tmp_path), "--no-shrink",
        ])
        assert rc == 1
        assert list(tmp_path.glob("fuzz-repro-*.json"))
        assert "MISMATCH" in capsys.readouterr().out


class TestNativeAxis:
    def test_clean_case_passes_native_axis(self):
        case = fuzz.generate_case(TC_SEED)
        case["native_axis"] = True
        assert fuzz.check_case(case) == []

    def test_fault_free_case_strips_chaos(self):
        case = fuzz.generate_case(TC_SEED)
        case["failure_plan"] = {"seed": 1, "kills": [], "lossy": []}
        case["config"] = dict(case["config"], checkpoint_interval=0.02)
        pure = fuzz.fault_free_case(case)
        assert pure["failure_plan"] is None
        assert "checkpoint_interval" not in pure["config"]
        # the original case is untouched
        assert case["failure_plan"] is not None

    def test_native_axis_detects_divergence(self, planted_divergence):
        # the planted tc bug lives in TCTask.update, which the native
        # engine executes too — but the single-thread oracle does not,
        # so the native-vs-sim value check alone would agree; the axis
        # still runs, and the triad's oracle check reports the bug
        case = fuzz.generate_case(TC_SEED)
        case["native_axis"] = True
        mismatches = fuzz.check_case(case)
        assert any("oracle" in m for m in mismatches)

    def test_native_axis_detects_native_only_divergence(self, monkeypatch):
        """A bug only the native engine has is caught by the axis."""
        from repro.native import engine as native_engine

        original = native_engine.run_native

        def tampered(app, graph, config=None, failure_plan=None, workers=None):
            result = original(app, graph, config, failure_plan, workers)
            if result.value is not None:
                result.value += 1
            return result

        monkeypatch.setattr(native_engine, "run_native", tampered)
        # the dispatch in GMinerJob.run imports lazily from repro.native
        import repro.native

        monkeypatch.setattr(repro.native, "run_native", tampered)
        case = fuzz.generate_case(TC_SEED)
        mismatches = fuzz.check_native_axis(case)
        assert any("native" in m for m in mismatches)

    def test_cli_native_axis_smoke(self, tmp_path, capsys):
        rc = fuzz.main([
            "--iterations", "2", "--seed", "3",
            "--out", str(tmp_path), "--native-axis",
        ])
        assert rc == 0
        assert "2 case(s), 0 failure(s)" in capsys.readouterr().out


class TestReplay:
    def test_replay_returns_zero_when_fixed(self, tmp_path, capsys):
        # a repro persisted while a (since-fixed) bug was live now passes
        case = fuzz.generate_case(TC_SEED)
        path = tmp_path / "fuzz-repro-old.json"
        path.write_text(json.dumps({**case, "mismatches": ["stale"]}))
        assert fuzz.replay(str(path)) == 0

    def test_replay_rejects_unknown_schema(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9"}))
        assert fuzz.replay(str(path)) == 2

    def test_cli_replay_flag(self, planted_divergence, tmp_path, capsys):
        case = fuzz.generate_case(TC_SEED)
        path = fuzz.save_repro(case, fuzz.check_case(case), str(tmp_path))
        assert fuzz.main(["--replay", path]) == 1


class TestHelpers:
    def test_second_backend_differs_from_reference(self):
        assert fuzz.second_backend() != "reference"

    def test_normalize_value_handles_empty_results(self):
        assert normalize_value("tc", None) == 0
        assert normalize_value("mcf", None) == 0
        assert normalize_value("cd", None) == []
        assert normalize_value("gc", []) == []

    def test_permute_graph_preserves_shape(self, small_labeled_graph):
        out, mapping = permute_graph(small_labeled_graph, seed=9)
        assert out.num_vertices == small_labeled_graph.num_vertices
        assert out.num_edges == small_labeled_graph.num_edges
        for v in small_labeled_graph.vertices():
            assert out.label(mapping[v]) == small_labeled_graph.label(v)
