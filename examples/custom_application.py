#!/usr/bin/env python
"""Scenario: writing your own G-Miner application (Listing 1/2 style).

Implements **k-core membership mining** from scratch on the public
API — an algorithm that ships with neither the paper nor this library:
for every seed vertex, decide whether it belongs to the k-core (the
maximal subgraph where every member has ≥ k neighbours inside it).

The implementation shows the full Task contract: per-round ``update``,
``pull`` for next-round candidates, ``charge`` for work accounting,
shrink-style subgraph updates, and ``finish`` with a result.  It also
demonstrates validation against an independent oracle.

Run:  python examples/custom_application.py
"""

from typing import Dict, Optional, Set

from repro.core import GMinerConfig, GMinerJob
from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.generators import planted_partition_graph
from repro.graph.graph import Graph, VertexData
from repro.sim.cluster import ClusterSpec

K = 11  # the core order we mine


class KCoreTask(Task):
    """Decides k-core membership of its seed by iterative peeling.

    The task grows a bounded neighbourhood (2 hops is enough to peel
    locally at this k), then repeatedly removes vertices of degree < k
    within the collected subgraph; the seed is in the k-core estimate
    if it survives.  Rounds 1..2 pull; round 3 computes.
    """

    def __init__(self, seed: VertexData, k: int) -> None:
        super().__init__(seed)
        self.k = k
        self.known: Dict[int, VertexData] = {seed.vid: seed}
        if len(seed.neighbors) < k:
            self.finish((seed.vid, False))  # degree < k: trivially out
            return
        self.pull(seed.neighbors)

    def context_size(self) -> int:
        return sum(16 + 8 * len(d.neighbors) for d in self.known.values())

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        self.known.update(cand_objs)
        if self.round == 1:
            frontier: Set[int] = set()
            for data in cand_objs.values():
                self.charge(len(data.neighbors))
                frontier.update(data.neighbors)
            self.pull(frontier - set(self.known))
            return
        # round 2: peel within the known 2-hop ball
        alive = set(self.known)
        changed = True
        while changed:
            changed = False
            for vid in sorted(alive):
                inside = sum(
                    1 for u in self.known[vid].neighbors if u in alive
                )
                self.charge(len(self.known[vid].neighbors))
                # boundary vertices keep their outside degree: only
                # count them out when even their full degree is < k
                boundary = any(
                    u not in self.known for u in self.known[vid].neighbors
                )
                if inside < self.k and not boundary:
                    alive.discard(vid)
                    changed = True
        for vid in alive:
            self.subgraph.add_node(vid)
        self.finish((self.seed.vid, self.seed.vid in alive))


class KCoreApp(GMinerApp):
    name = "kcore"

    def __init__(self, k: int = K) -> None:
        self.k = k

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        return KCoreTask(vertex, self.k)

    def combine_results(self, results):
        return sorted(vid for vid, member in results if member)


def kcore_oracle(graph: Graph, k: int) -> Set[int]:
    """Classic global peeling, for validation."""
    alive = set(graph.vertices())
    changed = True
    while changed:
        changed = False
        for v in sorted(alive):
            if sum(1 for u in graph.neighbors(v) if u in alive) < k:
                alive.discard(v)
                changed = True
    return alive


def main() -> None:
    graph, _ = planted_partition_graph(
        num_communities=8, community_size=30, p_in=0.38, p_out=0.02, seed=11
    )
    config = GMinerConfig(cluster=ClusterSpec(num_nodes=4, cores_per_node=4))
    result = GMinerJob(KCoreApp(K), graph, config).run()
    mined = set(result.value)
    oracle = kcore_oracle(graph, K)

    print(f"graph: {graph}")
    print(f"{K}-core size (G-Miner)        : {len(mined)}")
    print(f"{K}-core size (global peeling) : {len(oracle)}")
    # local 2-hop peeling over-approximates the true core (it cannot
    # see far-away cascades), but never drops a true member:
    missing = oracle - mined
    extra = mined - oracle
    print(f"true members missed           : {len(missing)} (must be 0)")
    print(f"over-approximation            : {len(extra)} vertices")
    print(f"simulated time                : {result.total_seconds:.3f}s, "
          f"cpu {100 * result.cpu_utilization:.0f}%")
    assert not missing, "a true k-core member was dropped!"


if __name__ == "__main__":
    main()
