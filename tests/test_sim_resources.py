"""Unit tests for simulated resources: cores, network, disk, HDFS."""

import pytest

from repro.sim.cluster import ClusterSpec, Node, build_cluster
from repro.sim.cpu import CorePool
from repro.sim.disk import Disk
from repro.sim.engine import Simulator
from repro.sim.errors import SimulatedOOMError
from repro.sim.hdfs import SimulatedHDFS
from repro.sim.network import Network


# ---------------------------------------------------------------- cores

class TestCorePool:
    def test_single_item_duration(self, sim):
        pool = CorePool(sim, "cpu", cores=1, speed=100.0)
        done = []
        pool.submit(50.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.5)]

    def test_parallel_items_on_separate_cores(self, sim):
        pool = CorePool(sim, "cpu", cores=2, speed=100.0)
        done = []
        pool.submit(100.0, lambda: done.append(sim.now))
        pool.submit(100.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_queueing_when_cores_busy(self, sim):
        pool = CorePool(sim, "cpu", cores=1, speed=100.0)
        done = []
        pool.submit(100.0, lambda: done.append(sim.now))
        pool.submit(100.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_lazy_factory_runs_at_core_start(self, sim):
        pool = CorePool(sim, "cpu", cores=1, speed=100.0)
        seen = []

        def factory():
            seen.append(("started", sim.now))
            return (100.0, lambda: seen.append(("done", sim.now)))

        pool.submit(100.0, lambda: None)  # occupies the core until t=1
        pool.submit_lazy(factory)
        sim.run()
        assert seen[0] == ("started", pytest.approx(1.0))
        assert seen[1] == ("done", pytest.approx(2.0))

    def test_lazy_front_runs_before_queue(self, sim):
        pool = CorePool(sim, "cpu", cores=1, speed=100.0)
        order = []
        pool.submit(100.0, lambda: order.append("running"))
        pool.submit_lazy(lambda: (10.0, lambda: order.append("back")))
        pool.submit_lazy(lambda: (10.0, lambda: order.append("front")), front=True)
        sim.run()
        assert order == ["running", "front", "back"]

    def test_utilization_full_when_busy(self, sim):
        pool = CorePool(sim, "cpu", cores=2, speed=100.0)
        pool.submit(100.0, lambda: None)
        pool.submit(100.0, lambda: None)
        sim.run()
        assert pool.utilization(0.0, 1.0) == pytest.approx(1.0)

    def test_utilization_half_with_one_core_busy(self, sim):
        pool = CorePool(sim, "cpu", cores=2, speed=100.0)
        pool.submit(100.0, lambda: None)
        sim.run()
        assert pool.utilization(0.0, 1.0) == pytest.approx(0.5)

    def test_halt_drops_queue(self, sim):
        pool = CorePool(sim, "cpu", cores=1, speed=100.0)
        done = []
        pool.submit(100.0, lambda: done.append("a"))
        pool.submit(100.0, lambda: done.append("b"))
        sim.schedule(0.5, pool.halt)
        sim.run()
        assert done == []  # in-flight completion suppressed, queue dropped

    def test_rejects_bad_parameters(self, sim):
        with pytest.raises(ValueError):
            CorePool(sim, "cpu", cores=0, speed=1.0)
        with pytest.raises(ValueError):
            CorePool(sim, "cpu", cores=1, speed=0.0)
        pool = CorePool(sim, "cpu", cores=1, speed=1.0)
        with pytest.raises(ValueError):
            pool.submit(-1.0, lambda: None)


# ---------------------------------------------------------------- network

class TestNetwork:
    def test_delivery_invokes_handler(self, sim):
        net = Network(sim, num_nodes=2, latency=0.001, bandwidth=1000.0)
        got = []
        net.register_handler(1, lambda m: got.append((m.payload, sim.now)))
        net.send(0, 1, 100, "hello")
        sim.run()
        # serialisation 100/1000 = 0.1s + latency 0.001
        assert got == [("hello", pytest.approx(0.101))]

    def test_local_delivery_is_free(self, sim):
        net = Network(sim, num_nodes=1, latency=0.5, bandwidth=1.0)
        got = []
        net.register_handler(0, lambda m: got.append(sim.now))
        net.send(0, 0, 10**6, None)
        sim.run()
        assert got == [0.0]
        assert net.bytes_counter.total == 0

    def test_nic_serialises_messages(self, sim):
        net = Network(sim, num_nodes=3, latency=0.0, bandwidth=100.0)
        got = []
        net.register_handler(1, lambda m: got.append(sim.now))
        net.register_handler(2, lambda m: got.append(sim.now))
        net.send(0, 1, 100, None)
        net.send(0, 2, 100, None)
        sim.run()
        assert got == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_bytes_counted(self, sim):
        net = Network(sim, num_nodes=2, latency=0.0, bandwidth=1000.0)
        net.register_handler(1, lambda m: None)
        net.send(0, 1, 123, None)
        net.send(0, 1, 77, None)
        sim.run()
        assert net.bytes_counter.total == 200

    def test_down_node_drops_traffic(self, sim):
        net = Network(sim, num_nodes=2, latency=0.0, bandwidth=1000.0)
        got = []
        net.register_handler(1, lambda m: got.append(m))
        net.set_node_down(1)
        net.send(0, 1, 10, None)
        sim.run()
        assert got == []
        net.set_node_down(1, False)
        net.send(0, 1, 10, None)
        sim.run()
        assert len(got) == 1

    def test_on_delivered_callback(self, sim):
        net = Network(sim, num_nodes=2, latency=0.0, bandwidth=1000.0)
        got = []
        net.send(0, 1, 10, "p", on_delivered=lambda m: got.append(m.payload))
        sim.run()
        assert got == ["p"]


# ---------------------------------------------------------------- disk

class TestDisk:
    def test_read_duration(self, sim):
        disk = Disk(sim, 0, read_bandwidth=100.0, write_bandwidth=100.0, latency=0.5)
        done = []
        disk.read(100, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.5)]

    def test_requests_are_fifo(self, sim):
        disk = Disk(sim, 0, read_bandwidth=100.0, write_bandwidth=100.0, latency=0.0)
        done = []
        disk.write(100, lambda: done.append(("w", sim.now)))
        disk.read(100, lambda: done.append(("r", sim.now)))
        sim.run()
        assert done == [("w", pytest.approx(1.0)), ("r", pytest.approx(2.0))]

    def test_bytes_accounted(self, sim):
        disk = Disk(sim, 0)
        disk.read(100, lambda: None)
        disk.write(200, lambda: None)
        sim.run()
        assert disk.bytes_read.total == 100
        assert disk.bytes_written.total == 200

    def test_negative_size_rejected(self, sim):
        disk = Disk(sim, 0)
        with pytest.raises(ValueError):
            disk.read(-1, lambda: None)


# ---------------------------------------------------------------- HDFS

class TestHDFS:
    def test_write_then_read_roundtrip(self, sim):
        hdfs = SimulatedHDFS(sim)
        got = []
        hdfs.write("a/b", {"k": 1}, size_bytes=1000,
                   on_done=lambda: hdfs.read("a/b", on_done=got.append))
        sim.run()
        assert got == [{"k": 1}]

    def test_replication_multiplies_write_cost(self, sim):
        h1 = SimulatedHDFS(sim, replication=1)
        h3 = SimulatedHDFS(sim, replication=3)
        d1 = h1.write("p", None, 10**6)
        d3 = h3.write("p", None, 10**6)
        assert d3 > d1

    def test_read_missing_path_raises(self, sim):
        hdfs = SimulatedHDFS(sim)
        with pytest.raises(FileNotFoundError):
            hdfs.read("nope")

    def test_contents_survive_everything(self, sim):
        """HDFS is the durable store: content persists (that is what
        makes checkpoint recovery possible)."""
        hdfs = SimulatedHDFS(sim)
        hdfs.write("ckpt", [1, 2, 3], 24)
        assert hdfs.read_now("ckpt") == [1, 2, 3]
        assert hdfs.exists("ckpt")
        hdfs.delete("ckpt")
        assert not hdfs.exists("ckpt")


# ---------------------------------------------------------------- node / cluster

class TestNodeAndCluster:
    def test_memory_limit_enforced(self, sim):
        spec = ClusterSpec(num_nodes=1, memory_per_node=1000)
        node = Node(sim, 0, spec)
        node.allocate(900)
        with pytest.raises(SimulatedOOMError):
            node.allocate(200)

    def test_free_releases_memory(self, sim):
        spec = ClusterSpec(num_nodes=1, memory_per_node=1000)
        node = Node(sim, 0, spec)
        node.allocate(900)
        node.free(800)
        node.allocate(500)  # fits again
        assert node.memory.current == 600
        assert node.memory.peak == 900

    def test_fail_and_recover(self, sim):
        spec = ClusterSpec(num_nodes=1)
        node = Node(sim, 0, spec)
        node.allocate(100)
        node.fail()
        assert not node.alive
        node.recover()
        assert node.alive
        assert node.memory.current == 0

    def test_build_cluster_shapes(self):
        spec = ClusterSpec(num_nodes=3, cores_per_node=2)
        cluster = build_cluster(spec, extra_network_endpoints=1)
        assert len(cluster.nodes) == 3
        assert cluster.spec.total_cores == 6
        # the extra endpoint is addressable
        cluster.network.register_handler(3, lambda m: None)

    def test_spec_with_helpers(self):
        spec = ClusterSpec(num_nodes=5, cores_per_node=8)
        assert spec.with_nodes(2).num_nodes == 2
        assert spec.with_cores(4).cores_per_node == 4
        assert spec.with_nodes(2).cores_per_node == 8
