"""Unit tests for the Reference-Counting Vertex Cache (paper §7)."""

import pytest

from repro.core.rcv_cache import CachePolicy, RCVCache
from repro.graph.graph import VertexData


def vd(vid, degree=2):
    return VertexData(vid=vid, neighbors=tuple(range(1000, 1000 + degree)))


SIZE = vd(0).estimate_size()


class TestBasics:
    def test_insert_and_lookup(self):
        cache = RCVCache(capacity_bytes=10 * SIZE)
        assert cache.insert(vd(1))
        assert cache.lookup(1).vid == 1
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = RCVCache(capacity_bytes=10 * SIZE)
        assert cache.lookup(9) is None
        assert cache.misses == 1
        assert cache.hit_rate() == 0.0

    def test_peek_does_not_count(self):
        cache = RCVCache(capacity_bytes=10 * SIZE)
        cache.insert(vd(1))
        cache.peek(1)
        cache.peek(2)
        assert cache.hits == 0 and cache.misses == 0

    def test_reinsert_adds_refs(self):
        cache = RCVCache(capacity_bytes=10 * SIZE)
        cache.insert(vd(1), refs=1)
        cache.insert(vd(1), refs=2)
        assert cache.refs(1) == 3
        assert len(cache) == 1

    def test_memory_hooks(self):
        allocs, frees = [], []
        cache = RCVCache(
            capacity_bytes=10 * SIZE,
            on_alloc=allocs.append,
            on_free=frees.append,
        )
        cache.insert(vd(1))
        assert allocs == [SIZE]
        cache.drop_all()
        assert frees == [SIZE]


class TestReferenceCounting:
    def test_addref_release(self):
        cache = RCVCache(capacity_bytes=10 * SIZE)
        cache.insert(vd(1), refs=1)
        cache.addref(1)
        assert cache.refs(1) == 2
        cache.release(1)
        cache.release(1)
        assert cache.refs(1) == 0

    def test_release_never_negative(self):
        cache = RCVCache(capacity_bytes=10 * SIZE)
        cache.insert(vd(1), refs=0)
        cache.release(1)
        assert cache.refs(1) == 0

    def test_addref_on_missing_raises(self):
        cache = RCVCache(capacity_bytes=10 * SIZE)
        with pytest.raises(KeyError):
            cache.addref(5)

    def test_release_on_missing_is_noop(self):
        RCVCache(capacity_bytes=10 * SIZE).release(5)


class TestRCVEviction:
    def test_referenced_entries_never_evicted(self):
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.RCV)
        cache.insert(vd(1), refs=1)
        cache.insert(vd(2), refs=1)
        # full of referenced entries: the new insert must be refused
        assert not cache.insert(vd(3), refs=1)
        assert cache.rejected_inserts == 1
        assert 1 in cache and 2 in cache

    def test_lazy_model_keeps_zero_ref_until_needed(self):
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.RCV)
        cache.insert(vd(1), refs=0)
        assert 1 in cache  # zero-ref is NOT deleted eagerly
        cache.insert(vd(2), refs=1)
        assert 1 in cache
        cache.insert(vd(3), refs=1)  # now space is needed
        assert 1 not in cache
        assert cache.evictions == 1

    def test_oldest_zero_ref_evicted_first(self):
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.RCV)
        cache.insert(vd(1), refs=0)
        cache.insert(vd(2), refs=0)
        cache.insert(vd(3), refs=0)
        assert 1 not in cache
        assert 2 in cache and 3 in cache

    def test_release_then_evictable(self):
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.RCV)
        cache.insert(vd(1), refs=1)
        cache.insert(vd(2), refs=1)
        assert not cache.insert(vd(3), refs=1)
        cache.release(1)
        assert cache.insert(vd(3), refs=1)
        assert 1 not in cache

    def test_oversized_item_rejected(self):
        cache = RCVCache(capacity_bytes=SIZE // 2)
        assert not cache.insert(vd(1))


class TestAblationPolicies:
    def test_lru_evicts_least_recent_even_if_referenced(self):
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.LRU)
        cache.insert(vd(1), refs=5)
        cache.insert(vd(2), refs=0)
        cache.lookup(1)  # touch 1 so 2 is least recent
        cache.insert(vd(3), refs=0)
        assert 2 not in cache
        assert 1 in cache

    def test_fifo_evicts_insertion_order(self):
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.FIFO)
        cache.insert(vd(1), refs=5)
        cache.insert(vd(2), refs=0)
        cache.lookup(1)  # FIFO ignores recency
        cache.insert(vd(3), refs=0)
        assert 1 not in cache  # first in, first out — despite its refs

    def test_policy_string_roundtrip(self):
        assert CachePolicy("rcv") is CachePolicy.RCV
        assert CachePolicy("lru") is CachePolicy.LRU
        assert CachePolicy("fifo") is CachePolicy.FIFO


class TestEvictionRacingMigration:
    """The eviction/migration race: a task migrating out releases its
    cached vertices, pressure evicts them, and the task (or a twin)
    arrives back expecting them.  The cache's contract is that the
    returning side must probe (``lookup``) before pinning (``addref``)
    — these tests pin each leg of that protocol."""

    def test_released_vertex_evicted_while_task_in_transit(self):
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.RCV)
        cache.insert(vd(1), refs=1)  # pinned by the departing task
        cache.release(1)  # migrate-out: pins dropped, data retained
        assert 1 in cache
        # memory pressure while the task is on the wire
        cache.insert(vd(2), refs=1)
        cache.insert(vd(3), refs=1)
        assert 1 not in cache
        assert cache.evictions == 1

    def test_addref_after_eviction_is_an_error_not_a_resurrection(self):
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.RCV)
        cache.insert(vd(1), refs=1)
        cache.release(1)
        cache.insert(vd(2), refs=1)
        cache.insert(vd(3), refs=1)  # evicts 1
        with pytest.raises(KeyError):
            cache.addref(1)  # blind re-pin must fail loudly

    def test_migrate_in_probes_then_reinserts(self):
        cache = RCVCache(capacity_bytes=3 * SIZE, policy=CachePolicy.RCV)
        cache.insert(vd(1), refs=1)
        cache.release(1)
        cache.insert(vd(2), refs=1)
        cache.insert(vd(3), refs=1)
        cache.insert(vd(4), refs=0)  # evicts the released 1
        assert 1 not in cache
        # the migrated-in task probes, misses, re-pulls and re-inserts
        # (evicting the idle 4 to make room)
        assert cache.lookup(1) is None
        assert cache.misses == 1
        assert cache.insert(vd(1), refs=2)
        assert cache.refs(1) == 2

    def test_pinned_vertex_survives_the_transit_window(self):
        # a second local task still references the vertex: the migration
        # of the first must not expose it to eviction
        cache = RCVCache(capacity_bytes=2 * SIZE, policy=CachePolicy.RCV)
        cache.insert(vd(1), refs=2)  # two tasks share it
        cache.release(1)  # one migrates out
        assert not cache.insert(vd(2), refs=1) or 1 in cache
        cache.insert(vd(3), refs=0)
        assert 1 in cache  # still pinned by the stayer
        assert cache.refs(1) == 1

    def test_race_is_exercised_end_to_end(self):
        """A real job under cache pressure with stealing on: evictions
        and migrations both happen, and the result is still exact."""
        from repro.apps import TriangleCountingApp
        from repro.graph.algorithms import triangle_count_exact
        from repro.sim.cluster import ClusterSpec
        from tests.conftest import make_clustered_graph, run_job

        graph = make_clustered_graph()
        # single-core nodes with tiny caches and tiny store blocks:
        # skewed BDG partitions leave some workers idle while others
        # still hold stealable (non-head-block) tasks
        spec = ClusterSpec(num_nodes=4, cores_per_node=1)
        job, result = run_job(
            TriangleCountingApp(), graph, spec,
            partitioner="bdg", cache_capacity_bytes=2048,
            store_block_tasks=2, steal_batch=4,
            steal_local_rate_threshold=2.0, steal_cost_threshold=1e9,
            steal_retry_interval=0.002,
        )
        assert result.value == triangle_count_exact(graph)
        assert sum(c.evictions for w in job.workers for c in w.caches) > 0
        assert sum(w.stats.tasks_migrated_in for w in job.workers) > 0
