"""Tests for the baseline system models (paper §2, §8.2)."""

import pytest

from repro.apps import MaxCliqueApp, TriangleCountingApp
from repro.baselines import (
    BatchSubgraphSystem,
    EmbeddingExploreSystem,
    SingleThreadSystem,
    VertexCentricSystem,
)
from repro.baselines.common import GraphView, UnsupportedWorkload
from repro.core.job import JobStatus
from repro.graph.algorithms import triangle_count_exact
from repro.graph.datasets import load_dataset
from repro.mining.cliques import max_clique_sequential
from repro.mining.cost import WorkMeter
from repro.sim.cluster import ClusterSpec
from tests.conftest import adjacency_of


SPEC = ClusterSpec(num_nodes=4, cores_per_node=2)


class TestGraphView:
    def test_materialises_all_fields(self, small_labeled_graph):
        view = GraphView.of(small_labeled_graph)
        assert len(view.adjacency) == small_labeled_graph.num_vertices
        assert view.labels[0] == small_labeled_graph.label(0)


class TestSingleThread:
    def test_tc_exact(self, small_social_graph):
        result = SingleThreadSystem().run("tc", small_social_graph)
        assert result.ok
        assert result.value == triangle_count_exact(small_social_graph)
        assert result.cpu_utilization == 1.0
        assert result.network_bytes == 0

    def test_mcf_exact(self, small_social_graph):
        expected = max_clique_sequential(
            adjacency_of(small_social_graph), WorkMeter()
        )
        result = SingleThreadSystem().run("mcf", small_social_graph)
        assert len(result.value) == len(expected)

    def test_all_five_workloads_supported(self, small_labeled_graph):
        g = load_dataset("dblp-s").graph
        st = SingleThreadSystem()
        assert st.run("tc", g).ok
        assert st.run("mcf", g).ok
        assert st.run("gm", small_labeled_graph).ok
        assert st.run("cd", g).ok
        assert st.run("gc", g, exemplars=sorted(g.vertices())[:3]).ok

    def test_time_proportional_to_work(self, small_social_graph):
        fast = SingleThreadSystem(core_speed=1e6).run("tc", small_social_graph)
        slow = SingleThreadSystem(core_speed=1e3).run("tc", small_social_graph)
        assert slow.total_seconds == pytest.approx(fast.total_seconds * 1000)

    def test_time_limit_aborts(self, small_social_graph):
        result = SingleThreadSystem(
            core_speed=1e3, time_limit=1e-4
        ).run("tc", small_social_graph)
        assert result.status is JobStatus.TIMEOUT

    def test_unknown_workload_rejected(self, small_social_graph):
        with pytest.raises(ValueError):
            SingleThreadSystem().run("pagerank", small_social_graph)


class TestVertexCentric:
    def test_tc_exact_both_flavors(self, small_social_graph):
        expected = triangle_count_exact(small_social_graph)
        for flavor in ("giraph", "graphx"):
            result = VertexCentricSystem(flavor, SPEC).run("tc", small_social_graph)
            assert result.ok
            assert result.value == expected

    def test_mcf_exact(self, small_social_graph):
        expected = max_clique_sequential(
            adjacency_of(small_social_graph), WorkMeter()
        )
        result = VertexCentricSystem("giraph", SPEC).run("mcf", small_social_graph)
        assert len(result.value) == len(expected)

    def test_cannot_express_mining_apps(self, small_social_graph):
        system = VertexCentricSystem("giraph", SPEC)
        for app in ("gm", "cd", "gc"):
            with pytest.raises(UnsupportedWorkload):
                system.run(app, small_social_graph)

    def test_giraph_ooms_on_neighborhood_blowup(self):
        g = load_dataset("orkut-s").graph
        tight = ClusterSpec(num_nodes=4, cores_per_node=2, memory_per_node=10**6)
        result = VertexCentricSystem("giraph", tight).run("mcf", g)
        assert result.status is JobStatus.OOM

    def test_graphx_spills_instead_of_oom(self):
        g = load_dataset("orkut-s").graph
        tight = ClusterSpec(num_nodes=4, cores_per_node=2, memory_per_node=10**6)
        result = VertexCentricSystem("graphx", tight, time_limit=None).run("mcf", g)
        assert result.status is not JobStatus.OOM
        assert result.disk_bytes > 0

    def test_graphx_slower_than_giraph(self, small_social_graph):
        giraph = VertexCentricSystem("giraph", SPEC).run("tc", small_social_graph)
        graphx = VertexCentricSystem("graphx", SPEC).run("tc", small_social_graph)
        assert graphx.total_seconds > giraph.total_seconds

    def test_time_limit_enforced(self, small_social_graph):
        result = VertexCentricSystem("giraph", SPEC, time_limit=1e-6).run(
            "tc", small_social_graph
        )
        assert result.status is JobStatus.TIMEOUT

    def test_unknown_flavor_rejected(self):
        with pytest.raises(ValueError):
            VertexCentricSystem("spark", SPEC)


class TestEmbeddingExplore:
    def test_tc_exact(self, small_social_graph):
        result = EmbeddingExploreSystem(SPEC).run("tc", small_social_graph)
        assert result.ok
        assert result.value == triangle_count_exact(small_social_graph)

    def test_mcf_finds_max_clique_on_small_graph(self, tiny_graph):
        result = EmbeddingExploreSystem(SPEC).run("mcf", tiny_graph)
        assert result.ok
        assert len(result.value) == 3

    def test_mcf_times_out_on_dense_graph(self):
        g = load_dataset("orkut-s").graph
        result = EmbeddingExploreSystem(SPEC, time_limit=0.5).run("mcf", g)
        assert result.status is JobStatus.TIMEOUT

    def test_unsupported_workloads(self, small_social_graph):
        with pytest.raises(UnsupportedWorkload):
            EmbeddingExploreSystem(SPEC).run("gm", small_social_graph)

    def test_wasteful_candidates_tracked(self, small_social_graph):
        result = EmbeddingExploreSystem(SPEC).run("tc", small_social_graph)
        # expand-then-filter generates far more candidates than triangles
        assert result.stats["candidates"] > 10 * result.value


class TestBatchSubgraph:
    def test_tc_exact(self, small_social_graph):
        result = BatchSubgraphSystem(SPEC).run_app(
            TriangleCountingApp(), small_social_graph
        )
        assert result.ok
        assert result.value == triangle_count_exact(small_social_graph)

    def test_mcf_exact(self, small_social_graph):
        expected = max_clique_sequential(
            adjacency_of(small_social_graph), WorkMeter()
        )
        result = BatchSubgraphSystem(SPEC).run_app(
            MaxCliqueApp(), small_social_graph
        )
        assert len(result.value) == len(expected)

    def test_phases_alternate(self, small_social_graph):
        system = BatchSubgraphSystem(SPEC)
        result = system.run_app(TriangleCountingApp(), small_social_graph)
        assert result.stats["phases"] >= 2

    def test_batch_cpu_utilization_suffers(self, small_social_graph):
        """The barrier makes G-thinker-like CPU utilisation lower than
        G-Miner's on the same workload — Table 4's headline contrast."""
        from repro.core import GMinerConfig, GMinerJob

        gt = BatchSubgraphSystem(SPEC).run_app(
            TriangleCountingApp(), small_social_graph
        )
        gm = GMinerJob(
            TriangleCountingApp(), small_social_graph, GMinerConfig(cluster=SPEC)
        ).run()
        assert gm.cpu_utilization > gt.cpu_utilization

    def test_timeline_available(self, small_social_graph):
        result = BatchSubgraphSystem(SPEC).run_app(
            TriangleCountingApp(), small_social_graph
        )
        times, series = result.utilization_series(bins=10)
        assert len(times) == 10 and "cpu" in series
