"""``repro.obs`` — the unified observability subsystem.

One place for every measurement the reproduction makes:

* :class:`MetricsRegistry` — labelled counters, gauges and
  fixed-bucket histograms with deterministic snapshot/merge
  (:mod:`repro.obs.metrics`);
* :class:`Tracer` / :class:`Span` — span tracing on the simulator's
  virtual clock, nesting via parent ids (:mod:`repro.obs.tracing`);
* :class:`ObsSession` — what a job attaches when
  ``GMinerConfig(enable_obs=True)`` (or an ambient
  :class:`ObsCollector` installed via :func:`collecting`) turns
  instrumentation on (:mod:`repro.obs.session`);
* exporters — Chrome ``trace_event`` JSON for Perfetto, Prometheus
  text exposition, and the stable JSON metrics schema
  (:mod:`repro.obs.exporters`);
* the bench regression gate — ``python -m repro.obs.baseline`` writes
  ``results/BENCH_obs.json``; ``python -m repro.obs.compare`` fails
  when tracked quantities drift (:mod:`repro.obs.compare`).

Observability is strictly read-only with respect to the simulation: it
never schedules events or draws randomness, so enabling it cannot
change any simulated quantity, and two same-seed runs produce
byte-identical snapshots.  With it disabled every instrumented hot
path pays a single ``is None`` branch and allocates nothing —
:func:`allocation_counts` is the probe the zero-overhead test uses.
"""

from __future__ import annotations

from typing import Dict

from repro.obs import metrics as _metrics_mod
from repro.obs import tracing as _tracing_mod
from repro.obs.env import environment_metadata
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.session import (
    METRICS_SCHEMA,
    RUN_SCHEMA,
    ObsCollector,
    ObsSession,
    collecting,
    current_collector,
)
from repro.obs.tracing import MASTER_TID, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "Span",
    "Tracer",
    "MASTER_TID",
    "ObsSession",
    "ObsCollector",
    "collecting",
    "current_collector",
    "RUN_SCHEMA",
    "METRICS_SCHEMA",
    "allocation_counts",
    "environment_metadata",
]


def allocation_counts() -> Dict[str, int]:
    """Process-wide observability allocation counters (test hook).

    ``spans`` counts every :class:`Span` ever constructed, ``series``
    every metric series.  The zero-overhead test snapshots these,
    runs a job with observability off, and asserts neither moved.
    """
    return {
        "spans": _tracing_mod.spans_created(),
        "series": _metrics_mod.series_created(),
    }
