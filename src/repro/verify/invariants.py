"""Runtime invariant checking for the simulated G-Miner runtime.

An :class:`InvariantMonitor` rides along with one job (armed by
``GMinerConfig(verify=True)`` or ``REPRO_VERIFY=1``) and asserts the
simulator's conservation laws at its existing barrier points:

* **message conservation** — every message offered to the fabric is
  eventually delivered, dropped (for a counted reason) or still in
  flight: ``offered == delivered + dropped + in_flight``;
* **work conservation** — the work units workers submit to their core
  pools equal the units the pools independently accumulate at dispatch;
* **kernel metering** — set-operation work the vectorised kernels
  report through the metering hook never exceeds the work charged to
  the cores (a kernel batch whose cost was never billed is a bug);
* **clock monotonicity** — the simulated clock never runs backwards;
* **task conservation** — tasks created + restored equal tasks dead +
  lost-to-fault once the job finishes, and the per-worker completion
  counters agree with the controller;
* **cache / store accounting** — RCV cache byte usage matches the sum
  of resident entries and stays within capacity, reference counts are
  sane, overflow slots are pinned, and the task store keeps exactly
  its head block in memory.

The monitor is strictly **read-only** over the simulation: it never
schedules events, sends messages or draws randomness, so enabling it
cannot change any simulated quantity — fault-free runs stay
byte-identical.  When disabled the instrumented sites cost one
``is None`` branch and allocate nothing; :func:`allocation_counts`
proves it the same way ``repro.obs`` does.
"""

from __future__ import annotations

import math
import os
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Process-wide allocation probes.  Monitors and window records are the
#: only things this module allocates; a run with verification off must
#: leave both counters untouched (asserted in tests/test_verify.py).
_monitors_created = 0
_records_created = 0


def allocation_counts() -> Dict[str, int]:
    """Snapshot of the module's allocation counters (zero-overhead probe)."""
    return {"monitors": _monitors_created, "records": _records_created}


def verify_env_enabled(environ=os.environ) -> bool:
    """True when ``REPRO_VERIFY`` asks for invariant checking."""
    return environ.get("REPRO_VERIFY", "") not in ("", "0")


class InvariantViolation(AssertionError):
    """A conservation law failed; carries a structured, replayable repro.

    ``window`` is the monitor's bounded ring of recent events (oldest
    first) — the minimal context needed to replay the failure by hand
    — and :meth:`to_dict` flattens everything for JSON persistence.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        site: str = "",
        time: float = 0.0,
        observed: Any = None,
        expected: Any = None,
        window: Tuple[Tuple[float, str, str], ...] = (),
    ) -> None:
        self.invariant = invariant
        self.site = site
        self.time = time
        self.observed = observed
        self.expected = expected
        self.window = tuple(window)
        lines = [
            f"invariant {invariant!r} violated at {site or '?'} "
            f"(t={time:.6f}): {message}"
        ]
        if observed is not None or expected is not None:
            lines.append(f"  observed={observed!r} expected={expected!r}")
        if self.window:
            lines.append(
                f"  last {len(self.window)} recorded events (oldest first):"
            )
            lines.extend(
                f"    t={t:.6f} [{s}] {e}" for t, s, e in self.window
            )
        super().__init__("\n".join(lines))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "invariant": self.invariant,
            "site": self.site,
            "time": self.time,
            "observed": repr(self.observed),
            "expected": repr(self.expected),
            "window": [
                {"time": t, "site": s, "event": e} for t, s, e in self.window
            ],
        }


class InvariantMonitor:
    """Conservation-law checker for one job.

    The runtime calls the ``on_*`` accounting hooks from its hot paths
    (each guarded by a single ``verify is None`` branch when disabled)
    and the ``check_*`` methods at its existing barrier points — the
    per-worker progress tick and end of job — so the monitor itself
    introduces no new simulated events.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        window: int = 64,
    ) -> None:
        global _monitors_created
        _monitors_created += 1
        self._clock = clock or (lambda: 0.0)
        self._window: deque = deque(maxlen=window)
        self.checks = 0
        self.violations = 0
        # -- message conservation --------------------------------------
        self.net_offered = 0
        self.net_delivered = 0
        self.net_dropped: Dict[str, int] = {}
        self.net_duplicated = 0  # fault-injected extra copies
        self.net_inflight = 0
        # -- work conservation ------------------------------------------
        self.work_performed = 0.0
        self.kernel_scanned = 0.0
        # -- clock / master monotonicity --------------------------------
        self.max_event_time = 0.0
        self._last_view = -1

    # -- recording / failing -------------------------------------------

    def record(self, site: str, event: str) -> None:
        """Append one event to the bounded repro window."""
        global _records_created
        _records_created += 1
        self._window.append((self._clock(), site, event))

    def fail(
        self,
        invariant: str,
        message: str,
        *,
        site: str = "",
        observed: Any = None,
        expected: Any = None,
    ) -> None:
        self.violations += 1
        raise InvariantViolation(
            invariant,
            message,
            site=site,
            time=self._clock(),
            observed=observed,
            expected=expected,
            window=tuple(self._window),
        )

    def require(
        self,
        condition: bool,
        invariant: str,
        message: str,
        *,
        site: str = "",
        observed: Any = None,
        expected: Any = None,
    ) -> None:
        self.checks += 1
        if not condition:
            self.fail(
                invariant,
                message,
                site=site,
                observed=observed,
                expected=expected,
            )

    # -- sim.engine -----------------------------------------------------

    def on_sim_event(self, now: float, event_time: float) -> None:
        """Called as the run loop advances the clock to ``event_time``."""
        if event_time < now:
            self.fail(
                "clock-monotonic",
                "event popped before the current virtual time",
                site="sim.engine",
                observed=event_time,
                expected=f">= {now}",
            )
        self.max_event_time = event_time

    # -- sim.network -----------------------------------------------------

    def on_net_offered(self, src: int, dst: int, payload: Any) -> None:
        self.net_offered += 1
        self.record("net", f"offer {type(payload).__name__} {src}->{dst}")

    def on_net_dropped(self, reason: str, src: int, dst: int) -> None:
        self.net_dropped[reason] = self.net_dropped.get(reason, 0) + 1
        self.record("net", f"drop[{reason}] {src}->{dst}")

    def on_net_accepted(self, copies: int) -> None:
        """``copies`` deliveries scheduled (1 + fault-injected duplicates)."""
        self.net_inflight += copies
        self.net_duplicated += copies - 1

    def on_net_settled(self, message: Any, delivered: bool) -> None:
        self.net_inflight -= 1
        if self.net_inflight < 0:
            self.fail(
                "message-conservation",
                "more deliveries settled than sends accepted",
                site="sim.network",
                observed=self.net_inflight,
                expected=">= 0",
            )
        if delivered:
            self.net_delivered += 1
        else:
            self.on_net_dropped(
                "dst_down", getattr(message, "src", -1), getattr(message, "dst", -1)
            )

    def check_network(self, network) -> None:
        """Barrier check: the fabric's books balance.

        Fault-injected duplicates mean one offered message can settle
        more than once, so the duplicated copies appear on the offered
        side of the ledger.
        """
        dropped = sum(self.net_dropped.values())
        self.require(
            self.net_offered + self.net_duplicated
            == self.net_delivered + dropped + self.net_inflight,
            "message-conservation",
            "messages offered + duplicated != delivered + dropped + in-flight",
            site="sim.network",
            observed=(
                f"offered={self.net_offered} duplicated={self.net_duplicated} "
                f"delivered={self.net_delivered} "
                f"dropped={dict(sorted(self.net_dropped.items()))} "
                f"inflight={self.net_inflight}"
            ),
            expected="offered + duplicated == delivered + dropped + inflight",
        )
        # cross-check against the fabric's own independent counter:
        # messages_sent counts exactly the offers that survived the
        # endpoint-down gate
        accepted = self.net_offered - self.net_dropped.get("endpoint_down", 0)
        self.require(
            network.messages_sent == accepted,
            "message-conservation",
            "the fabric's messages_sent disagrees with the monitor",
            site="sim.network",
            observed=network.messages_sent,
            expected=accepted,
        )

    # -- work / kernels ---------------------------------------------------

    def on_work(self, units: float, site: str) -> None:
        """A worker handed ``units`` of computation to its core pool."""
        if units < 0:
            self.fail(
                "work-conservation",
                "negative work submitted",
                site=site,
                observed=units,
                expected=">= 0",
            )
        self.work_performed += units

    def kernel_batch(self, op: str, units: float) -> None:
        """Metering hook: a vectorised kernel performed ``units`` of work."""
        self.kernel_scanned += units

    def check_work(self, nodes) -> None:
        """Barrier check: pools and workers agree on work done so far."""
        pool_total = sum(node.cores.total_work_units for node in nodes)
        self.require(
            math.isclose(
                pool_total, self.work_performed, rel_tol=1e-9, abs_tol=1e-6
            ),
            "work-conservation",
            "core pools accumulated different work than workers performed",
            site="sim.cpu",
            observed=pool_total,
            expected=self.work_performed,
        )
        self.require(
            self.kernel_scanned <= self.work_performed + 1e-6,
            "kernel-metering",
            "kernels reported more work than was ever charged to cores",
            site="kernels",
            observed=self.kernel_scanned,
            expected=f"<= {self.work_performed}",
        )

    # -- core.worker -------------------------------------------------------

    def check_worker(self, worker) -> None:
        """Barrier check: one worker's cache/store/pipeline accounting."""
        site = f"worker[{worker.worker_id}]"
        for index, cache in enumerate(worker.caches):
            resident = sum(e.size for e in cache._entries.values())
            self.require(
                cache.used_bytes == resident,
                "cache-accounting",
                f"cache {index} used_bytes diverged from resident entries",
                site=site,
                observed=cache.used_bytes,
                expected=resident,
            )
            self.require(
                cache.used_bytes <= cache.capacity_bytes,
                "cache-capacity",
                f"cache {index} exceeded its byte capacity",
                site=site,
                observed=cache.used_bytes,
                expected=f"<= {cache.capacity_bytes}",
            )
            for vid, entry in cache._entries.items():
                if entry.refs < 0:
                    self.fail(
                        "cache-refs",
                        f"cache {index} entry {vid} has a negative refcount",
                        site=site,
                        observed=entry.refs,
                        expected=">= 0",
                    )
        for vid, (data, refs) in worker.overflow.items():
            self.require(
                refs >= 1,
                "overflow-refs",
                f"overflow slot {vid} is resident but unreferenced",
                site=site,
                observed=refs,
                expected=">= 1",
            )
        store = worker.store
        resident_tasks = sum(len(b.entries) for b in store._blocks)
        self.require(
            len(store) == resident_tasks,
            "store-accounting",
            "task store size counter diverged from its blocks",
            site=site,
            observed=len(store),
            expected=resident_tasks,
        )
        for block in store._blocks[1:]:
            if block.in_memory:
                self.fail(
                    "store-memory-bound",
                    "a non-head task store block is resident in memory",
                    site=site,
                    observed=f"{len(store._blocks)} blocks",
                    expected="only the head block in memory",
                )
        for task_id in worker.cmq:
            self.require(
                task_id in worker.live_tasks,
                "task-conservation",
                f"CMQ entry {task_id} refers to a task that is not live",
                site=site,
                observed=task_id,
                expected="a live task id",
            )

    # -- core.master -------------------------------------------------------

    def check_master(self, master) -> None:
        """Barrier check: membership/view bookkeeping is consistent."""
        site = "master"
        if master.view < self._last_view:
            self.fail(
                "view-monotonic",
                "the membership view number went backwards",
                site=site,
                observed=master.view,
                expected=f">= {self._last_view}",
            )
        self._last_view = master.view
        overlap = master.suspected & master.down_workers
        self.require(
            not overlap,
            "membership-sanity",
            "workers simultaneously suspected and confirmed down",
            site=site,
            observed=sorted(overlap),
            expected="disjoint sets",
        )
        stale = set(master.progress_table) & master.down_workers
        self.require(
            not stale,
            "membership-sanity",
            "progress table retains entries for confirmed-down workers",
            site=site,
            observed=sorted(stale),
            expected="no down workers in the progress table",
        )

    # -- core.job ----------------------------------------------------------

    def check_end_of_job(self, *, controller, workers, master, cluster) -> None:
        """The full conservation audit at job completion (or abort).

        The network, work and per-worker checks hold at any barrier —
        in-flight quantities appear on both sides — so they run even
        for OOM/TIMEOUT aborts.  The task-conservation ledger only
        balances once the controller declares the job finished.
        """
        self.check_network(cluster.network)
        self.check_work(cluster.nodes)
        for worker in workers:
            self.check_worker(worker)
        if master is not None:
            self.check_master(master)
        if not controller.finished:
            return
        self.require(
            controller.live == 0,
            "task-conservation",
            "job finished with live tasks outstanding",
            site="core.job",
            observed=controller.live,
            expected=0,
        )
        created = controller.total_created
        restored = controller.total_restored
        dead = controller.total_dead
        lost = controller.total_lost
        self.require(
            created + restored == dead + lost,
            "task-conservation",
            "spawned + restored tasks != completed + lost-to-fault",
            site="core.job",
            observed=(
                f"created={created} restored={restored} "
                f"dead={dead} lost={lost}"
            ),
            expected="created + restored == dead + lost",
        )
        completed = sum(w.stats.tasks_completed for w in workers)
        self.require(
            completed == dead,
            "task-conservation",
            "worker completion counters disagree with the controller",
            site="core.job",
            observed=completed,
            expected=dead,
        )

    def summary(self) -> Dict[str, Any]:
        """Counters for diagnostics (never part of result fingerprints)."""
        return {
            "checks": self.checks,
            "violations": self.violations,
            "net_offered": self.net_offered,
            "net_delivered": self.net_delivered,
            "net_dropped": dict(sorted(self.net_dropped.items())),
            "net_duplicated": self.net_duplicated,
            "net_inflight": self.net_inflight,
            "work_performed": self.work_performed,
            "kernel_scanned": self.kernel_scanned,
        }
