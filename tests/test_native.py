"""The native execution engine's contracts.

Three families of guarantees:

* **sim-vs-native equivalence** — every schedule-independent workload
  (tc/gm/gl/cd/gc and any compiled plan) produces the identical value,
  ``num_results`` and total work-unit charges under
  ``execution="native"`` as under the simulator, at any worker count;
  MCF (whose branch-and-bound pruning feeds on the evolving global
  bound, a schedule artefact) still agrees on the answer and the
  aggregated bound;
* **native determinism** — the full result is byte-identical across
  worker counts and repeated runs, the steal schedule notwithstanding;
* **refusals and knobs** — failure plans fail fast, config validation
  rejects nonsense, ``backend="auto"`` never changes explicit-backend
  results, ``explain=True`` runs nothing.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

import repro
from repro.apps import (
    CommunityDetectionApp,
    GraphClusteringApp,
    GraphMatchingApp,
    GraphletCountingApp,
    MaxCliqueApp,
    TriangleCountingApp,
)
from repro.core.config import GMinerConfig
from repro.core.job import GMinerJob, JobStatus
from repro.graph.generators import random_attributes
from repro.native import run_native, seed_chunks
from repro.parallel import BuildCache
from repro.parallel.cache import set_build_cache
from repro.plans import PlanApp, compile_pattern, motif
from repro.sim.cluster import ClusterSpec
from repro.sim.failures import FailurePlan
from repro.verify.metamorphic import normalize_value

from .conftest import make_clustered_graph

#: Worker counts the equivalence tests sweep.  ``REPRO_NATIVE_TEST_WORKERS``
#: overrides (comma-separated), so CI can pin the multi-process axis
#: (e.g. ``2``) to what its runner actually has cores for.
WORKER_COUNTS = tuple(
    int(w) for w in os.environ["REPRO_NATIVE_TEST_WORKERS"].split(",")
) if os.environ.get("REPRO_NATIVE_TEST_WORKERS") else (1, 2, 4)
#: Small chunks so even the test graphs exercise stealing at 2+ workers.
CHUNK = 16


def _attributed_graph():
    graph = make_clustered_graph()
    random_attributes(graph, seed=11)
    return graph


def _app_factories():
    """(workload, graph, app factory) for all six legacy workloads."""
    plain = make_clustered_graph()
    labeled = make_clustered_graph(labeled=True)
    attributed = _attributed_graph()
    exemplars = sorted(attributed.vertices())[:3]
    return [
        ("tc", plain, TriangleCountingApp),
        ("mcf", plain, MaxCliqueApp),
        ("gm", labeled, GraphMatchingApp),
        ("gl", plain, lambda: GraphletCountingApp(k=4, classify=True)),
        ("cd", attributed, CommunityDetectionApp),
        ("gc", attributed,
         lambda: GraphClusteringApp(
             [attributed.attributes(e) for e in exemplars])),
    ]


def _native(app_factory, graph, workers, **config_overrides):
    config = GMinerConfig(
        execution="native",
        native_workers=workers,
        native_chunk_size=CHUNK,
        **config_overrides,
    )
    return GMinerJob(app_factory(), graph, config).run()


def _sim(app_factory, graph):
    config = GMinerConfig(
        cluster=ClusterSpec(num_nodes=4, cores_per_node=2)
    )
    return GMinerJob(app_factory(), graph, config).run()


def _comparable_dict(result):
    """``to_dict`` minus the deliberately schedule/host-dependent part."""
    out = result.to_dict()
    out.pop("native", None)
    return out


# ----------------------------------------------------------------------
# sim-vs-native equivalence
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "workload", ["tc", "mcf", "gm", "gl", "cd", "gc"]
)
def test_six_workloads_match_sim_at_all_worker_counts(workload):
    _, graph, factory = next(
        row for row in _app_factories() if row[0] == workload
    )
    sim = _sim(factory, graph)
    assert sim.status is JobStatus.OK
    natives = [_native(factory, graph, w) for w in WORKER_COUNTS]
    # native runs are bit-identical to each other at every worker count
    for other in natives[1:]:
        assert _comparable_dict(other) == _comparable_dict(natives[0])
    native = natives[0]
    assert native.status is JobStatus.OK
    if workload == "mcf":
        # the one schedule-dependent workload: the evolving global bound
        # prunes differently under different schedules, so only the
        # answer and the aggregated bound are required to agree
        assert normalize_value("mcf", native.value) == normalize_value(
            "mcf", sim.value
        )
        assert native.aggregated == sim.aggregated
        return
    assert native.value == sim.value
    assert native.num_results == sim.num_results
    assert native.stats["tasks_created"] == sim.stats["tasks_created"]
    assert sim.stats.get("re_pulls", 0) == 0  # precondition for work identity
    assert native.stats["work_units"] == sim.stats["work_units"]


@pytest.mark.parametrize(
    "pattern", ["triangle", "tailed-triangle", "diamond"]
)
def test_compiled_motifs_match_sim_at_all_worker_counts(pattern):
    graph = make_clustered_graph()
    factory = lambda: PlanApp(compile_pattern(motif(pattern)))
    sim = _sim(factory, graph)
    natives = [_native(factory, graph, w) for w in WORKER_COUNTS]
    for other in natives[1:]:
        assert _comparable_dict(other) == _comparable_dict(natives[0])
    native = natives[0]
    assert native.status is JobStatus.OK
    assert native.value == sim.value
    assert native.num_results == sim.num_results
    assert native.stats["tasks_created"] == sim.stats["tasks_created"]
    assert native.stats["work_units"] == sim.stats["work_units"]


def test_mine_execution_native_roundtrip(small_social_graph):
    sim = repro.mine(small_social_graph, pattern="triangle")
    native = repro.mine(
        small_social_graph, pattern="triangle", execution="native"
    )
    assert native.value == sim.value
    assert native.stats["work_units"] == sim.stats["work_units"]
    assert native.native["execution"] == "native"


# ----------------------------------------------------------------------
# native determinism
# ----------------------------------------------------------------------


def test_repeated_native_runs_byte_identical():
    graph = make_clustered_graph()
    first = _native(TriangleCountingApp, graph, 2)
    second = _native(TriangleCountingApp, graph, 2)
    assert json.dumps(_comparable_dict(first), sort_keys=True) == json.dumps(
        _comparable_dict(second), sort_keys=True
    )


def test_native_diagnostics_live_outside_stats():
    graph = make_clustered_graph()
    result = _native(TriangleCountingApp, graph, 2)
    assert set(result.native) == {
        "execution", "workers", "chunk_size", "steals", "wall_seconds",
        "backend",
        # supervision tallies (PR 8): all zero on a fault-free run, and
        # kept out of stats so stats stay byte-comparable under chaos
        "crashes", "hangs", "retries", "respawns", "chunk_errors",
        "leases_expired", "fallback_chunks",
    }
    assert result.native["workers"] == 2
    assert "wall_seconds" not in result.stats
    assert result.to_dict()["native"]["chunk_size"] == CHUNK
    for key in ("crashes", "hangs", "retries", "respawns", "chunk_errors",
                "leases_expired", "fallback_chunks"):
        assert result.native[key] == 0, key


def test_build_cache_hit_on_second_native_run():
    graph = make_clustered_graph()
    cache = BuildCache(persist=False)
    previous = set_build_cache(cache)
    try:
        _native(TriangleCountingApp, graph, 2)
        after_first = dict(cache.stats())
        _native(TriangleCountingApp, graph, 2)
        after_second = dict(cache.stats())
    finally:
        set_build_cache(previous)
    # first run builds the pickled graph payload and the chunk layout;
    # the second reuses both
    assert after_first["misses"] >= 2
    assert after_second["hits"] >= after_first["hits"] + 2
    assert after_second["misses"] == after_first["misses"]


def test_seed_chunks_cover_every_vertex_once():
    graph = make_clustered_graph()
    chunks = seed_chunks(graph, 16)
    flat = [vid for chunk in chunks for vid in chunk]
    assert flat == sorted(graph.vertices())
    assert all(len(chunk) <= 16 for chunk in chunks)


# ----------------------------------------------------------------------
# pool edge cases
# ----------------------------------------------------------------------


def test_zero_seed_graph():
    """A graph with no vertices at all: nothing to chunk, no pool."""
    from repro.graph.graph import Graph

    graph = Graph.from_edges([], vertices=[])
    result = _native(TriangleCountingApp, graph, 4)
    assert result.status is JobStatus.OK
    assert result.value is None
    assert result.num_results == 0
    assert result.stats["native_chunks"] == 0
    assert result.native["workers"] == 1  # clamped: no chunks to fan out


def test_edgeless_graph_produces_empty_results():
    from repro.graph.graph import Graph

    graph = Graph.from_edges([], vertices=list(range(40)))
    result = _native(TriangleCountingApp, graph, 2)
    assert result.status is JobStatus.OK
    assert result.value is None
    assert result.num_results == 0
    assert result.stats["native_chunks"] == 3  # 40 vertices / CHUNK


def test_fewer_chunks_than_workers_clamps_pool():
    graph = make_clustered_graph(n=24)  # 24 vertices -> 2 chunks of 16
    chunks = seed_chunks(graph, CHUNK)
    assert 1 < len(chunks) < 8
    clamped = _native(TriangleCountingApp, graph, 8)
    serial = _native(TriangleCountingApp, graph, 1)
    assert clamped.native["workers"] == len(chunks)
    assert _comparable_dict(clamped) == _comparable_dict(serial)


def test_stolen_chunk_failure_retried_exactly_once():
    """Lease-owner accounting under steal-then-fail.

    Worker 0 is made a straggler, so worker 1 drains its own queue and
    steals from worker 0's tail — including the flaky chunk (the tail
    of slot 0's round-robin queue).  The lease follows the *thief*, so
    the thief's transient failure charges the chunk exactly one attempt
    and it is retried exactly once, with the final result bit-identical
    to the fault-free run.
    """
    from repro.native import NativeFaultPlan

    graph = make_clustered_graph()
    chunks = seed_chunks(graph, 8)
    flaky = len(chunks) - 1 if (len(chunks) - 1) % 2 == 0 else len(chunks) - 2
    assert flaky % 2 == 0  # lives in slot 0's queue (round-robin)
    plan = (
        NativeFaultPlan(seed=3)
        .slow(0, delay=0.15)
        .flaky_chunk(flaky, failures=1)
    )
    config = GMinerConfig(
        execution="native", native_workers=2, native_chunk_size=8
    )
    chaotic = GMinerJob(TriangleCountingApp(), graph, config, plan).run()
    clean = GMinerJob(TriangleCountingApp(), graph, config).run()
    assert chaotic.native["steals"] >= 1
    assert chaotic.native["chunk_errors"] == 1
    assert chaotic.native["retries"] == 1
    assert chaotic.native["crashes"] == 0
    assert _comparable_dict(chaotic) == _comparable_dict(clean)


def test_failed_run_leaves_no_live_children(monkeypatch):
    """Shutdown hygiene: an interrupt mid-run terminates and joins the
    whole pool — no orphan workers, no leaked queue feeder threads."""
    from repro.native.supervisor import Supervisor

    original = Supervisor._dispatch_retries
    calls = {"n": 0}

    def interrupt(self):
        calls["n"] += 1
        if calls["n"] >= 2:  # let the pool actually start first
            raise KeyboardInterrupt
        return original(self)

    monkeypatch.setattr(Supervisor, "_dispatch_retries", interrupt)
    graph = make_clustered_graph()
    # a straggler pool so the run is still in flight when we interrupt
    from repro.native import NativeFaultPlan

    plan = NativeFaultPlan(seed=1).slow(delay=0.2)
    config = GMinerConfig(
        execution="native", native_workers=2, native_chunk_size=8
    )
    with pytest.raises(KeyboardInterrupt):
        GMinerJob(TriangleCountingApp(), graph, config, plan).run()
    for child in multiprocessing.active_children():
        child.join(timeout=5.0)
    assert multiprocessing.active_children() == []


# ----------------------------------------------------------------------
# refusals and knobs
# ----------------------------------------------------------------------


def test_native_refuses_failure_plan_direct():
    graph = make_clustered_graph()
    plan = FailurePlan(seed=5).kill(0, at_time=0.05, recovery_delay=0.02)
    with pytest.raises(ValueError, match="failure_plan"):
        run_native(TriangleCountingApp(), graph, failure_plan=plan)


def test_native_refuses_failure_plan_via_job():
    graph = make_clustered_graph()
    plan = FailurePlan(seed=5).kill(0, at_time=0.05, recovery_delay=0.02)
    config = GMinerConfig(execution="native", checkpoint_interval=0.05)
    job = GMinerJob(TriangleCountingApp(), graph, config, plan)
    with pytest.raises(ValueError, match="sim"):
        job.run()


def test_config_validation():
    with pytest.raises(ValueError, match="execution"):
        GMinerConfig(execution="gpu")
    with pytest.raises(ValueError, match="native_workers"):
        GMinerConfig(native_workers=0)
    with pytest.raises(ValueError, match="native_chunk_size"):
        GMinerConfig(native_chunk_size=0)


def test_supervision_knobs_validation():
    # the supervision knobs are native-only: setting them on a
    # simulated job fails fast at construction
    with pytest.raises(ValueError, match="native_chunk_deadline"):
        GMinerConfig(native_chunk_deadline=5.0)
    with pytest.raises(ValueError, match="native_max_chunk_retries"):
        GMinerConfig(native_max_chunk_retries=3)
    with pytest.raises(ValueError, match="native_max_respawns"):
        GMinerConfig(native_max_respawns=1)
    # and nonsense values fail even under execution="native"
    with pytest.raises(ValueError, match="native_chunk_deadline"):
        GMinerConfig(execution="native", native_chunk_deadline=0.0)
    with pytest.raises(ValueError, match="native_chunk_deadline"):
        GMinerConfig(execution="native", native_chunk_deadline=float("inf"))
    with pytest.raises(ValueError, match="native_max_chunk_retries"):
        GMinerConfig(execution="native", native_max_chunk_retries=-1)
    with pytest.raises(ValueError, match="native_max_respawns"):
        GMinerConfig(execution="native", native_max_respawns=-1)
    # the happy path constructs (0 is a legal bound for both budgets)
    config = GMinerConfig(
        execution="native",
        native_chunk_deadline=30.0,
        native_max_chunk_retries=0,
        native_max_respawns=0,
    )
    assert config.native_chunk_deadline == 30.0


def test_auto_backend_leaves_explicit_backends_unchanged(small_social_graph):
    """The pin: explicit backends bypass the auto machinery entirely."""
    explicit = {
        backend: repro.mine(
            small_social_graph, pattern="tailed-triangle", backend=backend
        )
        for backend in ("reference", "bitset")
    }
    baseline = repro.mine(small_social_graph, pattern="tailed-triangle")
    for backend, result in explicit.items():
        assert result.value == baseline.value
        assert result.stats == baseline.stats, backend
    auto = repro.mine(
        small_social_graph, pattern="tailed-triangle", backend="auto"
    )
    assert auto.value == baseline.value
    assert auto.stats["work_units"] == baseline.stats["work_units"]


def test_auto_backend_selects_per_step(small_social_graph):
    from repro.plans.executor import select_step_backends

    plan = compile_pattern(motif("tailed-triangle"))
    selected = select_step_backends(plan, small_social_graph)
    assert len(selected) == len(plan.steps)
    assert all(
        backend in ("reference", "numpy", "bitset") for backend in selected
    )


def test_mine_rejects_unknown_backend(small_social_graph):
    with pytest.raises(ValueError, match="backend"):
        repro.mine(small_social_graph, workload="tc", backend="cuda")


def test_explain_returns_text_without_running(small_social_graph):
    text = repro.mine(
        small_social_graph, pattern="tailed-triangle",
        execution="native", backend="auto", explain=True,
    )
    assert isinstance(text, str)
    assert "plan 'tailed-triangle'" in text
    assert "execution: native" in text
    assert "backend: auto (per-step:" in text
    legacy = repro.mine(small_social_graph, workload="mcf", explain=True)
    assert "legacy grower" in legacy
    assert "execution: sim" in legacy
    tc = repro.mine(small_social_graph, workload="tc", explain=True)
    assert "plan 'triangle'" in tc
