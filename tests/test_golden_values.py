"""Golden mining results on the registered datasets.

These pin the exact outputs of every workload on the (seeded,
deterministic) dataset registry.  Any change to a generator, a kernel,
or the pipeline that alters a mining *result* — as opposed to its
performance — trips one of these immediately, and the values are the
ones EXPERIMENTS.md quotes.
"""

import pytest

from repro.bench.runner import run_gminer
from repro.sim.cluster import ClusterSpec

SPEC = ClusterSpec(num_nodes=4, cores_per_node=4)

#: dataset -> (triangles, max clique size, Figure-1-pattern matches)
GOLDEN_NON_ATTRIBUTED = {
    "skitter-s": (5378, 7, 1570),
    "orkut-s": (86835, 12, 47935),
    "btc-s": (9017, 5, 3992),
    "friendster-s": (98668, 13, 92289),
}

#: dataset -> number of communities (native attributes, default params)
GOLDEN_COMMUNITIES = {
    "dblp-s": 60,
    "tencent-s": 70,
}


@pytest.mark.parametrize("dataset", sorted(GOLDEN_NON_ATTRIBUTED))
def test_triangle_counts(dataset):
    expected, _, _ = GOLDEN_NON_ATTRIBUTED[dataset]
    result = run_gminer("tc", dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert result.value == expected


@pytest.mark.parametrize("dataset", sorted(GOLDEN_NON_ATTRIBUTED))
def test_max_clique_sizes(dataset):
    _, expected, _ = GOLDEN_NON_ATTRIBUTED[dataset]
    result = run_gminer("mcf", dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert len(result.value) == expected
    assert result.aggregated == expected


@pytest.mark.parametrize("dataset", sorted(GOLDEN_NON_ATTRIBUTED))
def test_pattern_match_counts(dataset):
    _, _, expected = GOLDEN_NON_ATTRIBUTED[dataset]
    result = run_gminer("gm", dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert result.value == expected


@pytest.mark.parametrize("dataset", sorted(GOLDEN_COMMUNITIES))
def test_community_counts(dataset):
    result = run_gminer("cd", dataset, spec=SPEC, time_limit=None)
    assert result.ok
    assert len(result.value) == GOLDEN_COMMUNITIES[dataset]
